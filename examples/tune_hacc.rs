//! Compare tuning pipelines on the HACC I/O kernel: HSTuner baselines vs
//! TunIO, printing per-generation progress and Return on Tuning
//! Investment.
//!
//! ```text
//! cargo run -p tunio-examples --bin tune_hacc --release
//! ```

use tunio::pipeline::{run_campaign, CampaignSpec, PipelineKind};
use tunio::roti::{peak_roti, roti_curve};
use tunio_workloads::{hacc, Variant};

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

fn main() {
    let kinds = [
        PipelineKind::HsTunerNoStop,
        PipelineKind::HsTunerHeuristic,
        PipelineKind::TunIo,
    ];

    for kind in kinds {
        let spec = CampaignSpec {
            app: hacc(),
            variant: Variant::Kernel,
            kind,
            max_iterations: 40,
            population: 8,
            seed: 7,
            large_scale: false,
        };
        let outcome = run_campaign(&spec).expect("fault-free campaign");
        let trace = &outcome.trace;

        println!("=== {} ===", kind.label());
        for r in &trace.records {
            let bar_len = (r.best_perf / GIB * 18.0).round() as usize;
            println!(
                "  gen {:>2}  {:>6.2} GiB/s  {:>7.1} min  |{}",
                r.iteration,
                r.best_perf / GIB,
                r.cumulative_cost_s / 60.0,
                "#".repeat(bar_len.min(60))
            );
        }
        let roti = roti_curve(trace);
        println!(
            "  → {} generations, {:.0} min, {:.2}x gain, final RoTI {:.2} MB/s/min (peak {:.2})\n",
            trace.iterations(),
            trace.total_cost_min(),
            trace.best_perf / trace.default_perf,
            roti.last().map(|p| p.roti).unwrap_or(0.0),
            peak_roti(trace).map(|p| p.roti).unwrap_or(0.0),
        );
    }
}
