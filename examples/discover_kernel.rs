//! Application I/O Discovery walkthrough: extract, reduce and inspect I/O
//! kernels for every bundled sample application.
//!
//! ```text
//! cargo run -p tunio-examples --bin discover_kernel
//! ```
//!
//! Shows the three reduction levels the paper evaluates: the plain kernel
//! (compute and logging stripped), the loop-reduced kernel (1% of I/O-loop
//! iterations), and I/O path switching (`/dev/shm`).

use tunio_cminus::samples;
use tunio_discovery::{discover_io, DiscoveryOptions};

fn main() {
    for (name, source) in samples::all_samples() {
        println!("================ {name} ================");

        let plain = discover_io(source, &DiscoveryOptions::default()).expect("sample parses");
        if !plain.has_io() {
            println!("no I/O found — tuning would fall back to the full application\n");
            continue;
        }
        println!(
            "kernel keeps {}/{} statements ({:.0}% of the source):\n",
            plain.marking.kept.len(),
            plain.marking.total_stmts,
            plain.marking.keep_ratio() * 100.0
        );
        println!("{}", indent(&plain.source));

        // Loop reduction: run 1% of the iterations of loops containing I/O.
        let reduced = discover_io(source, &DiscoveryOptions::with_loop_reduction(0.01))
            .expect("sample parses");
        if let Some(r) = &reduced.loop_reduction {
            println!(
                "loop reduction: {} loop(s) reduced, {} skipped → variant {:?}",
                r.loops_reduced,
                r.loops_skipped,
                reduced.variant()
            );
        }

        // I/O path switching: point every opened file at memory.
        let switched = discover_io(
            source,
            &DiscoveryOptions {
                path_switch_prefix: Some("/dev/shm".into()),
                ..DiscoveryOptions::default()
            },
        )
        .expect("sample parses");
        println!(
            "path switching rewrote {} open call(s)\n",
            switched.paths_switched
        );
    }
}

fn indent(text: &str) -> String {
    text.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
