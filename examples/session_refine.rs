//! Interactive refinement session (paper §VI future work): refine a
//! configuration across a series of production runs, persisting state
//! between "days", and stop when further refinement is no longer worth it
//! for the expected number of production executions.
//!
//! ```text
//! cargo run -p tunio-examples --bin session_refine --release
//! ```

use tunio::TuningSession;
use tunio_iosim::Simulator;
use tunio_params::ParameterSpace;
use tunio_workloads::{flash, Variant, Workload};

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

fn main() {
    let space = ParameterSpace::tunio_default();
    let sim = Simulator::cori_4node(23);
    let workload = Workload::new(flash(), Variant::Kernel);
    let phases = workload.phases();
    let session_file = std::env::temp_dir().join("tunio_session_demo.json");
    let _ = std::fs::remove_file(&session_file);

    // The user expects ~50k production runs of FLASH this allocation year.
    let mut session = TuningSession::with_expected_runs(50_000);

    let mut round = 0;
    loop {
        round += 1;
        // Each "day": load state, run the suggested configuration once,
        // record the outcome, save state.
        if session_file.is_file() {
            session = TuningSession::load(&session_file).expect("session loads");
        }
        let config = session.suggest(&space);
        let report = sim.run_averaged(&phases, &config.resolve(&space), 3);
        println!(
            "round {:>2}: {:>6.2} GiB/s with [{}]",
            round,
            report.perf() / GIB,
            config.describe_changes(&space)
        );
        session.record(config, &report);
        session.save(&session_file).expect("session saves");

        if !session.worth_refining() {
            println!("\nsession says: further refinement is not worth it");
            break;
        }
        if round >= 25 {
            println!("\ndemo budget reached");
            break;
        }
    }

    let best = session.best().expect("at least one round");
    println!(
        "best configuration after {} rounds ({:.1} minutes invested): {:.2} GiB/s",
        session.rounds.len(),
        session.invested_minutes(),
        best.perf / GIB,
    );
    println!("  {}", best.config.describe_changes(&space));
    let _ = std::fs::remove_file(&session_file);
}
