//! Quickstart: tune an application's I/O stack with TunIO in ~20 lines.
//!
//! ```text
//! cargo run -p tunio-examples --bin quickstart --release
//! ```
//!
//! Extracts the I/O kernel of a VPIC-style source, runs the full TunIO
//! pipeline (Smart Configuration Generation + RL Early Stopping) against
//! the simulated I/O stack, and prints the tuned configuration.

use tunio::pipeline::{run_campaign, CampaignSpec, PipelineKind};
use tunio::TunIo;
use tunio_discovery::DiscoveryOptions;
use tunio_params::ParameterSpace;
use tunio_workloads::{hacc, Variant};

fn main() {
    // 1. Application I/O Discovery: source code → I/O kernel.
    let kernel = TunIo::discover_io(tunio_cminus::samples::VPIC_IO, &DiscoveryOptions::default())
        .expect("sample parses");
    println!(
        "discovered I/O kernel: kept {}/{} statements\n",
        kernel.marking.kept.len(),
        kernel.marking.total_stmts
    );

    // 2. Tune (the kernel variant evaluates fast; TunIO picks parameter
    //    subsets and decides when to stop).
    let spec = CampaignSpec {
        app: hacc(),
        variant: kernel.variant().unwrap_or(Variant::Full),
        kind: PipelineKind::TunIo,
        max_iterations: 30,
        population: 8,
        seed: 42,
        large_scale: false,
    };
    let outcome = run_campaign(&spec).expect("fault-free campaign");
    let trace = &outcome.trace;

    // 3. Results.
    let gib = 1024.0 * 1024.0 * 1024.0;
    println!(
        "tuned in {} generations ({:.0} simulated minutes)",
        trace.iterations(),
        trace.total_cost_min()
    );
    println!(
        "perf: {:.2} GiB/s → {:.2} GiB/s ({:.1}x)",
        trace.default_perf / gib,
        trace.best_perf / gib,
        trace.best_perf / trace.default_perf
    );
    let space = ParameterSpace::tunio_default();
    println!(
        "configuration changes: {}",
        trace.best_config.describe_changes(&space)
    );
}
