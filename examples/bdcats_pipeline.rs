//! End-to-end scenario: the Table-I API driven by a hand-written tuning
//! loop on BD-CATS at 500 nodes — the way a downstream pipeline (e.g. a
//! DEAP-style GA) would consume TunIO's three components directly.
//!
//! ```text
//! cargo run -p tunio-examples --bin bdcats_pipeline --release
//! ```

use tunio::api::StopDecision;
use tunio::TunIo;
use tunio_iosim::Simulator;
use tunio_params::{ParamId, ParameterSpace};
use tunio_rl::replay::Transition;
use tunio_tuner::{EvalEngine, GaConfig, GaTuner, NoStop, SubsetProvider};
use tunio_workloads::{bdcats, Variant, Workload};

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Adapter: drive the GA's subset hook through the public Table-I API.
struct ApiSubsets<'a> {
    tunio: &'a mut TunIo,
    current: Vec<ParamId>,
}

impl SubsetProvider for ApiSubsets<'_> {
    fn next_subset(
        &mut self,
        _iteration: u32,
        best_perf: f64,
        _space: &ParameterSpace,
    ) -> Vec<ParamId> {
        // Table I: subset_picker(perf, current_parameter_set) → next set.
        self.current = self.tunio.subset_picker(best_perf, &self.current);
        self.current.clone()
    }

    fn feedback(&mut self, _subset: &[ParamId], _best_perf: f64) {
        // subset_picker already consumed the feedback.
    }

    fn name(&self) -> &'static str {
        "table-i-api"
    }
}

fn main() {
    let space = ParameterSpace::tunio_default();
    let sim = Simulator::cori_500node(3);
    let cluster = sim.cluster;

    println!("pre-training TunIO agents (offline sweep + PCA + log-curve RL)…");
    let mut tunio = TunIo::pretrained(&space, cluster, 50, 3);
    println!(
        "impact ranking: {:?}\n",
        tunio.smart_config.analysis.ranking
    );

    let engine = EvalEngine::new(
        sim,
        Workload::new(bdcats(), Variant::Kernel),
        space.clone(),
        3,
    );
    let mut tuner = GaTuner::new(GaConfig {
        max_iterations: 1, // we drive the loop ourselves, one generation at a time
        seed: 3,
        ..GaConfig::default()
    });

    // Hand-rolled tuning loop using the Table-I `stop` API as the
    // termination condition. Each "round" runs one GA generation.
    let mut best = 0.0f64;
    let mut round = 0;
    loop {
        round += 1;
        let mut subsets = ApiSubsets {
            tunio: &mut tunio,
            current: ParamId::ALL.to_vec(),
        };
        // Run a single generation (GaTuner with max_iterations = 1
        // resumes from scratch; for the demo we track the best ourselves).
        let trace = tuner.run(&engine, &mut NoStop, &mut subsets);
        best = best.max(trace.best_perf);
        println!(
            "round {:>2}: best {:.2} GiB/s (subset size {})",
            round,
            best / GIB,
            trace.records.last().map(|r| r.subset_size).unwrap_or(0)
        );

        match tunio.stop(round, best) {
            StopDecision::Stop => {
                println!("\nTable-I stop() says: stop after round {round}");
                break;
            }
            StopDecision::Continue if round >= 50 => {
                println!("\nbudget exhausted");
                break;
            }
            StopDecision::Continue => {}
        }
    }
    println!("final best perf: {:.2} GiB/s", best / GIB);

    // The early-stop agent also keeps learning online; demonstrate the
    // replay type is exposed for custom integrations.
    let _example_transition = Transition {
        state: vec![0.0; 4],
        action: 0,
        reward: 0.0,
        next_state: vec![],
        done: true,
    };
}
