//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard PRNG: xoshiro256++ seeded via SplitMix64.
///
/// Not the upstream ChaCha12 `StdRng`, but equally deterministic and
/// `Clone`-able; statistical quality is ample for simulation noise and
/// evolutionary search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = state;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

impl StdRng {
    /// Snapshot the raw xoshiro256++ state, e.g. for campaign checkpoints.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a [`StdRng::state`] snapshot.
    pub fn from_state(s: [u64; 4]) -> Self {
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
