//! Minimal `rand` 0.8 stand-in.
//!
//! The build container has no crates.io access, so this shim reimplements
//! the subset of the `rand` API the workspace uses: `RngCore`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool, gen}` over
//! integer and float ranges, and `rngs::StdRng`.
//!
//! The generator is **not** the upstream ChaCha-based `StdRng`; it is a
//! SplitMix64-seeded xoshiro256++ — deterministic, fast, well distributed
//! and `Clone`/`Debug` like the original. Streams therefore differ from
//! upstream `rand`, which only matters for tests asserting exact values
//! (none in this workspace — determinism is asserted, not exact draws).

#![warn(missing_docs)]

pub mod rngs;

use std::ops::{Range, RangeInclusive};

/// Core random-number generation: a source of `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`low..high` or `low..=high`).
    ///
    /// Panics when the range is empty, like upstream `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        unit_f64(self.next_u64()) < p
    }

    /// Sample a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable "from the standard distribution" (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Map 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Ranges that can produce a uniform sample, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }
}
