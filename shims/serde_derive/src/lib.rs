//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The build container has no crates.io access, so `syn`/`quote` are
//! unavailable; this crate parses the item's raw token stream directly.
//! Supported shapes cover everything the workspace derives on:
//!
//! * structs with named fields, tuple structs (newtype and n-ary), unit
//!   structs;
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   serde's default representation).
//!
//! Generics and `#[serde(...)]` attributes are intentionally unsupported
//! and produce a compile error if encountered.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (via the workspace's serde shim).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derive `serde::Deserialize` (via the workspace's serde shim).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Item model + parser
// ---------------------------------------------------------------------------

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<(String, Shape)>,
    },
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic types (deriving on `{name}`)");
    }

    match kind.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Shape::Unit,
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for `{name}`, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("cannot derive serde traits for `{other}` items"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2, // `#` + `[...]`
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // `pub(...)`
                }
            }
            _ => break,
        }
    }
}

/// Advance past a type (or any token run) up to a top-level `,`, tracking
/// angle-bracket depth so `Vec<(A, B)>`-style commas do not split early.
fn skip_to_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' if depth > 0 => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 2; // name + `:`
        skip_to_comma(&tokens, &mut i);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_to_comma(&tokens, &mut i);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Shape)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        skip_to_comma(&tokens, &mut i); // also skips `= discriminant`
        variants.push((name, shape));
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation (string-built, then parsed into a TokenStream)
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
                }
                Shape::Named(fields) => obj_literal(fields.iter().map(|f| {
                    (
                        f.clone(),
                        format!("::serde::Serialize::to_value(&self.{f})"),
                    )
                })),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, shape) in variants {
                let arm = match shape {
                    Shape::Unit => format!(
                        "{name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),"
                    ),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
                        };
                        format!(
                            "{name}::{vname}({binds}) => {obj},",
                            binds = binds.join(", "),
                            obj = tagged(vname, &payload)
                        )
                    }
                    Shape::Named(fields) => {
                        let payload =
                            obj_literal(fields.iter().map(|f| {
                                (f.clone(), format!("::serde::Serialize::to_value({f})"))
                            }));
                        format!(
                            "{name}::{vname} {{ {fields} }} => {obj},",
                            fields = fields.join(", "),
                            obj = tagged(vname, &payload)
                        )
                    }
                };
                arms.push_str(&arm);
                arms.push('\n');
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    }
}

/// `Value::Object` literal from `(key, value-expression)` pairs.
fn obj_literal(pairs: impl Iterator<Item = (String, String)>) -> String {
    let entries: Vec<String> = pairs
        .map(|(k, v)| format!("(\"{k}\".to_string(), {v})"))
        .collect();
    format!(
        "::serde::Value::Object(::std::vec![{}])",
        entries.join(", ")
    )
}

/// Externally-tagged wrapper: `{"Variant": payload}`.
fn tagged(variant: &str, payload: &str) -> String {
    format!("::serde::Value::Object(::std::vec![(\"{variant}\".to_string(), {payload})])")
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
                Shape::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Shape::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "let items = ::serde::__private::elements(v, \"{name}\", {n})?;\n\
                         ::std::result::Result::Ok({name}({}))",
                        elems.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                     ::serde::__private::field(v, \"{name}\", \"{f}\")?)?"
                            )
                        })
                        .collect();
                    format!(
                        "::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, shape) in variants {
                let arm = match shape {
                    Shape::Unit => format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                    ),
                    Shape::Tuple(1) => format!(
                        "\"{vname}\" => {{\n\
                             let p = ::serde::__private::payload(payload, \"{name}\", \"{vname}\")?;\n\
                             ::std::result::Result::Ok({name}::{vname}(\
                                 ::serde::Deserialize::from_value(p)?))\n\
                         }}"
                    ),
                    Shape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        format!(
                            "\"{vname}\" => {{\n\
                                 let p = ::serde::__private::payload(payload, \"{name}\", \"{vname}\")?;\n\
                                 let items = ::serde::__private::elements(p, \"{name}\", {n})?;\n\
                                 ::std::result::Result::Ok({name}::{vname}({}))\n\
                             }}",
                            elems.join(", ")
                        )
                    }
                    Shape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::__private::field(p, \"{name}\", \"{f}\")?)?"
                                )
                            })
                            .collect();
                        format!(
                            "\"{vname}\" => {{\n\
                                 let p = ::serde::__private::payload(payload, \"{name}\", \"{vname}\")?;\n\
                                 ::std::result::Result::Ok({name}::{vname} {{ {} }})\n\
                             }}",
                            inits.join(", ")
                        )
                    }
                };
                arms.push_str(&arm);
                arms.push('\n');
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let (variant, payload) = ::serde::__private::variant(v, \"{name}\")?;\n\
                         let _ = &payload;\n\
                         match variant {{\n\
                             {arms}\n\
                             other => ::std::result::Result::Err(\
                                 ::serde::__private::unknown_variant(\"{name}\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
