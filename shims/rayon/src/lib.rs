//! Minimal `rayon` stand-in with real data parallelism.
//!
//! The build container has no crates.io access, so this shim provides the
//! subset of rayon used by the workspace — `par_iter()` / `into_par_iter()`
//! with `map`, `for_each` and `collect` — implemented with scoped OS
//! threads (`std::thread::scope`) rather than a work-stealing pool.
//!
//! Work is split into one contiguous chunk per worker, which preserves
//! input order on `collect` (rayon's indexed-collect guarantee, and the
//! property the deterministic evaluation engine relies on). The worker
//! count honours `RAYON_NUM_THREADS`, falling back to the machine's
//! available parallelism; `RAYON_NUM_THREADS=1` (or a single-core host)
//! short-circuits to a plain sequential loop on the calling thread.

#![warn(missing_docs)]

/// Commonly used traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads parallel operations will use:
/// `RAYON_NUM_THREADS` when set to a positive integer, otherwise the
/// host's available parallelism.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// A parallel iterator: a finite, indexable stream of `Send` items that
/// can be mapped and collected preserving input order.
pub trait ParallelIterator: Sized {
    /// Item type produced by the iterator.
    type Item: Send;

    /// Drain the iterator into an ordered `Vec` (the fan-out primitive
    /// everything else is built on).
    fn drive(self) -> Vec<Self::Item>;

    /// Transform every item in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Run `f` on every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        self.map(f).drive();
    }

    /// Collect into a container, preserving input order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.drive().into_iter().collect()
    }

    /// Sum the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.drive().into_iter().sum()
    }
}

/// Conversion into a [`ParallelIterator`] by value (`into_par_iter`).
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// Resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert self.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion into a borrowing [`ParallelIterator`] (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type of the resulting iterator (a reference).
    type Item: Send;
    /// Resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrow self.
    fn par_iter(&'a self) -> Self::Iter;
}

/// Fan a list of inputs out across worker threads, applying `f` to each;
/// results come back in input order.
fn fan_out<T: Send, R: Send, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    F: Fn(T) -> R + Sync,
{
    let workers = current_num_threads().min(items.len().max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let mut out: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|ch| scope.spawn(move || ch.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => out.push(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out.into_iter().flatten().collect()
}

/// Borrowing parallel iterator over a slice.
pub struct SliceIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn drive(self) -> Vec<&'a T> {
        self.items.iter().collect()
    }
}

/// Owning parallel iterator over a `Vec`.
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// Parallel iterator over an integer range.
pub struct RangeIter {
    range: std::ops::Range<usize>,
}

impl ParallelIterator for RangeIter {
    type Item = usize;
    fn drive(self) -> Vec<usize> {
        self.range.collect()
    }
}

/// Mapped parallel iterator; the `map` stage is where threads fan out.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync + Send,
{
    type Item = R;
    fn drive(self) -> Vec<R> {
        fan_out(self.base.drive(), &self.f)
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { items: self }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = RangeIter;
    fn into_par_iter(self) -> RangeIter {
        RangeIter { range: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_owns_items() {
        let squares: Vec<usize> = (0..64).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares[63], 63 * 63);
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        (0..257).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn sum_matches_serial() {
        let xs: Vec<u64> = (1..=100).collect();
        let total: u64 = xs.par_iter().map(|&x| x).sum();
        assert_eq!(total, 5050);
    }
}
