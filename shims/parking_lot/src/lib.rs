//! Minimal `parking_lot` stand-in backed by `std::sync`.
//!
//! The container this repo builds in has no crates.io access, so the real
//! `parking_lot` cannot be vendored. This shim reproduces the subset of
//! its API the workspace uses — non-poisoning `Mutex` / `RwLock` with
//! guard types — on top of the standard library primitives. Poisoned
//! locks are transparently recovered, matching parking_lot's semantics of
//! not propagating panics through lock acquisition.

use std::fmt;
use std::sync::{MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive (non-poisoning facade over `std`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard(g),
            Err(p) => MutexGuard(p.into_inner()),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock (non-poisoning facade over `std`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(7u32);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
    }
}
