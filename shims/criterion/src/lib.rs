//! Minimal `criterion` stand-in.
//!
//! The build container has no crates.io access, so this shim provides the
//! subset of criterion the workspace's benches use: `Criterion`,
//! `benchmark_group` with `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — a warm-up pass followed by
//! `sample_size` timed iterations, reporting mean and best wall time per
//! iteration to stdout. No statistical analysis, plotting or HTML reports.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Number of timed iterations when a group does not override it.
const DEFAULT_SAMPLE_SIZE: usize = 20;
/// Warm-up iterations before timing starts.
const WARMUP_ITERS: usize = 3;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build an id from the benchmark's parameter value.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }

    /// Build an id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.0);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.0);
        self
    }

    /// Finish the group (reporting already happened per benchmark).
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measure `f`: warm up, then time `sample_size` iterations.
    pub fn iter<R, F>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(f());
        }
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let best = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{group}/{id}: mean {} (best {}, {} samples)",
            fmt_duration(mean),
            fmt_duration(best),
            self.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Group benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim/self_test");
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_runs_benches() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }
}
