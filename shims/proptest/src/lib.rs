//! Minimal `proptest` stand-in.
//!
//! The build container has no crates.io access, so this shim provides the
//! subset of proptest the workspace's property tests use: the [`Strategy`]
//! trait with `prop_map` / `prop_filter` / `boxed`, range and tuple and
//! `Vec` strategies, a tiny character-class regex generator for string
//! strategies, `Just`, `any`, `collection::vec`, `sample::subsequence`,
//! and the `proptest!` / `prop_assert!` / `prop_assert_eq!` /
//! `prop_oneof!` macros.
//!
//! No shrinking is performed: a failing case reports its inputs via the
//! assertion message and the deterministic per-test RNG makes reruns
//! reproduce it exactly.

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;
use std::rc::Rc;

/// Generation limit for `prop_filter` before giving up.
const MAX_FILTER_REJECTS: usize = 10_000;

/// A value generator. Unlike real proptest there is no value tree or
/// shrinking; a strategy is just a deterministic function of the RNG.
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Keep only values for which `f` returns true.
    fn prop_filter<R, F>(self, reason: R, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: fmt::Display,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            reason: reason.to_string(),
            f,
        }
    }

    /// Erase the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased, cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut StdRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    reason: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..MAX_FILTER_REJECTS {
            let v = self.base.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected {MAX_FILTER_REJECTS} candidates",
            self.reason
        );
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives; built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from a non-empty list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Ranges, tuples, vectors, strings
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

/// A `Vec` of strategies generates element-wise (used for per-gene domains).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// String strategy from a character-class pattern (e.g. `"[a-z0-9_]{0,6}"`).
///
/// Supported syntax: literal characters, `[...]` classes with ranges, and
/// `{n}` / `{m,n}` repetition — the subset the workspace's patterns use.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a character class or a literal character.
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated `[` in pattern {pattern:?}"));
            let mut cls = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    cls.extend((lo..=hi).filter_map(char::from_u32));
                    j += 3;
                } else {
                    cls.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            cls
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Parse an optional {n} / {m,n} repetition.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated `{{` in pattern {pattern:?}"));
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad repeat min"),
                    n.trim().parse::<usize>().expect("bad repeat max"),
                ),
                None => {
                    let n = spec.trim().parse::<usize>().expect("bad repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = if min == max {
            min
        } else {
            rng.gen_range(min..=max)
        };
        for _ in 0..count {
            out.push(class[rng.gen_range(0..class.len())]);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// any / collection / sample
// ---------------------------------------------------------------------------

/// Types with a canonical unconstrained strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Arbitrary finite doubles across many magnitudes.
        loop {
            let f = f64::from_bits(rand::RngCore::next_u64(rng));
            if f.is_finite() {
                return f;
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Length specification for collection strategies: an exact size or a
/// (half-open or inclusive) range of sizes.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.end > r.start, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut StdRng) -> usize {
        if self.min == self.max {
            self.min
        } else {
            rng.gen_range(self.min..=self.max)
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::*;

    /// Strategy for a `Vec` whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: `size` elements generated by `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`proptest::sample::subsequence`).
pub mod sample {
    use super::*;

    /// Strategy for an order-preserving random subsequence.
    pub struct Subsequence<T: Clone> {
        items: Vec<T>,
        size: SizeRange,
    }

    /// Pick a subsequence of `items` whose length is drawn from `size`.
    pub fn subsequence<T: Clone>(items: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            items,
            size: size.into(),
        }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut StdRng) -> Vec<T> {
            let k = self.size.pick(rng).min(self.items.len());
            // Partial Fisher-Yates over indices, then restore input order.
            let mut idx: Vec<usize> = (0..self.items.len()).collect();
            for i in 0..k {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            let mut chosen = idx[..k].to_vec();
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.items[i].clone()).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Test runner
// ---------------------------------------------------------------------------

/// Runner configuration (`cases` = number of generated inputs per test).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl fmt::Display) -> Self {
        TestCaseError(msg.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

#[doc(hidden)]
pub mod __rng {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

#[doc(hidden)]
pub mod __runner {
    /// Deterministic per-test seed so failures reproduce across runs.
    pub fn seed_for(test_name: &str) -> u64 {
        // FNV-1a over the test path.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests: each `#[test] fn name(pat in strategy, ...)` body
/// runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut __proptest_rng = <$crate::__rng::StdRng as $crate::__rng::SeedableRng>::seed_from_u64(
                $crate::__runner::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for __proptest_case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                let __proptest_result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __proptest_result {
                    panic!(
                        "proptest case {}/{} failed: {}",
                        __proptest_case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}

/// Assert inside a property; failures abort only the current case's body
/// with a [`TestCaseError`] carrying the formatted context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l,
            r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pattern_generator_respects_classes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-z][a-z0-9_]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7);
            let mut chars = s.chars();
            assert!(chars.next().unwrap().is_ascii_lowercase());
            assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn subsequence_preserves_order() {
        let mut rng = StdRng::seed_from_u64(2);
        let items: Vec<u32> = (0..20).collect();
        for _ in 0..100 {
            let sub = crate::Strategy::generate(
                &crate::sample::subsequence(items.clone(), 1..=12),
                &mut rng,
            );
            assert!(!sub.is_empty() && sub.len() <= 12);
            assert!(sub.windows(2).all(|w| w[0] < w[1]));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0.0f64..=1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn oneof_and_vec_compose(
            xs in crate::collection::vec(prop_oneof![Just(1u8), Just(2), Just(3)], 0..5),
        ) {
            prop_assert!(xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| (1..=3).contains(&x)));
        }
    }
}
