//! Minimal `serde_json` stand-in.
//!
//! The build container has no crates.io access, so this shim provides the
//! subset of serde_json the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`] and the [`json!`] object-literal
//! macro, all operating on the [`Value`] data model from the sibling
//! `serde` shim.
//!
//! Output is deterministic: object fields keep insertion order (derives
//! emit declaration order, maps sort their keys in the serde shim) and
//! floats print via Rust's shortest round-trip formatting, so identical
//! values always serialize to identical bytes — the property the
//! golden-trace tests rely on.

#![warn(missing_docs)]

pub use serde::{Error, Value};

use std::fmt::Write as _;

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Convert any serializable value into a dynamic [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to a human-readable JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep the `.0` so the value reads back as a float, like serde_json.
        let _ = write!(out, "{f:.1}");
    } else {
        // Rust's Display prints the shortest string that round-trips.
        let _ = write!(out, "{f}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::msg(format!("{msg} at offset {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("expected low surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Build a [`Value`] from a JSON-like literal. Supports the object/array
/// literal forms the workspace uses; values may be arbitrary serializable
/// expressions or nested literals.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($body:tt)* }) => {{
        let mut fields: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::json_object_inner!(fields; $($body)*);
        $crate::Value::Object(fields)
    }};
    ([ $($body:tt)* ]) => {{
        let mut items: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_array_inner!(items; $($body)*);
        $crate::Value::Array(items)
    }};
    ($value:expr) => { $crate::to_value(&$value) };
}

/// Implementation detail of [`json!`]: munches `"key": value` pairs.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_inner {
    ($fields:ident;) => {};
    ($fields:ident; $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $fields.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $crate::json_object_inner!($fields; $($rest)*);
    };
    ($fields:ident; $key:literal : { $($inner:tt)* }) => {
        $fields.push(($key.to_string(), $crate::json!({ $($inner)* })));
    };
    ($fields:ident; $key:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $fields.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $crate::json_object_inner!($fields; $($rest)*);
    };
    ($fields:ident; $key:literal : [ $($inner:tt)* ]) => {
        $fields.push(($key.to_string(), $crate::json!([ $($inner)* ])));
    };
    ($fields:ident; $key:literal : null , $($rest:tt)*) => {
        $fields.push(($key.to_string(), $crate::Value::Null));
        $crate::json_object_inner!($fields; $($rest)*);
    };
    ($fields:ident; $key:literal : null) => {
        $fields.push(($key.to_string(), $crate::Value::Null));
    };
    ($fields:ident; $key:literal : $value:expr , $($rest:tt)*) => {
        $fields.push(($key.to_string(), $crate::to_value(&$value)));
        $crate::json_object_inner!($fields; $($rest)*);
    };
    ($fields:ident; $key:literal : $value:expr) => {
        $fields.push(($key.to_string(), $crate::to_value(&$value)));
    };
}

/// Implementation detail of [`json!`]: munches array elements.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_inner {
    ($items:ident;) => {};
    ($items:ident; { $($inner:tt)* } , $($rest:tt)*) => {
        $items.push($crate::json!({ $($inner)* }));
        $crate::json_array_inner!($items; $($rest)*);
    };
    ($items:ident; { $($inner:tt)* }) => {
        $items.push($crate::json!({ $($inner)* }));
    };
    ($items:ident; [ $($inner:tt)* ] , $($rest:tt)*) => {
        $items.push($crate::json!([ $($inner)* ]));
        $crate::json_array_inner!($items; $($rest)*);
    };
    ($items:ident; [ $($inner:tt)* ]) => {
        $items.push($crate::json!([ $($inner)* ]));
    };
    ($items:ident; null , $($rest:tt)*) => {
        $items.push($crate::Value::Null);
        $crate::json_array_inner!($items; $($rest)*);
    };
    ($items:ident; null) => {
        $items.push($crate::Value::Null);
    };
    ($items:ident; $value:expr , $($rest:tt)*) => {
        $items.push($crate::to_value(&$value));
        $crate::json_array_inner!($items; $($rest)*);
    };
    ($items:ident; $value:expr) => {
        $items.push($crate::to_value(&$value));
    };
}

#[cfg(test)]
#[allow(clippy::vec_init_then_push)] // fires inside local `json!` expansions
mod tests {
    use super::*;

    #[test]
    fn compact_output() {
        let v = json!({
            "name": "hacc",
            "iters": 50,
            "ratio": 0.5,
            "nested": { "ok": true },
            "xs": [1, 2, 3],
        });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"hacc","iters":50,"ratio":0.5,"nested":{"ok":true},"xs":[1,2,3]}"#
        );
    }

    #[test]
    fn pretty_output_round_trips() {
        let v = json!({ "a": 1, "b": [true, null], "c": "x\"y" });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_round_trip() {
        for f in [0.0, 1.0, -2.5, 1.0e-12, 123456.789, f64::MAX] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f, "round-trip of {f} via {text}");
        }
    }

    #[test]
    fn integer_widths_preserved() {
        let big = u64::MAX;
        let text = to_string(&big).unwrap();
        assert_eq!(text, big.to_string());
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn string_escapes() {
        let s = "line\nbreak \"quoted\" \\ tab\t".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parse_errors_report_offsets() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
