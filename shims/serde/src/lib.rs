//! Minimal `serde` stand-in.
//!
//! The build container has no crates.io access, so this shim provides the
//! subset of serde the workspace uses: the `Serialize` / `Deserialize`
//! traits (with derive macros from the sibling `serde_derive` shim) and a
//! JSON-shaped [`Value`] data model that `serde_json` (also shimmed)
//! serializes and parses.
//!
//! Unlike real serde there is no serializer abstraction — serialization
//! always goes through [`Value`]. That is sufficient (and bit-stable) for
//! this workspace: every consumer is the JSON round-trip in agent
//! state snapshots, result dumps and golden-trace tests.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// JSON-shaped dynamic value: the single data model all (de)serialization
/// goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent).
    Int(i64),
    /// Unsigned integer above `i64::MAX`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion-ordered so output is reproducible.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as an `i64`, if an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// The value as a `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) => u64::try_from(i).ok(),
            Value::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// (De)serialization error: a message, optionally with JSON text position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Convert to a dynamic value.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Build from a dynamic value.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| Error::msg(format!("expected integer, got {}", v.kind())))?;
                <$t>::try_from(i).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let u = *self as u64;
                match i64::try_from(u) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(u),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v
                    .as_u64()
                    .ok_or_else(|| {
                        Error::msg(format!("expected unsigned integer, got {}", v.kind()))
                    })?;
                <$t>::try_from(u).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() {
                    Value::Float(f)
                } else {
                    // serde_json serializes non-finite floats as null.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v.as_f64() {
                    Some(f) => Ok(f as $t),
                    // Round-trip for the non-finite → null mapping above.
                    None if *v == Value::Null => Ok(<$t>::NAN),
                    None => Err(Error::msg(format!("expected number, got {}", v.kind()))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // Real serde borrows from the input; this shim's data model owns
        // its strings, so a &'static str can only be produced by leaking.
        // The workspace deserializes such fields only in small test
        // fixtures, where the one-off leak is harmless.
        match v {
            Value::String(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::msg(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::msg(format!("expected string, got {}", v.kind())))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error::msg(format!("expected {N} elements, got {}", items.len())))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let expect = [$($idx),+].len();
                        if items.len() != expect {
                            return Err(Error::msg(format!(
                                "expected {}-tuple, got {} elements",
                                expect,
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::msg(format!("expected array, got {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: fmt::Display, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is reproducible across runs.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K: fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Support for derived impls
// ---------------------------------------------------------------------------

/// Helpers used by `serde_derive`-generated code. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Error, Value};

    /// Fetch a required struct field from an object value.
    pub fn field<'v>(v: &'v Value, ty: &str, name: &str) -> Result<&'v Value, Error> {
        match v {
            Value::Object(_) => v
                .get(name)
                .ok_or_else(|| Error::msg(format!("missing field `{name}` in {ty}"))),
            other => Err(Error::msg(format!(
                "expected object for {ty}, got {}",
                other.kind()
            ))),
        }
    }

    /// Expect an array payload with exactly `n` elements.
    pub fn elements<'v>(v: &'v Value, ty: &str, n: usize) -> Result<&'v [Value], Error> {
        match v {
            Value::Array(items) if items.len() == n => Ok(items),
            Value::Array(items) => Err(Error::msg(format!(
                "expected {n} elements for {ty}, got {}",
                items.len()
            ))),
            other => Err(Error::msg(format!(
                "expected array for {ty}, got {}",
                other.kind()
            ))),
        }
    }

    /// Decompose an externally-tagged enum value into (variant, payload).
    pub fn variant<'v>(v: &'v Value, ty: &str) -> Result<(&'v str, Option<&'v Value>), Error> {
        match v {
            Value::String(name) => Ok((name, None)),
            Value::Object(fields) if fields.len() == 1 => {
                Ok((fields[0].0.as_str(), Some(&fields[0].1)))
            }
            other => Err(Error::msg(format!(
                "expected enum variant for {ty}, got {}",
                other.kind()
            ))),
        }
    }

    /// Payload accessor for data-carrying variants.
    pub fn payload<'v>(
        payload: Option<&'v Value>,
        ty: &str,
        variant: &str,
    ) -> Result<&'v Value, Error> {
        payload.ok_or_else(|| Error::msg(format!("variant {ty}::{variant} expects a payload")))
    }

    /// Error for an unknown enum variant name.
    pub fn unknown_variant(ty: &str, name: &str) -> Error {
        Error::msg(format!("unknown variant `{name}` for {ty}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn options_and_vecs_round_trip() {
        let v: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&v.to_value()).unwrap(), None);
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()).unwrap(), xs);
    }

    #[test]
    fn tuples_round_trip() {
        let t = (1u32, "x".to_string());
        let v = t.to_value();
        assert_eq!(<(u32, String)>::from_value(&v).unwrap(), t);
    }

    #[test]
    fn large_u64_preserved() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }
}
