//! Cross-strategy conformance suite.
//!
//! Every [`SearchStrategy`] backend — GA, random, Latin hypercube,
//! Bayesian optimization — must satisfy the same contract the
//! scheduler's determinism proof rests on:
//!
//! 1. same seed ⇒ same proposal stream, for every thread count;
//! 2. proposals always stay inside the active reduced subspace;
//! 3. observing NaN / ±∞ (penalty artifacts) never corrupts state —
//!    it is exactly equivalent to observing the sanitized `0.0`;
//! 4. `snapshot()` + `restore()` resumes the stream byte-identically.
//!
//! The suite drives each backend two ways: raw (direct
//! `propose`/`observe` calls) and through [`run_strategy`] with a real
//! evaluation engine, so both the trait contract and its integration
//! hold for all four backends symmetrically.

use std::cell::RefCell;
use std::rc::Rc;
use tunio_iosim::Simulator;
use tunio_params::{Configuration, ParamId, ParameterSpace};
use tunio_tuner::subset::FixedSubset;
use tunio_tuner::{
    run_strategy, AllParams, BoConfig, BoStrategy, EvalEngine, GaConfig, GaStrategy, LhsStrategy,
    NoObserver, NoStop, RandomStrategy, SearchStrategy,
};
use tunio_workloads::{hacc, Variant, Workload};

const BUDGET: usize = 24;
const BATCH: usize = 4;

type Factory = Box<dyn Fn(u64) -> Box<dyn SearchStrategy>>;

/// Every backend under one constructor signature (seed in, boxed
/// strategy out) with the same 24-evaluation / 4-wide-window shape.
fn backends() -> Vec<(&'static str, Factory)> {
    let space = ParameterSpace::tunio_default;
    vec![
        (
            "ga",
            Box::new(move |seed| {
                Box::new(GaStrategy::new(
                    GaConfig {
                        population: BATCH,
                        max_iterations: (BUDGET / BATCH) as u32,
                        seed,
                        ..GaConfig::default()
                    },
                    space(),
                )) as Box<dyn SearchStrategy>
            }) as Factory,
        ),
        (
            "random",
            Box::new(move |seed| {
                Box::new(RandomStrategy::new(space(), BUDGET, seed)) as Box<dyn SearchStrategy>
            }),
        ),
        (
            "lhs",
            Box::new(move |seed| {
                Box::new(LhsStrategy::new(space(), BUDGET, BATCH, seed)) as Box<dyn SearchStrategy>
            }),
        ),
        (
            "bo",
            Box::new(move |seed| {
                Box::new(BoStrategy::new(
                    BoConfig::for_budget(BUDGET, BATCH, seed),
                    space(),
                )) as Box<dyn SearchStrategy>
            }),
        ),
    ]
}

fn engine(seed: u64) -> EvalEngine {
    EvalEngine::new(
        Simulator::cori_4node(seed),
        Workload::new(hacc(), Variant::Kernel),
        ParameterSpace::tunio_default(),
        3,
    )
}

/// A deterministic stand-in objective for raw-drive tests (no engine):
/// FNV-1a over the gene key, folded into a positive bandwidth-ish range.
fn fake_perf(config: &Configuration) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &g in config.genes() {
        h ^= g as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    1.0e8 + (h % 1_000_000) as f64
}

/// Decorator that records every proposal a strategy emits, so tests can
/// compare streams across runs without changing scheduler behaviour.
struct Recording {
    inner: Box<dyn SearchStrategy>,
    log: Rc<RefCell<Vec<Vec<usize>>>>,
}

impl SearchStrategy for Recording {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn set_subset(&mut self, subset: &[ParamId]) {
        self.inner.set_subset(subset);
    }
    fn propose(&mut self, max: usize) -> Vec<Configuration> {
        let out = self.inner.propose(max);
        let mut log = self.log.borrow_mut();
        for c in &out {
            log.push(c.genes().to_vec());
        }
        out
    }
    fn observe(&mut self, config: &Configuration, perf: f64, cost_s: f64) {
        self.inner.observe(config, perf, cost_s);
    }
    fn is_done(&self) -> bool {
        self.inner.is_done()
    }
    fn rng_state(&self) -> [u64; 4] {
        self.inner.rng_state()
    }
    fn snapshot(&self) -> String {
        self.inner.snapshot()
    }
    fn restore(&mut self, snapshot: &str) -> Result<(), String> {
        self.inner.restore(snapshot)
    }
}

/// Conformance 1: the proposal stream is a pure function of the seed —
/// one worker thread or four, the recorded stream and the trace match.
#[test]
fn same_seed_yields_the_same_proposal_stream_across_thread_counts() {
    for (label, make) in backends() {
        let run = |threads: usize| {
            let log = Rc::new(RefCell::new(Vec::new()));
            let strategy = Box::new(Recording {
                inner: make(29),
                log: Rc::clone(&log),
            });
            let run = run_strategy(
                &engine(29),
                strategy,
                &mut NoStop,
                &mut AllParams,
                BATCH,
                threads,
                &mut NoObserver,
            );
            (Rc::try_unwrap(log).unwrap().into_inner(), run)
        };
        let (serial_stream, serial) = run(1);
        let (parallel_stream, parallel) = run(4);
        assert!(
            !serial_stream.is_empty(),
            "{label}: the strategy must propose something"
        );
        assert_eq!(
            serial_stream, parallel_stream,
            "{label}: proposal stream must not depend on thread count"
        );
        assert_eq!(
            serde_json::to_string(&serial.trace).unwrap(),
            serde_json::to_string(&parallel.trace).unwrap(),
            "{label}: trace must not depend on thread count"
        );
        assert_eq!(serial.stats, parallel.stats, "{label}: stats must match");
    }
}

/// Conformance 2: with a reduced active subset, every proposal keeps
/// non-subset genes at their incumbent (default) values and every gene
/// inside its parameter's cardinality.
#[test]
fn proposals_stay_inside_the_reduced_space() {
    let subset = vec![ParamId::StripingFactor, ParamId::CbNodes];
    for (label, make) in backends() {
        let space = ParameterSpace::tunio_default();
        let default = space.default_config();
        let log = Rc::new(RefCell::new(Vec::new()));
        let strategy = Box::new(Recording {
            inner: make(31),
            log: Rc::clone(&log),
        });
        let mut provider = FixedSubset {
            subset: subset.clone(),
        };
        run_strategy(
            &engine(31),
            strategy,
            &mut NoStop,
            &mut provider,
            BATCH,
            2,
            &mut NoObserver,
        );
        let stream = Rc::try_unwrap(log).unwrap().into_inner();
        assert!(!stream.is_empty(), "{label}: nothing proposed");
        for genes in &stream {
            assert_eq!(genes.len(), ParamId::ALL.len(), "{label}: genome shape");
            for (i, &g) in genes.iter().enumerate() {
                let p = ParamId::ALL[i];
                assert!(
                    g < space.cardinality(p),
                    "{label}: gene {g} out of bounds for {} (cardinality {})",
                    p.name(),
                    space.cardinality(p)
                );
                if !subset.contains(&p) {
                    assert_eq!(
                        g,
                        default.gene(p),
                        "{label}: proposal mutated {} outside the active subset",
                        p.name()
                    );
                }
            }
        }
    }
}

/// Conformance 3: a NaN / +∞ / -∞ observation is exactly equivalent to
/// observing the sanitized 0.0 — same subsequent proposals, same
/// snapshot bytes, and the poisoned value never leaks into the
/// serialized state.
#[test]
fn non_finite_observations_never_corrupt_state() {
    for (label, make) in backends() {
        let mut poisoned = make(37);
        let mut clean = make(37);
        let poisons = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
        for round in 0..3 {
            let a = poisoned.propose(BATCH);
            let b = clean.propose(BATCH);
            assert_eq!(
                a.iter().map(|c| c.genes().to_vec()).collect::<Vec<_>>(),
                b.iter().map(|c| c.genes().to_vec()).collect::<Vec<_>>(),
                "{label}: streams diverged at round {round}"
            );
            for (i, config) in a.iter().enumerate() {
                // Poison one observation per round; the rest get the
                // deterministic objective in both strategies.
                let (p, c) = if i == 0 {
                    (poisons[round % poisons.len()], 0.0)
                } else {
                    (fake_perf(config), fake_perf(config))
                };
                poisoned.observe(config, p, 60.0);
                clean.observe(config, c, 60.0);
            }
        }
        let snap = poisoned.snapshot();
        assert_eq!(
            snap,
            clean.snapshot(),
            "{label}: snapshots diverged after sanitized observations"
        );
        assert!(
            !snap.contains("NaN") && !snap.to_lowercase().contains("inf"),
            "{label}: non-finite value leaked into the snapshot: {snap}"
        );
        // The stream keeps going identically after the poison.
        let a = poisoned.propose(BATCH);
        let b = clean.propose(BATCH);
        assert_eq!(
            a.iter().map(|c| c.genes().to_vec()).collect::<Vec<_>>(),
            b.iter().map(|c| c.genes().to_vec()).collect::<Vec<_>>(),
            "{label}: post-poison proposals diverged"
        );
    }
}

/// Conformance 4: snapshot mid-campaign, restore into a fresh instance,
/// and the continuation is byte-identical — proposals, rng state and
/// every subsequent snapshot.
#[test]
fn snapshot_restore_resumes_byte_identically() {
    for (label, make) in backends() {
        let mut original = make(41);
        // Advance two windows.
        for _ in 0..2 {
            for config in original.propose(BATCH) {
                original.observe(&config, fake_perf(&config), 60.0);
            }
        }
        let snap = original.snapshot();

        let mut restored = make(41);
        restored
            .restore(&snap)
            .unwrap_or_else(|e| panic!("{label}: restore failed: {e}"));
        assert_eq!(
            restored.snapshot(),
            snap,
            "{label}: restore → snapshot must round-trip"
        );
        assert_eq!(restored.rng_state(), original.rng_state(), "{label}");

        // Both continue to budget exhaustion, in lockstep.
        while !original.is_done() || !restored.is_done() {
            let a = original.propose(BATCH);
            let b = restored.propose(BATCH);
            assert_eq!(
                a.iter().map(|c| c.genes().to_vec()).collect::<Vec<_>>(),
                b.iter().map(|c| c.genes().to_vec()).collect::<Vec<_>>(),
                "{label}: continuation streams diverged"
            );
            if a.is_empty() {
                break;
            }
            for config in &a {
                original.observe(config, fake_perf(config), 60.0);
                restored.observe(config, fake_perf(config), 60.0);
            }
            assert_eq!(
                original.snapshot(),
                restored.snapshot(),
                "{label}: snapshots diverged mid-continuation"
            );
        }
        assert_eq!(original.is_done(), restored.is_done(), "{label}");
    }
}

/// Restore must reject garbage rather than half-apply it.
#[test]
fn restore_rejects_garbage_snapshots() {
    for (label, make) in backends() {
        let mut s = make(43);
        let before = s.snapshot();
        assert!(
            s.restore("not json at all").is_err(),
            "{label}: garbage must be rejected"
        );
        assert!(
            s.restore("{}").is_err(),
            "{label}: empty object must be rejected"
        );
        assert_eq!(
            s.snapshot(),
            before,
            "{label}: a failed restore must leave state untouched"
        );
    }
}
