//! Property tests for the asynchronous strategy scheduler.
//!
//! The scheduler is driven directly (no engine, no threads): proptest
//! supplies an arbitrary completion order over whatever is in flight,
//! modelling every interleaving a worker pool could produce — including
//! pathological ones (always-last-first) that real wall clocks rarely
//! hit. Under *every* order:
//!
//! * the drive loop terminates (no deadlock) and never starves while
//!   the budget is unexhausted;
//! * no gene key is ever dispatched twice (in-flight and settled
//!   proposals alias instead of re-simulating);
//! * the committed trace, the scheduler counters and the dispatch list
//!   are bitwise identical to the in-order (FIFO) drive (for early
//!   stops the dispatch lists agree as a prefix — see the test).

use proptest::prelude::*;
use std::collections::HashSet;
use tunio_params::{Configuration, ParameterSpace};
use tunio_tuner::{
    AllParams, BoConfig, BoStrategy, GaConfig, GaStrategy, HeuristicStop, Hooks, Job, LhsStrategy,
    NoObserver, NoStop, RandomStrategy, Scheduler, SchedulerStats, SearchStrategy, Stopper,
    TuningTrace,
};

/// Deterministic objective: FNV-1a over the gene key.
fn fake_perf(config: &Configuration) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &g in config.genes() {
        h ^= g as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    1.0e8 + (h % 1_000_000) as f64
}

struct DriveResult {
    trace: TuningTrace,
    stats: SchedulerStats,
    dispatched: Vec<Vec<usize>>,
}

/// Drive a scheduler to completion, completing in-flight jobs in the
/// order dictated by `order` (index into the in-flight set, modulo its
/// size; an empty `order` is plain FIFO). Panics on deadlock (bounded
/// step count), starvation, or a twice-dispatched key.
fn drive_with(
    scheduler: &mut Scheduler,
    stopper: &mut dyn Stopper,
    order: &[usize],
) -> DriveResult {
    let mut subsets = AllParams;
    let mut observer = NoObserver;
    let mut hooks = Hooks {
        stopper,
        subsets: &mut subsets,
        observer: &mut observer,
        racer: None,
    };
    scheduler.prime(&mut hooks);

    let mut in_flight: Vec<Job> = Vec::new();
    let mut dispatched: Vec<Vec<usize>> = Vec::new();
    let mut seen: HashSet<Vec<usize>> = HashSet::new();
    let mut next_pick = 0usize;
    let mut steps = 0usize;
    while !scheduler.finished() {
        steps += 1;
        assert!(steps < 100_000, "scheduler failed to terminate (deadlock)");
        while let Some(job) = scheduler.next_job() {
            let key = job.config.genes().to_vec();
            assert!(
                seen.insert(key.clone()),
                "key {key:?} dispatched twice — dedup broken"
            );
            dispatched.push(key);
            in_flight.push(job);
        }
        assert!(
            !in_flight.is_empty(),
            "starved: no jobs, nothing in flight, budget unexhausted"
        );
        let pick = order.get(next_pick).copied().unwrap_or(0) % in_flight.len();
        next_pick += 1;
        let job = in_flight.swap_remove(pick);
        let perf = fake_perf(&job.config);
        scheduler.complete(job.seq, job.config, perf, 60.0, &mut hooks);
    }
    assert_eq!(scheduler.outstanding(), 0, "completions drained");
    assert_eq!(scheduler.stats().starvations, 0);
    DriveResult {
        stats: scheduler.stats(),
        dispatched,
        trace: TuningTrace {
            records: Vec::new(),
            best_config: ParameterSpace::tunio_default().default_config(),
            best_perf: 0.0,
            default_perf: 0.0,
            stopped_early: false,
            stopper_name: String::new(),
        },
    }
}

/// Like [`drive`] but consumes the scheduler so the real trace can be
/// extracted.
fn drive_to_trace(strategy: Box<dyn SearchStrategy>, batch: usize, order: &[usize]) -> DriveResult {
    let space = ParameterSpace::tunio_default();
    let mut scheduler = Scheduler::new(strategy, space, batch, 1.0e8);
    let mut stopper = NoStop;
    let mut result = drive_with(&mut scheduler, &mut stopper, order);
    result.trace = scheduler.into_trace("no-stop");
    result
}

fn assert_equivalent(label: &str, a: &DriveResult, b: &DriveResult) {
    assert_eq!(
        serde_json::to_string(&a.trace).unwrap(),
        serde_json::to_string(&b.trace).unwrap(),
        "{label}: trace depends on completion order"
    );
    assert_eq!(
        a.stats, b.stats,
        "{label}: stats depend on completion order"
    );
    assert_eq!(
        a.dispatched, b.dispatched,
        "{label}: dispatch list depends on completion order"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random search under arbitrary completion orders: same trace,
    /// same dispatch list, exact budget, no stalls.
    #[test]
    fn random_search_is_order_invariant(
        order in proptest::collection::vec(0usize..16, 0..160),
        seed in 0u64..512,
    ) {
        let make = || Box::new(RandomStrategy::new(ParameterSpace::tunio_default(), 32, seed));
        let shuffled = drive_to_trace(make(), 4, &order);
        let fifo = drive_to_trace(make(), 4, &[]);
        assert_equivalent("random", &shuffled, &fifo);
        prop_assert_eq!(shuffled.stats.committed, 32, "budget exactness");
        prop_assert_eq!(shuffled.stats.barrier_stalls, 0);
        prop_assert_eq!(shuffled.trace.records.len(), 8);
    }

    /// Latin hypercube, same contract.
    #[test]
    fn lhs_is_order_invariant(
        order in proptest::collection::vec(0usize..16, 0..160),
        seed in 0u64..512,
    ) {
        let make = || Box::new(LhsStrategy::new(ParameterSpace::tunio_default(), 24, 4, seed));
        let shuffled = drive_to_trace(make(), 4, &order);
        let fifo = drive_to_trace(make(), 4, &[]);
        assert_equivalent("lhs", &shuffled, &fifo);
        prop_assert_eq!(shuffled.stats.committed, 24);
        prop_assert_eq!(shuffled.stats.barrier_stalls, 0);
    }

    /// The generation-synchronous GA: out-of-order completions within a
    /// generation must still breed the identical next generation.
    #[test]
    fn ga_is_order_invariant(
        order in proptest::collection::vec(0usize..16, 0..160),
        seed in 0u64..512,
    ) {
        let make = || Box::new(GaStrategy::new(
            GaConfig { population: 5, max_iterations: 4, seed, ..GaConfig::default() },
            ParameterSpace::tunio_default(),
        ));
        let shuffled = drive_to_trace(make(), 5, &order);
        let fifo = drive_to_trace(make(), 5, &[]);
        assert_equivalent("ga", &shuffled, &fifo);
        prop_assert!(shuffled.stats.barrier_stalls > 0, "the GA must barrier");
    }

    /// An early stopper firing mid-stream (queued proposals cancelled,
    /// in-flight completions discarded) is still order-invariant.
    #[test]
    fn early_stop_is_order_invariant(
        order in proptest::collection::vec(0usize..16, 0..400),
        seed in 0u64..128,
    ) {
        let space = ParameterSpace::tunio_default;
        let run = |order: &[usize]| {
            let mut scheduler = Scheduler::new(
                Box::new(RandomStrategy::new(space(), 400, seed)),
                space(),
                8,
                1.0e8,
            );
            let mut stopper = HeuristicStop::paper_default();
            let mut result = drive_with(&mut scheduler, &mut stopper, order);
            result.trace = scheduler.into_trace("heuristic");
            result
        };
        let shuffled = run(&order);
        let fifo = run(&[]);
        assert_eq!(
            serde_json::to_string(&shuffled.trace).unwrap(),
            serde_json::to_string(&fifo.trace).unwrap(),
            "early-stop: trace depends on completion order"
        );
        assert_eq!(shuffled.stats, fifo.stats, "early-stop: stats depend on completion order");
        // Dispatch lists may differ in LENGTH at the stop boundary: a
        // drive that buffers several commits into one pump can have its
        // final-pump proposals cancelled before they were ever popped,
        // while the in-order drive popped them a turn earlier. Those
        // jobs never commit, so the lists must still agree as a prefix.
        let n = shuffled.dispatched.len().min(fifo.dispatched.len());
        assert_eq!(
            &shuffled.dispatched[..n],
            &fifo.dispatched[..n],
            "early-stop: dispatch prefix depends on completion order"
        );
        prop_assert!(shuffled.trace.stopped_early, "heuristic stop must fire");
    }
}

/// Bayesian optimization drives a real surrogate fit per refit window,
/// so it gets a handful of adversarial fixed orders instead of a full
/// proptest sweep: reversed (always newest first), alternating, and a
/// stride pattern.
#[test]
fn bo_is_order_invariant_under_adversarial_orders() {
    let make = || {
        Box::new(BoStrategy::new(
            BoConfig::for_budget(16, 4, 53),
            ParameterSpace::tunio_default(),
        ))
    };
    let fifo = drive_to_trace(make(), 4, &[]);
    assert_eq!(fifo.stats.committed, 16);
    assert_eq!(fifo.stats.barrier_stalls, 0, "BO must never barrier");
    for (name, order) in [
        ("newest-first", vec![usize::MAX; 64]),
        ("alternating", (0..64).map(|i| i % 2).collect::<Vec<_>>()),
        ("stride-3", (0..64).map(|i| i * 3).collect::<Vec<_>>()),
    ] {
        let shuffled = drive_to_trace(make(), 4, &order);
        assert_equivalent(name, &shuffled, &fifo);
    }
}
