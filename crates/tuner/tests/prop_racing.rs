//! Safety properties for noise-robust racing evaluation.
//!
//! Racing exists to spend fewer simulations on clear losers without
//! ever throwing away a winner. These tests check exactly that, from
//! the outside: run a racing campaign on a noisy (interfered) cluster,
//! then re-evaluate every early-discarded configuration on a *quiet*
//! copy of the same machine. A discard is only legitimate if the
//! config's true (noise-free) bandwidth does not beat the incumbent it
//! lost to by more than the confidence margin the racer saw — plus a
//! small relative slack for the noisy-vs-true scale bias (interference
//! only ever slows runs down, so noisy aggregates sit slightly below
//! their quiet counterparts).
//!
//! The discard log itself must also be a pure function of the seed:
//! identical across worker thread counts, in the same commit order.

use tunio_iosim::{InterferenceModel, NoiseProfile, Simulator};
use tunio_params::{Configuration, ParameterSpace};
use tunio_tuner::{
    run_strategy_opts, AllParams, EvalEngine, NoObserver, NoStop, RaceDiscard, RacingConfig,
    RandomStrategy,
};
use tunio_workloads::{hacc, Variant, Workload};

fn engine(seed: u64, noise: Option<NoiseProfile>) -> EvalEngine {
    let mut sim = Simulator::cori_4node(seed);
    if let Some(profile) = noise {
        sim = sim.with_interference(InterferenceModel::new(profile, seed));
    }
    EvalEngine::new(
        sim,
        Workload::new(hacc(), Variant::Kernel),
        ParameterSpace::tunio_default(),
        3,
    )
}

/// Race a random-search campaign on a noisy engine and return its
/// discard log (commit order).
fn race(seed: u64, profile: NoiseProfile, threads: usize) -> Vec<RaceDiscard> {
    let eng = engine(seed, Some(profile));
    let run = run_strategy_opts(
        &eng,
        Box::new(RandomStrategy::new(
            ParameterSpace::tunio_default(),
            32,
            seed,
        )),
        &mut NoStop,
        &mut AllParams,
        8,
        threads,
        &mut NoObserver,
        Some(RacingConfig::default()),
    );
    assert_eq!(run.stats.committed, 32, "racing must not eat the budget");
    eng.race_discard_log()
}

/// The core safety property. `slack` is relative to the incumbent and
/// absorbs the downward bias interference puts on every noisy mean.
fn assert_no_winner_discarded(seed: u64, profile: NoiseProfile, slack: f64) {
    let discards = race(seed, profile, 1);
    let quiet = engine(seed, None);
    for d in &discards {
        // The racer's own rule, re-checked from the log.
        assert!(
            d.mean + d.half_width < d.incumbent,
            "seed {seed} {profile:?}: discard rule violated: {d:?}"
        );
        let true_perf = quiet.evaluate(&Configuration::new(d.key.clone())).perf;
        let bound = d.incumbent + d.half_width + slack * d.incumbent;
        assert!(
            true_perf <= bound,
            "seed {seed} {profile:?}: discarded a true winner: key {:?} \
             true {true_perf:.0} > incumbent {:.0} + CI {:.0} + slack ({bound:.0})",
            d.key,
            d.incumbent,
            d.half_width,
        );
    }
}

#[test]
fn busy_racing_never_discards_a_true_winner() {
    // Busy interference is mild (rare episodes, <=2.5x slowdown), so
    // the noisy aggregates track the quiet machine closely and a tight
    // relative slack suffices.
    let mut discards = 0usize;
    for seed in [3, 11, 21, 42] {
        discards += race(seed, NoiseProfile::Busy, 1).len();
        assert_no_winner_discarded(seed, NoiseProfile::Busy, 0.10);
    }
    // The property must not pass vacuously across the whole seed set.
    assert!(discards > 0, "busy racing never discarded anything");
}

#[test]
fn storm_racing_never_discards_a_true_winner() {
    // Storm slowdowns reach 5x, dragging noisy means well below quiet
    // truth, so the scale slack is wider — the property still pins the
    // discard decision to the confidence interval.
    for seed in [3, 11, 21, 42] {
        assert_no_winner_discarded(seed, NoiseProfile::Storm, 0.25);
    }
}

#[test]
fn discard_log_is_identical_across_thread_counts() {
    for seed in [7, 19] {
        for profile in [NoiseProfile::Busy, NoiseProfile::Storm] {
            let serial = race(seed, profile, 1);
            let parallel = race(seed, profile, 4);
            assert_eq!(
                serial, parallel,
                "seed {seed} {profile:?}: discard log depends on thread count"
            );
        }
    }
}
