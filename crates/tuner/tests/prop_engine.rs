//! Property tests for the parallel evaluation engine.
//!
//! The invariants under test are the ones the deterministic-replay
//! harness depends on: memoized results are bitwise-identical and free,
//! each unique gene key is simulated at most once (even under concurrent
//! or duplicated requests), and a parallel batch equals a serial
//! evaluation of the same configurations in the same order.

use proptest::prelude::*;
use tunio_iosim::Simulator;
use tunio_params::{Configuration, ParamId, ParameterSpace};
use tunio_tuner::EvalEngine;
use tunio_workloads::{hacc, Variant, Workload};

fn engine(seed: u64) -> EvalEngine {
    EvalEngine::new(
        Simulator::cori_4node(seed),
        Workload::new(hacc(), Variant::Kernel),
        ParameterSpace::tunio_default(),
        3,
    )
}

/// Clamp raw gene draws into each parameter's domain.
fn config_from(raw: &[usize]) -> Configuration {
    let space = ParameterSpace::tunio_default();
    let mut cfg = space.default_config();
    for (i, &g) in raw.iter().enumerate().take(ParamId::ALL.len()) {
        let p = ParamId::ALL[i];
        cfg.set_gene(p, g % space.cardinality(p));
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cache_hits_are_identical_and_free(raw in proptest::collection::vec(0usize..64, 12)) {
        let ev = engine(1);
        let cfg = config_from(&raw);
        let miss = ev.evaluate(&cfg);
        let hit = ev.evaluate(&cfg);
        prop_assert_eq!(miss.perf, hit.perf);
        prop_assert_eq!(miss.report, hit.report);
        prop_assert!(miss.cost_s > 0.0);
        prop_assert_eq!(hit.cost_s, 0.0);
        prop_assert_eq!(ev.evaluations(), 1);
        prop_assert_eq!(ev.cache_hits(), 1);
    }

    #[test]
    fn concurrent_duplicates_simulate_at_most_once(
        raw in proptest::collection::vec(0usize..64, 12),
        threads in 2usize..6,
    ) {
        let ev = engine(2);
        let cfg = config_from(&raw);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| ev.evaluate(&cfg));
            }
        });
        prop_assert_eq!(ev.evaluations(), 1, "one unique gene key, one simulation");
        prop_assert_eq!(ev.cache_hits(), (threads - 1) as u64);
    }

    #[test]
    fn batch_simulates_each_unique_key_once(
        raws in proptest::collection::vec(proptest::collection::vec(0usize..64, 12), 1..8),
        dup_mask in proptest::collection::vec(proptest::prelude::any::<bool>(), 8),
    ) {
        let ev = engine(3);
        // Base configurations plus a duplicate of each masked entry.
        let mut configs: Vec<Configuration> = raws.iter().map(|r| config_from(r)).collect();
        for (i, &dup) in dup_mask.iter().enumerate().take(raws.len()) {
            if dup {
                configs.push(configs[i].clone());
            }
        }
        let evals = ev.evaluate_batch(&configs);
        let unique: std::collections::HashSet<&Configuration> = configs.iter().collect();
        prop_assert_eq!(ev.evaluations(), unique.len() as u64);
        prop_assert_eq!(
            ev.cache_hits(),
            (configs.len() - unique.len()) as u64,
            "every non-first occurrence is a cache hit"
        );
        // Each unique key is charged exactly once, at its first occurrence.
        let mut seen = std::collections::HashSet::new();
        for (cfg, e) in configs.iter().zip(&evals) {
            if seen.insert(cfg) {
                prop_assert!(e.cost_s > 0.0, "first occurrence must be charged");
            } else {
                prop_assert_eq!(e.cost_s, 0.0, "repeat occurrence must be free");
            }
        }
    }

    #[test]
    fn batch_equals_serial_evaluation_bitwise(
        raws in proptest::collection::vec(proptest::collection::vec(0usize..64, 12), 1..10),
    ) {
        let configs: Vec<Configuration> = raws.iter().map(|r| config_from(r)).collect();
        let batch = engine(4).evaluate_batch(&configs);
        let serial_engine = engine(4);
        for (cfg, b) in configs.iter().zip(&batch) {
            let s = serial_engine.evaluate(cfg);
            prop_assert_eq!(b.perf, s.perf);
            prop_assert_eq!(b.report, s.report);
            prop_assert_eq!(b.cost_s, s.cost_s);
        }
    }
}
