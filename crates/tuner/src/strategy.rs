//! Pluggable search backends behind one `SearchStrategy` contract.
//!
//! The paper's tuner is a single fixed GA driven in lock-step
//! generations. SHAMan-style frameworks instead treat the optimization
//! engine as a plug-in: the driver asks the strategy for configurations
//! to evaluate (`propose`), reports results back (`observe`), and the
//! strategy is otherwise a black box. That contract is what makes
//! asynchronous evaluation possible — a strategy that can propose
//! without waiting for a full generation keeps every evaluator slot
//! busy (see [`crate::scheduler`]).
//!
//! Every backend is held to the same conformance rules (enforced by
//! `tests/strategy_conformance.rs`):
//!
//! * **Determinism** — the proposal stream is a pure function of the
//!   constructor arguments and the sequence of `observe` calls. Wall
//!   clock, thread count and `propose` chunking must not leak in.
//! * **Bounds** — proposals only move genes inside the active subset,
//!   and every gene stays inside its domain cardinality.
//! * **Poison safety** — observing NaN/infinite perf (a failed
//!   evaluation's penalty) must not corrupt internal state; non-finite
//!   values are sanitized to the failure penalty (0.0) on entry.
//! * **Snapshot/restore** — `snapshot()` serializes the complete
//!   mutable state (RNG included); a fresh instance constructed with
//!   the same arguments plus `restore()` must continue byte-identically.

use crate::ga::{Crossover, GaConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tunio_params::{Configuration, ParamId, ParameterSpace};

/// A pluggable search backend.
///
/// The driver owns the evaluation loop; the strategy only decides
/// *which* configurations to try next. `propose` may return fewer
/// configurations than requested (a generation-synchronous strategy
/// like the GA returns none while it waits for outstanding results);
/// returning an empty vector while evaluations are in flight is how a
/// strategy expresses a barrier.
pub trait SearchStrategy {
    /// Stable identifier (`ga`, `random`, `lhs`, `bo`).
    fn name(&self) -> &'static str;

    /// Set the active parameter subset. Proposals only vary genes in
    /// the subset; everything else stays at the incumbent value.
    fn set_subset(&mut self, subset: &[ParamId]);

    /// Inject warm-start seed configurations (e.g. derived from static
    /// workload inference) before the first proposal. Strategies fold
    /// the seeds into their starting state — the GA plants them in its
    /// initial population, the asynchronous backends adopt the first
    /// seed as the incumbent that proposals perturb. Must be called
    /// before any `propose`/`observe`; once the search has started (or
    /// state has been `restore`d from a snapshot) seeds are ignored, so
    /// resumed campaigns are unaffected. Default: no-op.
    fn warm_start(&mut self, _seeds: &[Configuration]) {}

    /// Propose up to `max` configurations to evaluate next.
    fn propose(&mut self, max: usize) -> Vec<Configuration>;

    /// Report one completed evaluation. `perf` is bytes/s (higher is
    /// better); `cost_s` is the simulated time charged. Observations
    /// arrive in a deterministic order (the scheduler commits them in
    /// proposal order), possibly long after the matching `propose`.
    fn observe(&mut self, config: &Configuration, perf: f64, cost_s: f64);

    /// Whether the evaluation budget is exhausted.
    fn is_done(&self) -> bool;

    /// Raw RNG state, for checkpoint divergence verification.
    fn rng_state(&self) -> [u64; 4];

    /// Serialize the complete mutable state to a JSON string.
    fn snapshot(&self) -> String;

    /// Restore state from a [`SearchStrategy::snapshot`] string.
    fn restore(&mut self, snapshot: &str) -> Result<(), String>;
}

/// Clamp a reported perf/cost to something safe to store: failed
/// evaluations surface as the failure-policy penalty (0.0 by default),
/// and NaN/infinities would otherwise poison sort orders, surrogate
/// training targets and JSON snapshots.
pub fn sanitize(value: f64) -> f64 {
    if value.is_finite() {
        value
    } else {
        0.0
    }
}

fn rng_state_vec(rng: &StdRng) -> Vec<u64> {
    rng.state().to_vec()
}

fn rng_from_state_vec(state: &[u64]) -> Result<StdRng, String> {
    if state.len() != 4 {
        return Err(format!("rng state must have 4 words, got {}", state.len()));
    }
    // The all-zero state is xoshiro256++'s fixed point: a generator
    // restored from it emits zeros forever. It is unreachable from
    // `seed_from_u64`, so its presence means a corrupted snapshot.
    if state.iter().all(|&w| w == 0) {
        return Err("rng state is all zeros (xoshiro fixed point)".into());
    }
    Ok(StdRng::from_state([state[0], state[1], state[2], state[3]]))
}

fn subset_to_indices(subset: &[ParamId]) -> Vec<usize> {
    subset.iter().map(|p| p.index()).collect()
}

fn subset_from_indices(indices: &[usize]) -> Result<Vec<ParamId>, String> {
    indices
        .iter()
        .map(|&i| {
            ParamId::ALL
                .get(i)
                .copied()
                .ok_or_else(|| format!("subset index {i} out of range"))
        })
        .collect()
}

fn genes_vec(configs: &[Configuration]) -> Vec<Vec<usize>> {
    configs.iter().map(|c| c.genes().to_vec()).collect()
}

fn configs_from_genes(genes: &[Vec<usize>]) -> Vec<Configuration> {
    genes
        .iter()
        .map(|g| Configuration::new(g.clone()))
        .collect()
}

// ---------------------------------------------------------------------------
// GA
// ---------------------------------------------------------------------------

/// Serialized [`GaStrategy`] state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct GaState {
    rng: Vec<u64>,
    subset: Vec<usize>,
    population: Vec<Vec<usize>>,
    next_propose: usize,
    scored_perf: Vec<f64>,
    scored_genes: Vec<Vec<usize>>,
    generation: u32,
    done: bool,
    initialized: bool,
    seeds: Vec<Vec<usize>>,
}

/// The paper's genetic algorithm behind the [`SearchStrategy`] contract.
///
/// Ported gene-for-gene from [`crate::ga::GaTuner`]: same initial
/// population (default + 0.12-rate partial mutants), same tournament
/// selection (best two of `tournament` draws), same elitism and masked
/// crossover/mutation — driven with observations in proposal order it
/// reproduces the `GaTuner` RNG stream exactly. It is *generation
/// synchronous*: `propose` returns nothing while any individual of the
/// current generation is unevaluated, which is precisely the barrier
/// the asynchronous backends exist to remove.
#[derive(Debug)]
pub struct GaStrategy {
    cfg: GaConfig,
    space: ParameterSpace,
    rng: StdRng,
    subset: Vec<ParamId>,
    population: Vec<Configuration>,
    next_propose: usize,
    scored: Vec<(f64, Configuration)>,
    generation: u32,
    done: bool,
    initialized: bool,
    seeds: Vec<Configuration>,
}

impl GaStrategy {
    /// Build a GA strategy over `space` with the given hyperparameters.
    pub fn new(cfg: GaConfig, space: ParameterSpace) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        GaStrategy {
            cfg,
            space,
            rng,
            subset: ParamId::ALL.to_vec(),
            population: Vec::new(),
            next_propose: 0,
            scored: Vec::new(),
            generation: 1,
            done: false,
            initialized: false,
            seeds: Vec::new(),
        }
    }

    fn pop_size(&self) -> usize {
        self.cfg.population.max(2)
    }

    fn breed(&mut self) {
        let pop_size = self.pop_size();
        let mut scored = std::mem::take(&mut self.scored);
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut next: Vec<Configuration> = scored
            .iter()
            .take(self.cfg.elite.min(scored.len()))
            .map(|(_, c)| c.clone())
            .collect();
        while next.len() < pop_size {
            let (p1, p2) = {
                let k = self.cfg.tournament.max(2).min(scored.len());
                let mut picks: Vec<&(f64, Configuration)> = (0..k)
                    .map(|_| &scored[self.rng.gen_range(0..scored.len())])
                    .collect();
                picks.sort_by(|a, b| b.0.total_cmp(&a.0));
                (&picks[0].1, &picks[1].1)
            };
            let mut child = match self.cfg.crossover {
                Crossover::Uniform => p1.crossover_masked(p2, &self.subset, &mut self.rng),
                Crossover::OnePoint => {
                    let cut = self.rng.gen_range(0..=self.subset.len());
                    let mut c = p1.clone();
                    for &p in &self.subset[cut..] {
                        c.set_gene(p, p2.gene(p));
                    }
                    c
                }
            };
            child.mutate_masked(
                &self.space,
                &self.subset,
                self.cfg.mutation_rate,
                &mut self.rng,
            );
            next.push(child);
        }
        self.population = next;
        self.next_propose = 0;
    }
}

impl SearchStrategy for GaStrategy {
    fn name(&self) -> &'static str {
        "ga"
    }

    fn set_subset(&mut self, subset: &[ParamId]) {
        if !subset.is_empty() {
            self.subset = subset.to_vec();
        }
    }

    fn warm_start(&mut self, seeds: &[Configuration]) {
        if !self.initialized {
            self.seeds = seeds.to_vec();
        }
    }

    fn propose(&mut self, max: usize) -> Vec<Configuration> {
        if self.done || max == 0 {
            return Vec::new();
        }
        if !self.initialized {
            self.initialized = true;
            self.population.push(self.space.default_config());
            // Warm-start seeds join the initial population right after
            // the default configuration (capped so at least one mutant
            // slot survives when pop_size is tiny); mutants fill the
            // rest exactly as in the cold-start stream.
            let seeds = std::mem::take(&mut self.seeds);
            for seed in seeds.into_iter().take(self.pop_size() - 1) {
                if self.population.len() < self.pop_size() {
                    self.population.push(seed);
                }
            }
            while self.population.len() < self.pop_size() {
                let mut c = self.space.default_config();
                c.mutate_masked(&self.space, &self.subset, 0.12, &mut self.rng);
                self.population.push(c);
            }
        }
        let remaining = self.population.len() - self.next_propose;
        let n = max.min(remaining);
        let out = self.population[self.next_propose..self.next_propose + n].to_vec();
        self.next_propose += n;
        out
    }

    fn observe(&mut self, config: &Configuration, perf: f64, _cost_s: f64) {
        if self.done {
            return;
        }
        self.scored.push((sanitize(perf), config.clone()));
        if self.scored.len() >= self.population.len() && self.next_propose == self.population.len()
        {
            // Generation complete: either retire or breed the next one.
            if self.generation >= self.cfg.max_iterations {
                self.done = true;
                return;
            }
            self.generation += 1;
            self.breed();
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    fn snapshot(&self) -> String {
        let state = GaState {
            rng: rng_state_vec(&self.rng),
            subset: subset_to_indices(&self.subset),
            population: genes_vec(&self.population),
            next_propose: self.next_propose,
            scored_perf: self.scored.iter().map(|(p, _)| *p).collect(),
            scored_genes: self
                .scored
                .iter()
                .map(|(_, c)| c.genes().to_vec())
                .collect(),
            generation: self.generation,
            done: self.done,
            initialized: self.initialized,
            seeds: genes_vec(&self.seeds),
        };
        serde_json::to_string(&state).expect("GA state serializes")
    }

    fn restore(&mut self, snapshot: &str) -> Result<(), String> {
        let state: GaState = serde_json::from_str(snapshot).map_err(|e| e.to_string())?;
        if state.scored_perf.len() != state.scored_genes.len() {
            return Err("scored perf/genes length mismatch".into());
        }
        self.rng = rng_from_state_vec(&state.rng)?;
        self.subset = subset_from_indices(&state.subset)?;
        self.population = configs_from_genes(&state.population);
        self.next_propose = state.next_propose;
        self.scored = state
            .scored_perf
            .iter()
            .zip(&state.scored_genes)
            .map(|(&p, g)| (p, Configuration::new(g.clone())))
            .collect();
        self.generation = state.generation;
        self.done = state.done;
        self.initialized = state.initialized;
        self.seeds = configs_from_genes(&state.seeds);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Random search
// ---------------------------------------------------------------------------

/// Serialized [`RandomStrategy`] state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RandomState {
    rng: Vec<u64>,
    subset: Vec<usize>,
    proposed: usize,
    best_genes: Vec<usize>,
    best_perf: Option<f64>,
}

/// Asynchronous random search: every proposal redraws the active
/// subset's genes uniformly from the incumbent best configuration.
///
/// Fully asynchronous — `propose` never blocks on outstanding results,
/// so evaluator slots refill the moment a simulation completes.
#[derive(Debug)]
pub struct RandomStrategy {
    space: ParameterSpace,
    rng: StdRng,
    subset: Vec<ParamId>,
    max_evals: usize,
    proposed: usize,
    best: Configuration,
    best_perf: Option<f64>,
}

impl RandomStrategy {
    /// Random search over `space` with an evaluation budget and seed.
    pub fn new(space: ParameterSpace, max_evals: usize, seed: u64) -> Self {
        let best = space.default_config();
        RandomStrategy {
            space,
            rng: StdRng::seed_from_u64(seed),
            subset: ParamId::ALL.to_vec(),
            max_evals,
            proposed: 0,
            best,
            best_perf: None,
        }
    }
}

impl SearchStrategy for RandomStrategy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn set_subset(&mut self, subset: &[ParamId]) {
        if !subset.is_empty() {
            self.subset = subset.to_vec();
        }
    }

    fn warm_start(&mut self, seeds: &[Configuration]) {
        // Adopt the first seed as the incumbent that proposals redraw
        // from — only before anything has been proposed or observed, so
        // restored campaigns keep their checkpointed incumbent.
        if let Some(seed) = seeds.first() {
            if self.best_perf.is_none() && self.proposed == 0 {
                self.best = seed.clone();
            }
        }
    }

    fn propose(&mut self, max: usize) -> Vec<Configuration> {
        let n = max.min(self.max_evals.saturating_sub(self.proposed));
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let mut candidate = self.best.clone();
            for &p in &self.subset {
                candidate.set_gene(p, self.space.random_value(p, &mut self.rng));
            }
            out.push(candidate);
        }
        self.proposed += n;
        out
    }

    fn observe(&mut self, config: &Configuration, perf: f64, _cost_s: f64) {
        let perf = sanitize(perf);
        if self.best_perf.map(|b| perf > b).unwrap_or(true) {
            self.best_perf = Some(perf);
            self.best = config.clone();
        }
    }

    fn is_done(&self) -> bool {
        self.proposed >= self.max_evals
    }

    fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    fn snapshot(&self) -> String {
        let state = RandomState {
            rng: rng_state_vec(&self.rng),
            subset: subset_to_indices(&self.subset),
            proposed: self.proposed,
            best_genes: self.best.genes().to_vec(),
            best_perf: self.best_perf,
        };
        serde_json::to_string(&state).expect("random state serializes")
    }

    fn restore(&mut self, snapshot: &str) -> Result<(), String> {
        let state: RandomState = serde_json::from_str(snapshot).map_err(|e| e.to_string())?;
        self.rng = rng_from_state_vec(&state.rng)?;
        self.subset = subset_from_indices(&state.subset)?;
        self.proposed = state.proposed;
        self.best = Configuration::new(state.best_genes);
        self.best_perf = state.best_perf;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Latin-hypercube sampling
// ---------------------------------------------------------------------------

/// Serialized [`LhsStrategy`] state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LhsState {
    rng: Vec<u64>,
    subset: Vec<usize>,
    proposed: usize,
    buffer: Vec<Vec<usize>>,
    best_genes: Vec<usize>,
    best_perf: Option<f64>,
}

/// Latin-hypercube sampling over the discrete domains.
///
/// Proposals come in rounds of `strata` points: each active parameter's
/// domain is cut into `strata` equal slices, a fresh random permutation
/// assigns one slice per point, and the gene is drawn uniformly inside
/// its slice — so every round covers each parameter's whole range with
/// at most one point per slice. Rounds are independent, which keeps the
/// stream asynchronous: the next round is generated the moment the
/// buffer drains, never waiting on observations.
#[derive(Debug)]
pub struct LhsStrategy {
    space: ParameterSpace,
    rng: StdRng,
    subset: Vec<ParamId>,
    max_evals: usize,
    strata: usize,
    proposed: usize,
    buffer: Vec<Configuration>,
    best: Configuration,
    best_perf: Option<f64>,
}

impl LhsStrategy {
    /// LHS over `space`: `max_evals` budget, `strata` points per round.
    pub fn new(space: ParameterSpace, max_evals: usize, strata: usize, seed: u64) -> Self {
        let best = space.default_config();
        LhsStrategy {
            space,
            rng: StdRng::seed_from_u64(seed),
            subset: ParamId::ALL.to_vec(),
            max_evals,
            strata: strata.max(1),
            proposed: 0,
            buffer: Vec::new(),
            best,
            best_perf: None,
        }
    }

    fn refill_round(&mut self) {
        let n = self.strata.min(self.max_evals - self.proposed).max(1);
        // One independent permutation of the strata per parameter.
        let perms: Vec<Vec<usize>> = (0..self.subset.len())
            .map(|_| {
                let mut perm: Vec<usize> = (0..n).collect();
                // Fisher-Yates with the strategy RNG.
                for i in (1..n).rev() {
                    let j = self.rng.gen_range(0..=i);
                    perm.swap(i, j);
                }
                perm
            })
            .collect();
        // `point` indexes the *inner* vectors (`perms[pi][point]`), so an
        // iterator over `perms` would not fit.
        #[allow(clippy::needless_range_loop)]
        for point in 0..n {
            let mut candidate = self.best.clone();
            for (pi, &p) in self.subset.iter().enumerate() {
                let card = self.space.cardinality(p);
                let stratum = perms[pi][point];
                let lo = stratum * card / n;
                let hi = (((stratum + 1) * card / n).max(lo + 1)).min(card);
                let idx = if hi - lo <= 1 {
                    lo.min(card - 1)
                } else {
                    lo + self.rng.gen_range(0..hi - lo)
                };
                candidate.set_gene(p, idx);
            }
            self.buffer.push(candidate);
        }
        // Proposals pop from the back; reverse so stream order matches
        // generation order.
        self.buffer.reverse();
    }
}

impl SearchStrategy for LhsStrategy {
    fn name(&self) -> &'static str {
        "lhs"
    }

    fn set_subset(&mut self, subset: &[ParamId]) {
        if !subset.is_empty() && subset != self.subset.as_slice() {
            self.subset = subset.to_vec();
            // A pending round was stratified over the old subset; drop
            // it so the new round covers the right parameters.
            self.buffer.clear();
        }
    }

    fn warm_start(&mut self, seeds: &[Configuration]) {
        // Seeds set the incumbent the stratified points are built on
        // (its out-of-subset genes carry into every proposal).
        if let Some(seed) = seeds.first() {
            if self.best_perf.is_none() && self.proposed == 0 {
                self.best = seed.clone();
            }
        }
    }

    fn propose(&mut self, max: usize) -> Vec<Configuration> {
        let mut out = Vec::new();
        while out.len() < max && self.proposed < self.max_evals {
            if self.buffer.is_empty() {
                self.refill_round();
            }
            let candidate = self.buffer.pop().expect("refilled round is non-empty");
            self.proposed += 1;
            out.push(candidate);
        }
        out
    }

    fn observe(&mut self, config: &Configuration, perf: f64, _cost_s: f64) {
        let perf = sanitize(perf);
        if self.best_perf.map(|b| perf > b).unwrap_or(true) {
            self.best_perf = Some(perf);
            self.best = config.clone();
        }
    }

    fn is_done(&self) -> bool {
        self.proposed >= self.max_evals
    }

    fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    fn snapshot(&self) -> String {
        let state = LhsState {
            rng: rng_state_vec(&self.rng),
            subset: subset_to_indices(&self.subset),
            proposed: self.proposed,
            buffer: genes_vec(&self.buffer),
            best_genes: self.best.genes().to_vec(),
            best_perf: self.best_perf,
        };
        serde_json::to_string(&state).expect("LHS state serializes")
    }

    fn restore(&mut self, snapshot: &str) -> Result<(), String> {
        let state: LhsState = serde_json::from_str(snapshot).map_err(|e| e.to_string())?;
        self.rng = rng_from_state_vec(&state.rng)?;
        self.subset = subset_from_indices(&state.subset)?;
        self.proposed = state.proposed;
        self.buffer = configs_from_genes(&state.buffer);
        self.best = Configuration::new(state.best_genes);
        self.best_perf = state.best_perf;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ParameterSpace {
        ParameterSpace::tunio_default()
    }

    #[test]
    fn ga_strategy_is_generation_synchronous() {
        let mut ga = GaStrategy::new(
            GaConfig {
                population: 4,
                max_iterations: 2,
                seed: 7,
                ..Default::default()
            },
            space(),
        );
        let first = ga.propose(16);
        assert_eq!(first.len(), 4, "one full generation");
        assert!(ga.propose(16).is_empty(), "barrier until observed");
        for c in &first {
            ga.observe(c, 1.0, 0.5);
        }
        let second = ga.propose(16);
        assert_eq!(second.len(), 4, "next generation after the barrier");
    }

    #[test]
    fn ga_budget_exhaustion_sets_done() {
        let mut ga = GaStrategy::new(
            GaConfig {
                population: 3,
                max_iterations: 1,
                seed: 1,
                ..Default::default()
            },
            space(),
        );
        for c in ga.propose(8) {
            ga.observe(&c, 2.0, 0.1);
        }
        assert!(ga.is_done());
        assert!(ga.propose(8).is_empty());
    }

    #[test]
    fn random_and_lhs_never_barrier() {
        let sp = space();
        let mut rs = RandomStrategy::new(sp.clone(), 10, 3);
        let mut lhs = LhsStrategy::new(sp, 10, 4, 3);
        // No observe calls at all: the full budget must still stream out.
        assert_eq!(rs.propose(10).len(), 10);
        assert_eq!(lhs.propose(10).len(), 10);
        assert!(rs.is_done() && lhs.is_done());
    }

    #[test]
    fn lhs_rounds_stratify_each_parameter() {
        let sp = space();
        let strata = 4;
        let mut lhs = LhsStrategy::new(sp.clone(), strata, strata, 11);
        let round = lhs.propose(strata);
        assert_eq!(round.len(), strata);
        // Every parameter with cardinality >= strata must see exactly
        // one point per stratum slice (the same floor-division bounds
        // the generator uses).
        for &p in ParamId::ALL.iter() {
            let card = sp.cardinality(p);
            if card < strata {
                continue;
            }
            for stratum in 0..strata {
                let lo = stratum * card / strata;
                let hi = ((stratum + 1) * card / strata).max(lo + 1).min(card);
                let hits = round
                    .iter()
                    .filter(|c| (lo..hi).contains(&c.gene(p)))
                    .count();
                assert_eq!(hits, 1, "{} stratum {stratum} hit {hits} times", p.name());
            }
        }
    }

    fn seed_config(sp: &ParameterSpace) -> Configuration {
        let mut c = sp.default_config();
        for p in ParamId::ALL {
            c.set_gene(p, sp.cardinality(p) - 1);
        }
        c
    }

    #[test]
    fn ga_warm_start_plants_seeds_in_initial_population() {
        let sp = space();
        let seed = seed_config(&sp);
        let mut ga = GaStrategy::new(
            GaConfig {
                population: 4,
                max_iterations: 2,
                seed: 7,
                ..Default::default()
            },
            sp.clone(),
        );
        ga.warm_start(std::slice::from_ref(&seed));
        let first = ga.propose(16);
        assert_eq!(first[0], sp.default_config(), "default config still leads");
        assert_eq!(first[1], seed, "seed follows the default");
        assert_ne!(first[2], seed, "mutants fill the rest");
    }

    #[test]
    fn ga_warm_start_after_init_is_ignored() {
        let sp = space();
        let mk = || {
            GaStrategy::new(
                GaConfig {
                    population: 4,
                    max_iterations: 2,
                    seed: 7,
                    ..Default::default()
                },
                sp.clone(),
            )
        };
        let mut cold = mk();
        let mut late = mk();
        let a = cold.propose(16);
        let _ = late.propose(16);
        late.warm_start(&[seed_config(&sp)]);
        for c in &a {
            cold.observe(c, 1.0, 0.1);
            late.observe(c, 1.0, 0.1);
        }
        assert_eq!(
            cold.propose(16),
            late.propose(16),
            "late seeds must not fork the stream"
        );
    }

    #[test]
    fn ga_snapshot_roundtrips_pending_seeds() {
        let sp = space();
        let seed = seed_config(&sp);
        let mut a = GaStrategy::new(
            GaConfig {
                population: 4,
                max_iterations: 2,
                seed: 3,
                ..Default::default()
            },
            sp.clone(),
        );
        a.warm_start(std::slice::from_ref(&seed));
        let snap = a.snapshot();
        let mut b = GaStrategy::new(
            GaConfig {
                population: 4,
                max_iterations: 2,
                seed: 3,
                ..Default::default()
            },
            sp,
        );
        b.restore(&snap).expect("restore");
        assert_eq!(
            a.propose(16),
            b.propose(16),
            "seeds survive snapshot/restore"
        );
    }

    #[test]
    fn async_warm_start_sets_incumbent_only_before_first_proposal() {
        let sp = space();
        let seed = seed_config(&sp);
        let mut rs = RandomStrategy::new(sp.clone(), 10, 3);
        rs.warm_start(std::slice::from_ref(&seed));
        assert_eq!(rs.best, seed, "random adopts the seed incumbent");
        let mut lhs = LhsStrategy::new(sp.clone(), 10, 4, 3);
        lhs.warm_start(std::slice::from_ref(&seed));
        assert_eq!(lhs.best, seed, "lhs adopts the seed incumbent");
        // Once anything was proposed, seeds are ignored.
        let mut started = RandomStrategy::new(sp.clone(), 10, 3);
        let _ = started.propose(1);
        started.warm_start(std::slice::from_ref(&seed));
        assert_eq!(started.best, sp.default_config(), "late seed ignored");
    }

    #[test]
    fn sanitize_clamps_non_finite() {
        assert_eq!(sanitize(f64::NAN), 0.0);
        assert_eq!(sanitize(f64::INFINITY), 0.0);
        assert_eq!(sanitize(-3.5), -3.5);
    }

    #[test]
    fn restore_rejects_zero_rng_state() {
        let sp = space();
        let mut rs = RandomStrategy::new(sp, 4, 1);
        let snap = rs.snapshot().replace(
            &format!("{:?}", rs.rng_state().to_vec()).replace(' ', ""),
            "[0,0,0,0]",
        );
        assert!(rs.restore(&snap).is_err(), "zero state must be rejected");
    }
}
