//! Configuration evaluation against the simulated I/O stack.

use std::collections::HashMap;
use tunio_iosim::{RunReport, Simulator};
use tunio_params::{Configuration, ParameterSpace};
use tunio_workloads::Workload;

/// Result of evaluating one configuration.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The evaluated configuration.
    pub config: Configuration,
    /// Averaged run report (over `repeats` runs).
    pub report: RunReport,
    /// The tuning objective `perf` in bytes/s.
    pub perf: f64,
    /// Time charged to the tuning budget for this evaluation, seconds.
    /// Zero for memoized repeats; otherwise one run's elapsed time (§IV:
    /// extra runs for averaging are "a necessary expense for a given
    /// platform" and not accumulated).
    pub cost_s: f64,
}

/// Evaluates configurations for a fixed workload, memoizing repeats.
#[derive(Debug, Clone)]
pub struct Evaluator {
    /// The simulated machine.
    pub sim: Simulator,
    /// The application (or kernel) under tuning.
    pub workload: Workload,
    /// The tuning space.
    pub space: ParameterSpace,
    /// Runs averaged per evaluation (the paper uses 3).
    pub repeats: u32,
    cache: HashMap<Vec<usize>, (RunReport, f64)>,
    evaluations: u64,
    cache_hits: u64,
}

impl Evaluator {
    /// Create an evaluator; `repeats` follows the paper's 3-run averaging.
    pub fn new(sim: Simulator, workload: Workload, space: ParameterSpace, repeats: u32) -> Self {
        Evaluator {
            sim,
            workload,
            space,
            repeats: repeats.max(1),
            cache: HashMap::new(),
            evaluations: 0,
            cache_hits: 0,
        }
    }

    /// Evaluate a configuration (memoized).
    pub fn evaluate(&mut self, config: &Configuration) -> Evaluation {
        let key = config.genes().to_vec();
        if let Some((report, perf)) = self.cache.get(&key) {
            self.cache_hits += 1;
            return Evaluation {
                config: config.clone(),
                report: *report,
                perf: *perf,
                cost_s: 0.0,
            };
        }
        self.evaluations += 1;
        let phases = self.workload.phases();
        let stack = config.resolve(&self.space);
        let report = self.sim.run_averaged(&phases, &stack, self.repeats);
        let perf = report.perf();
        self.cache.insert(key, (report, perf));
        Evaluation {
            config: config.clone(),
            report,
            perf,
            cost_s: report.elapsed_s,
        }
    }

    /// Number of simulator evaluations actually performed (cache misses).
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Number of memoized lookups served.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tunio_iosim::Simulator;
    use tunio_params::ParameterSpace;
    use tunio_workloads::{hacc, Variant, Workload};

    fn evaluator() -> Evaluator {
        Evaluator::new(
            Simulator::cori_4node(1),
            Workload::new(hacc(), Variant::Kernel),
            ParameterSpace::tunio_default(),
            3,
        )
    }

    #[test]
    fn evaluation_produces_positive_perf_and_cost() {
        let mut ev = evaluator();
        let cfg = ev.space.default_config();
        let e = ev.evaluate(&cfg);
        assert!(e.perf > 0.0);
        assert!(e.cost_s > 0.0);
        assert_eq!(ev.evaluations(), 1);
    }

    #[test]
    fn repeat_evaluations_are_memoized_and_free() {
        let mut ev = evaluator();
        let cfg = ev.space.default_config();
        let first = ev.evaluate(&cfg);
        let second = ev.evaluate(&cfg);
        assert_eq!(first.perf, second.perf);
        assert_eq!(second.cost_s, 0.0, "memoized evaluation must cost nothing");
        assert_eq!(ev.evaluations(), 1);
        assert_eq!(ev.cache_hits(), 1);
    }

    #[test]
    fn different_configs_differ_in_perf() {
        let mut ev = evaluator();
        let default = ev.evaluate(&ev.space.default_config().clone());
        let mut tuned_cfg = ev.space.default_config();
        tuned_cfg.set_gene(tunio_params::ParamId::CollectiveIo, 1);
        tuned_cfg.set_gene(tunio_params::ParamId::StripingFactor, 9);
        let tuned = ev.evaluate(&tuned_cfg);
        assert!(tuned.perf != default.perf);
    }

    #[test]
    fn cost_counts_single_run_not_repeats() {
        // Averaging 3 runs must not triple the charged cost.
        let mut ev1 = evaluator();
        ev1.repeats = 1;
        let mut ev3 = evaluator();
        ev3.repeats = 3;
        let cfg = ev1.space.default_config();
        let c1 = ev1.evaluate(&cfg).cost_s;
        let c3 = ev3.evaluate(&cfg).cost_s;
        assert!(
            (c3 - c1).abs() / c1 < 0.2,
            "3-run cost {c3} should be ~1-run cost {c1}"
        );
    }
}
