//! Asynchronous Bayesian optimization with a neural surrogate.
//!
//! Dorier et al. (PAPERS.md, "HPC Storage Service Autotuning Using
//! VAE-Guided Asynchronous Bayesian Optimization") show asynchronous BO
//! beating evolutionary search on storage-parameter spaces of exactly
//! this shape. This backend reproduces the core loop with the
//! workspace's own pieces:
//!
//! * **Surrogate** — an ensemble of small `tunio-nn` networks mapping
//!   the normalized 12-gene vector to a z-scored perf prediction. The
//!   ensemble's spread is the uncertainty estimate (a cheap stand-in
//!   for a GP posterior, which the container has no library for).
//! * **Acquisition** — expected improvement over the incumbent, scored
//!   on a candidate pool mixing local mutations of the best
//!   configuration with global redraws of the active subset.
//! * **Asynchrony** — `propose` never waits: before the warmup budget
//!   is observed it streams quasi-random exploration, afterwards each
//!   proposal maximizes EI under whatever observations have committed
//!   so far. Keys already proposed-but-unobserved are excluded from the
//!   pool, so parallel slots spread out instead of piling onto the
//!   current EI peak.
//!
//! Determinism: proposals depend only on the constructor arguments and
//! the committed observation sequence. The surrogate refits at fixed
//! observation counts, every RNG draw comes from the snapshotted
//! xoshiro stream, and the full state (networks included) serializes
//! through [`SearchStrategy::snapshot`].

use crate::strategy::{sanitize, SearchStrategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tunio_nn::{Activation, Network, Optimizer};
use tunio_params::{Configuration, ParamId, ParameterSpace};
use tunio_trace as trace;

/// Hyperparameters for [`BoStrategy`].
#[derive(Debug, Clone)]
pub struct BoConfig {
    /// Evaluation budget.
    pub max_evals: usize,
    /// Observations gathered (quasi-randomly) before the surrogate is
    /// trusted.
    pub warmup: usize,
    /// Candidate-pool size per acquisition.
    pub candidates: usize,
    /// Networks in the uncertainty ensemble.
    pub ensemble: usize,
    /// Training epochs per refit.
    pub epochs: usize,
    /// Refit the surrogate every this many new observations.
    pub refit_every: usize,
    /// EI exploration bonus (xi).
    pub xi: f64,
    /// RNG seed.
    pub seed: u64,
}

impl BoConfig {
    /// Defaults scaled to an evaluation budget and evaluator batch width.
    pub fn for_budget(max_evals: usize, batch: usize, seed: u64) -> Self {
        BoConfig {
            max_evals,
            warmup: (2 * batch.max(1)).clamp(4, max_evals.max(1)),
            candidates: 48,
            ensemble: 3,
            epochs: 60,
            refit_every: batch.max(2),
            xi: 0.01,
            seed,
        }
    }
}

/// Serialized [`BoStrategy`] state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BoState {
    rng: Vec<u64>,
    subset: Vec<usize>,
    xs: Vec<Vec<usize>>,
    ys: Vec<f64>,
    open: Vec<Vec<usize>>,
    proposed: usize,
    best_genes: Vec<usize>,
    best_perf: Option<f64>,
    trained_at: usize,
    nets: Vec<Network>,
}

/// Asynchronous Bayesian optimizer (see module docs).
#[derive(Debug)]
pub struct BoStrategy {
    cfg: BoConfig,
    space: ParameterSpace,
    rng: StdRng,
    subset: Vec<ParamId>,
    /// Observed genomes, in commit order.
    xs: Vec<Vec<usize>>,
    /// Sanitized perf per observed genome.
    ys: Vec<f64>,
    /// Proposed-but-unobserved keys (excluded from acquisition).
    open: Vec<Vec<usize>>,
    proposed: usize,
    best: Configuration,
    best_perf: Option<f64>,
    /// Observation count at the last surrogate refit.
    trained_at: usize,
    nets: Vec<Network>,
}

impl BoStrategy {
    /// Build a BO strategy over `space`.
    pub fn new(cfg: BoConfig, space: ParameterSpace) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        let best = space.default_config();
        BoStrategy {
            cfg,
            space,
            rng,
            subset: ParamId::ALL.to_vec(),
            xs: Vec::new(),
            ys: Vec::new(),
            open: Vec::new(),
            proposed: 0,
            best,
            best_perf: None,
            trained_at: 0,
            nets: Vec::new(),
        }
    }

    /// Normalized feature vector: gene index scaled to [0, 1] per
    /// parameter (constant genes outside the subset are harmless).
    fn features(&self, genes: &[usize]) -> Vec<f64> {
        ParamId::ALL
            .iter()
            .map(|&p| {
                let card = self.space.cardinality(p);
                genes[p.index()] as f64 / (card - 1).max(1) as f64
            })
            .collect()
    }

    fn target_stats(&self) -> (f64, f64) {
        let n = self.ys.len().max(1) as f64;
        let mean = self.ys.iter().sum::<f64>() / n;
        let var = self.ys.iter().map(|y| (y - mean).powi(2)).sum::<f64>() / n;
        (mean, var.sqrt().max(1e-9))
    }

    fn maybe_refit(&mut self) {
        let due = self.nets.is_empty() || self.ys.len() >= self.trained_at + self.cfg.refit_every;
        if self.ys.len() < self.cfg.warmup.max(2) || !due {
            return;
        }
        let _span = trace::span(
            "surrogate.fit",
            vec![
                ("observations", self.ys.len().into()),
                ("ensemble", self.cfg.ensemble.into()),
            ],
        );
        let (mean, std) = self.target_stats();
        let xs: Vec<Vec<f64>> = self.xs.iter().map(|g| self.features(g)).collect();
        let ys: Vec<Vec<f64>> = self.ys.iter().map(|y| vec![(y - mean) / std]).collect();
        let dim = ParamId::ALL.len();
        self.nets = (0..self.cfg.ensemble)
            .map(|_| {
                let mut net = Network::new(
                    &[dim, 16, 8, 1],
                    &[Activation::Tanh, Activation::Tanh, Activation::Linear],
                    Optimizer::Adam { lr: 0.01 },
                    &mut self.rng,
                );
                net.fit(&xs, &ys, self.cfg.epochs);
                net
            })
            .collect();
        self.trained_at = self.ys.len();
    }

    /// Ensemble prediction: (mean, spread) in z-scored target units.
    fn predict(&self, genes: &[usize]) -> (f64, f64) {
        let x = self.features(genes);
        let preds: Vec<f64> = self.nets.iter().map(|n| n.forward(&x)[0]).collect();
        let n = preds.len().max(1) as f64;
        let mu = preds.iter().sum::<f64>() / n;
        let var = preds.iter().map(|p| (p - mu).powi(2)).sum::<f64>() / n;
        (mu, var.sqrt().max(1e-6))
    }

    /// Expected improvement of a candidate over the incumbent, both in
    /// z-scored units.
    fn expected_improvement(&self, genes: &[usize], incumbent_z: f64) -> f64 {
        let (mu, sigma) = self.predict(genes);
        let z = (mu - incumbent_z - self.cfg.xi) / sigma;
        sigma * (z * normal_cdf(z) + normal_pdf(z))
    }

    /// Draw one exploration candidate: subset genes redrawn from the
    /// incumbent (used during warmup and as the global half of the
    /// acquisition pool).
    fn explore(&mut self) -> Configuration {
        let mut candidate = self.best.clone();
        for &p in &self.subset.clone() {
            candidate.set_gene(p, self.space.random_value(p, &mut self.rng));
        }
        candidate
    }

    /// Local candidate: 1–2 subset genes of the incumbent perturbed.
    fn perturb(&mut self) -> Configuration {
        let mut candidate = self.best.clone();
        let flips = 1 + self.rng.gen_range(0..2usize.min(self.subset.len()));
        for _ in 0..flips {
            let p = self.subset[self.rng.gen_range(0..self.subset.len())];
            candidate.set_gene(p, self.space.random_value(p, &mut self.rng));
        }
        candidate
    }

    fn acquire(&mut self) -> Configuration {
        let (mean, std) = self.target_stats();
        let incumbent_z = (self.best_perf.unwrap_or(0.0) - mean) / std;
        let mut best_candidate: Option<(f64, Configuration)> = None;
        let mut produced = 0usize;
        let mut attempts = 0usize;
        let budget = self.cfg.candidates * 4;
        while produced < self.cfg.candidates && attempts < budget {
            attempts += 1;
            let candidate = if attempts.is_multiple_of(2) {
                self.explore()
            } else {
                self.perturb()
            };
            let key = candidate.genes();
            // Skip keys already evaluated or currently in flight: EI of
            // a known point is wasted budget, and duplicating an open
            // proposal piles parallel slots onto one peak.
            if self.open.iter().any(|k| k == key) || self.xs.iter().any(|k| k == key) {
                continue;
            }
            produced += 1;
            let ei = self.expected_improvement(candidate.genes(), incumbent_z);
            let better = best_candidate
                .as_ref()
                .map(|(b, _)| ei > *b)
                .unwrap_or(true);
            if better {
                best_candidate = Some((ei, candidate));
            }
        }
        match best_candidate {
            Some((_, c)) => c,
            // Space exhausted around the incumbent: fall back to a raw
            // redraw (a duplicate is harmless — the scheduler aliases it).
            None => self.explore(),
        }
    }
}

impl SearchStrategy for BoStrategy {
    fn name(&self) -> &'static str {
        "bo"
    }

    fn set_subset(&mut self, subset: &[ParamId]) {
        if !subset.is_empty() {
            self.subset = subset.to_vec();
        }
    }

    fn warm_start(&mut self, seeds: &[Configuration]) {
        // The first seed becomes the incumbent the warmup exploration
        // and local perturbations are anchored on. Ignored once the
        // search has produced or observed anything (including after a
        // checkpoint restore), so resumed streams are unaffected.
        if let Some(seed) = seeds.first() {
            if self.best_perf.is_none() && self.proposed == 0 {
                self.best = seed.clone();
            }
        }
    }

    fn propose(&mut self, max: usize) -> Vec<Configuration> {
        let n = max.min(self.cfg.max_evals.saturating_sub(self.proposed));
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let candidate = if self.ys.len() < self.cfg.warmup {
                self.explore()
            } else {
                self.maybe_refit();
                self.acquire()
            };
            self.open.push(candidate.genes().to_vec());
            self.proposed += 1;
            out.push(candidate);
        }
        out
    }

    fn observe(&mut self, config: &Configuration, perf: f64, _cost_s: f64) {
        let perf = sanitize(perf);
        let key = config.genes();
        if let Some(pos) = self.open.iter().position(|k| k == key) {
            self.open.remove(pos);
        }
        self.xs.push(key.to_vec());
        self.ys.push(perf);
        if self.best_perf.map(|b| perf > b).unwrap_or(true) {
            self.best_perf = Some(perf);
            self.best = config.clone();
        }
    }

    fn is_done(&self) -> bool {
        self.proposed >= self.cfg.max_evals
    }

    fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    fn snapshot(&self) -> String {
        let state = BoState {
            rng: self.rng.state().to_vec(),
            subset: self.subset.iter().map(|p| p.index()).collect(),
            xs: self.xs.clone(),
            ys: self.ys.clone(),
            open: self.open.clone(),
            proposed: self.proposed,
            best_genes: self.best.genes().to_vec(),
            best_perf: self.best_perf,
            trained_at: self.trained_at,
            nets: self.nets.clone(),
        };
        serde_json::to_string(&state).expect("BO state serializes")
    }

    fn restore(&mut self, snapshot: &str) -> Result<(), String> {
        let state: BoState = serde_json::from_str(snapshot).map_err(|e| e.to_string())?;
        if state.rng.len() != 4 {
            return Err(format!(
                "rng state must have 4 words, got {}",
                state.rng.len()
            ));
        }
        if state.rng.iter().all(|&w| w == 0) {
            return Err("rng state is all zeros (xoshiro fixed point)".into());
        }
        if state.xs.len() != state.ys.len() {
            return Err("xs/ys length mismatch".into());
        }
        self.rng = StdRng::from_state([state.rng[0], state.rng[1], state.rng[2], state.rng[3]]);
        self.subset = state
            .subset
            .iter()
            .map(|&i| {
                ParamId::ALL
                    .get(i)
                    .copied()
                    .ok_or_else(|| format!("subset index {i} out of range"))
            })
            .collect::<Result<_, String>>()?;
        self.xs = state.xs;
        self.ys = state.ys;
        self.open = state.open;
        self.proposed = state.proposed;
        self.best = Configuration::new(state.best_genes);
        self.best_perf = state.best_perf;
        self.trained_at = state.trained_at;
        self.nets = state.nets;
        Ok(())
    }
}

/// Standard normal density.
fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf
/// approximation (|error| < 1.5e-7 — far below surrogate noise).
fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ParameterSpace {
        ParameterSpace::tunio_default()
    }

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!(normal_cdf(5.0) > 0.9999);
    }

    #[test]
    fn bo_streams_without_observations() {
        // Asynchrony: the warmup stream must flow with zero observes.
        let mut bo = BoStrategy::new(BoConfig::for_budget(12, 4, 5), space());
        let out = bo.propose(12);
        assert_eq!(out.len(), 12);
        assert!(bo.is_done());
    }

    #[test]
    fn bo_acquisition_avoids_open_and_seen_keys() {
        let mut bo = BoStrategy::new(BoConfig::for_budget(40, 2, 9), space());
        let mut seen: Vec<Vec<usize>> = Vec::new();
        // Warm up past the surrogate threshold, then check post-warmup
        // proposals avoid duplicates.
        for _ in 0..6 {
            for c in bo.propose(2) {
                bo.observe(&c, 1.0 + (c.genes()[0] as f64), 0.1);
                seen.push(c.genes().to_vec());
            }
        }
        let batch = bo.propose(4);
        assert_eq!(batch.len(), 4);
        for c in &batch {
            assert!(
                !seen.contains(&c.genes().to_vec()),
                "proposed an already-observed key"
            );
        }
        // The batch itself must not contain duplicates (open-key
        // exclusion between slots of one parallel batch).
        let mut keys: Vec<_> = batch.iter().map(|c| c.genes().to_vec()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), batch.len());
    }

    #[test]
    fn bo_surrogate_steers_toward_better_region() {
        // Reward = normalized first gene; after training, acquisition
        // should propose high first-gene values more often than chance.
        let sp = space();
        let card0 = sp.cardinality(ParamId::ALL[0]);
        let mut bo = BoStrategy::new(
            BoConfig {
                warmup: 8,
                candidates: 32,
                ..BoConfig::for_budget(200, 4, 13)
            },
            sp,
        );
        for _ in 0..24 {
            for c in bo.propose(4) {
                let perf = c.genes()[0] as f64 / (card0 - 1) as f64;
                bo.observe(&c, perf, 0.1);
            }
        }
        let tail = bo.propose(8);
        let mean_gene: f64 = tail.iter().map(|c| c.genes()[0] as f64).sum::<f64>() / 8.0;
        assert!(
            mean_gene > (card0 - 1) as f64 * 0.5,
            "surrogate failed to steer: mean first gene {mean_gene}"
        );
    }

    #[test]
    fn bo_warm_start_anchors_the_incumbent() {
        let sp = space();
        let mut seed = sp.default_config();
        for p in ParamId::ALL {
            seed.set_gene(p, sp.cardinality(p) - 1);
        }
        let mut bo = BoStrategy::new(BoConfig::for_budget(12, 4, 5), sp.clone());
        bo.warm_start(std::slice::from_ref(&seed));
        assert_eq!(bo.best, seed);
        // Once proposals have started, seeds no longer apply.
        let mut started = BoStrategy::new(BoConfig::for_budget(12, 4, 5), sp.clone());
        let _ = started.propose(1);
        started.warm_start(std::slice::from_ref(&seed));
        assert_eq!(started.best, sp.default_config());
    }

    #[test]
    fn bo_snapshot_roundtrips_mid_campaign() {
        let sp = space();
        let mut a = BoStrategy::new(BoConfig::for_budget(30, 3, 21), sp.clone());
        for _ in 0..4 {
            for c in a.propose(3) {
                a.observe(&c, c.genes().iter().sum::<usize>() as f64, 0.2);
            }
        }
        let snap = a.snapshot();
        let mut b = BoStrategy::new(BoConfig::for_budget(30, 3, 21), sp);
        b.restore(&snap).expect("restore");
        for _ in 0..3 {
            let pa = a.propose(3);
            let pb = b.propose(3);
            assert_eq!(pa, pb, "restored stream diverged");
            for c in pa {
                let perf = c.genes().iter().sum::<usize>() as f64;
                a.observe(&c, perf, 0.2);
                b.observe(&c, perf, 0.2);
            }
        }
        assert_eq!(a.rng_state(), b.rng_state());
    }
}
