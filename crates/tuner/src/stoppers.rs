//! Termination conditions for the tuning pipeline.
//!
//! Every stopper emits a `stop.decision` trace event per verdict
//! (except [`NoStop`], which by definition never has anything to say),
//! so campaign traces record *who* decided to stop and *when*.

use tunio_trace as trace;

/// Decides whether tuning should stop after each generation.
pub trait Stopper {
    /// Called after generation `iteration` (1-based) with the best perf
    /// achieved so far; `true` stops the pipeline.
    fn should_stop(&mut self, iteration: u32, best_perf: f64) -> bool;

    /// Display name for reports. Borrowed from the stopper so
    /// configurable stoppers can reflect their actual configuration.
    fn name(&self) -> &str;
}

/// Never stops (runs the full budget) — the "HSTuner No Stop" baseline.
#[derive(Debug, Clone, Default)]
pub struct NoStop;

impl Stopper for NoStop {
    fn should_stop(&mut self, _iteration: u32, _best_perf: f64) -> bool {
        false
    }
    fn name(&self) -> &str {
        "no-stop"
    }
}

/// The heuristic early stopper the paper compares against (§IV-C): stop
/// when the best perf has improved by less than `threshold` (relative)
/// over the last `window` iterations — 5% over 5 iterations in the paper.
#[derive(Debug, Clone)]
pub struct HeuristicStop {
    /// Relative improvement threshold (0.05 = 5%).
    pub threshold: f64,
    /// Window length in iterations (5 in the paper).
    pub window: u32,
    history: Vec<f64>,
    /// Display name reflecting the actual configuration, e.g.
    /// `heuristic-5pct-5iter` or `heuristic-2.5pct-8iter`.
    name: String,
}

impl HeuristicStop {
    /// The paper's 5% / 5-iteration configuration.
    pub fn paper_default() -> Self {
        HeuristicStop::new(0.05, 5)
    }

    /// Custom threshold/window.
    pub fn new(threshold: f64, window: u32) -> Self {
        let window = window.max(1);
        let pct = threshold * 100.0;
        // Print "5" not "5.000000000000001" for thresholds that are
        // whole percentages after the f64 multiply.
        let pct = if (pct - pct.round()).abs() < 1e-9 {
            format!("{}", pct.round() as i64)
        } else {
            format!("{pct}")
        };
        HeuristicStop {
            threshold,
            window,
            history: Vec::new(),
            name: format!("heuristic-{pct}pct-{window}iter"),
        }
    }
}

impl Stopper for HeuristicStop {
    fn should_stop(&mut self, iteration: u32, best_perf: f64) -> bool {
        self.history.push(best_perf);
        let w = self.window as usize;
        let verdict = if self.history.len() <= w {
            false
        } else {
            let past = self.history[self.history.len() - 1 - w];
            past > 0.0 && (best_perf - past) / past < self.threshold
        };
        if trace::enabled() {
            let windowed_gain = if self.history.len() > w {
                let past = self.history[self.history.len() - 1 - w];
                if past > 0.0 {
                    (best_perf - past) / past
                } else {
                    0.0
                }
            } else {
                0.0
            };
            trace::event(
                "stop.decision",
                vec![
                    ("stopper", self.name().into()),
                    ("iteration", iteration.into()),
                    ("stop", verdict.into()),
                    ("windowed_gain", windowed_gain.into()),
                ],
            );
        }
        verdict
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// Fixed iteration budget.
#[derive(Debug, Clone)]
pub struct BudgetStop {
    /// Stop after this many iterations.
    pub max_iterations: u32,
}

impl Stopper for BudgetStop {
    fn should_stop(&mut self, iteration: u32, _best_perf: f64) -> bool {
        let verdict = iteration >= self.max_iterations;
        trace::event(
            "stop.decision",
            vec![
                ("stopper", "budget".into()),
                ("iteration", iteration.into()),
                ("stop", verdict.into()),
            ],
        );
        verdict
    }
    fn name(&self) -> &str {
        "budget"
    }
}

/// Oracle used in Fig 10b's "Maximizing Performance" comparison: stops the
/// moment best perf reaches `target` (a perfect model of "the true optimal
/// was reached").
#[derive(Debug, Clone)]
pub struct MaxPerfStop {
    /// Perf at which to stop.
    pub target: f64,
}

impl Stopper for MaxPerfStop {
    fn should_stop(&mut self, iteration: u32, best_perf: f64) -> bool {
        let verdict = best_perf >= self.target;
        trace::event(
            "stop.decision",
            vec![
                ("stopper", "max-perf-oracle".into()),
                ("iteration", iteration.into()),
                ("stop", verdict.into()),
            ],
        );
        verdict
    }
    fn name(&self) -> &str {
        "max-perf-oracle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_stop_never_stops() {
        let mut s = NoStop;
        for i in 0..1000 {
            assert!(!s.should_stop(i, i as f64));
        }
    }

    #[test]
    fn heuristic_stops_on_plateau() {
        let mut s = HeuristicStop::paper_default();
        // Strong growth for 6 iterations: no stop.
        for (i, p) in [1.0, 1.5, 2.0, 2.5, 3.0, 3.5].iter().enumerate() {
            assert!(!s.should_stop(i as u32 + 1, *p), "iter {i}");
        }
        // Plateau: after `window` flat iterations it must stop.
        let mut stopped = false;
        for i in 7..=12 {
            if s.should_stop(i, 3.55) {
                stopped = true;
                break;
            }
        }
        assert!(stopped);
    }

    #[test]
    fn heuristic_tolerates_continued_growth() {
        let mut s = HeuristicStop::paper_default();
        let mut perf = 1.0;
        for i in 1..=30 {
            perf *= 1.10; // 10% growth per iteration — never below 5%/5iters
            assert!(!s.should_stop(i, perf), "stopped during growth at {i}");
        }
    }

    #[test]
    fn heuristic_is_fooled_by_early_plateau() {
        // The failure mode Fig 10a demonstrates: a plateau at iterations
        // 10–20 traps the heuristic even though gains resume later.
        let mut s = HeuristicStop::paper_default();
        let mut stopped_at = None;
        for i in 1..=20 {
            let perf = if i < 10 { i as f64 } else { 9.2 }; // plateau
            if s.should_stop(i, perf) {
                stopped_at = Some(i);
                break;
            }
        }
        let at = stopped_at.expect("heuristic should stop in the plateau");
        assert!((10..=16).contains(&at), "stopped at {at}");
    }

    /// Regression test: `name()` used to hardcode
    /// `"heuristic-5pct-5iter"` for every configuration, mislabeling
    /// traces and reports of custom-threshold stoppers.
    #[test]
    fn heuristic_name_reflects_configuration() {
        assert_eq!(
            HeuristicStop::paper_default().name(),
            "heuristic-5pct-5iter"
        );
        assert_eq!(HeuristicStop::new(0.05, 5).name(), "heuristic-5pct-5iter");
        assert_eq!(HeuristicStop::new(0.02, 8).name(), "heuristic-2pct-8iter");
        assert_eq!(HeuristicStop::new(0.10, 3).name(), "heuristic-10pct-3iter");
        assert_eq!(
            HeuristicStop::new(0.025, 4).name(),
            "heuristic-2.5pct-4iter"
        );
        // window is clamped to ≥1 and the name must agree.
        assert_eq!(HeuristicStop::new(0.05, 0).name(), "heuristic-5pct-1iter");
    }

    #[test]
    fn budget_stop_respects_budget() {
        let mut s = BudgetStop { max_iterations: 3 };
        assert!(!s.should_stop(2, 1.0));
        assert!(s.should_stop(3, 1.0));
    }

    #[test]
    fn max_perf_oracle_fires_at_target() {
        let mut s = MaxPerfStop { target: 5.0 };
        assert!(!s.should_stop(1, 4.9));
        assert!(s.should_stop(2, 5.0));
    }
}
