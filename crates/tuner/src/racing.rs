//! Noise-robust racing evaluation.
//!
//! On a noisy cluster (heteroscedastic interference — see
//! `tunio_iosim::interference`) a fixed repeat count wastes simulations:
//! clear losers get the same averaging budget as near-ties with the
//! incumbent. Racing spends repeats where they buy discrimination:
//!
//! * every new key gets [`RacingConfig::min_samples`] independent runs
//!   up front (the *warm* phase, free to run on any worker thread);
//! * at the scheduler's **commit frontier** — the only place where the
//!   incumbent is a deterministic function of the committed history —
//!   the key is *settled*: while its confidence interval still overlaps
//!   the incumbent it receives top-up runs, a clear loser is discarded
//!   early (`mean + half_width < incumbent`), and the repeat count is
//!   capped at [`RacingConfig::max_samples`];
//! * the strategy observes only the settled aggregate (mean of the
//!   per-run objectives) with its sample count, so traces, checkpoints
//!   and resume proofs stay timing-independent.
//!
//! Per-key statistics use Welford's algorithm ([`Moments`]); the
//! (count, m2) pair plus the mean already stored as `perf` is exactly
//! what the checkpoint WAL persists to restore racing state bitwise.

use serde::{Deserialize, Serialize};

/// Racing policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RacingConfig {
    /// Samples every key receives before any racing decision (≥ 2, so a
    /// variance estimate exists).
    pub min_samples: u32,
    /// Hard cap on samples per key; ties with the incumbent stop here.
    pub max_samples: u32,
    /// Half-width multiplier: the CI is `mean ± z·sd/√n`.
    pub z: f64,
}

impl Default for RacingConfig {
    fn default() -> Self {
        // Tuned on the storm profile (see the `noise01` bench): z = 1
        // discards clear losers after their 2 warm samples often
        // enough to beat fixed-3 averaging by >25% of the simulation
        // budget, while the 6-sample cap gives survivors a tighter
        // aggregate than fixed-3 ever had. A wider CI (z = 2) sounds
        // safer but merely tops ambiguous configs up to the cap —
        // most of the saving evaporates and the winner is unchanged.
        RacingConfig {
            min_samples: 2,
            max_samples: 6,
            z: 1.0,
        }
    }
}

/// Welford running mean/variance accumulator.
///
/// `push` is NaN-safe at the caller: the engine only feeds finite
/// per-run objectives (insane reports are excluded as failed samples),
/// so the moments themselves never go non-finite.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Moments {
    /// Samples accumulated.
    pub n: u64,
    /// Running mean.
    pub mean: f64,
    /// Sum of squared deviations from the running mean (Welford's M2).
    pub m2: f64,
}

impl Moments {
    /// Fold one sample in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Unbiased sample variance (0 until two samples exist).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).max(0.0)
        }
    }

    /// CI half-width `z·sd/√n` (0 until two samples exist).
    pub fn half_width(&self, z: f64) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            z * (self.variance() / self.n as f64).sqrt()
        }
    }

    /// Rebuild moments persisted as `(n, mean, m2)` — the WAL encoding.
    pub fn from_parts(n: u64, mean: f64, m2: f64) -> Self {
        Moments { n, mean, m2 }
    }
}

/// What settling a raced key decided, surfaced so the scheduler can
/// commit the aggregate and emit commit-ordered trace events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaceOutcome {
    /// The settled objective the strategy observes (mean of per-run
    /// objectives; the penalty value if every sample failed).
    pub perf: f64,
    /// Cost charged to the tuning budget (one aggregated run's elapsed
    /// time, per the paper's §IV accounting; 0 for all-failed keys).
    pub cost_s: f64,
    /// Valid samples aggregated.
    pub samples: u32,
    /// Top-up samples run at settle time (beyond the warm phase).
    pub topups: u32,
    /// True when the key was discarded as a clear loser before reaching
    /// the sample cap.
    pub discarded: bool,
    /// Mean of the per-run objectives at the final decision.
    pub mean: f64,
    /// CI half-width at the final decision.
    pub half_width: f64,
}

/// One early-discard record: enough to audit (and property-test) that
/// the racing rule only drops genuine losers.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceDiscard {
    /// Gene key of the discarded configuration.
    pub key: Vec<usize>,
    /// Its mean objective when discarded.
    pub mean: f64,
    /// The CI half-width when discarded.
    pub half_width: f64,
    /// The incumbent objective it lost to.
    pub incumbent: f64,
    /// Samples it had received.
    pub samples: u32,
}

/// Racing activity counters (for benches, reports and metrics scrapes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct RacingCounters {
    /// Raw single-run samples executed (warm + top-up).
    pub samples: u64,
    /// Keys settled through the racing path.
    pub settled: u64,
    /// Top-up samples run at the commit frontier.
    pub topups: u64,
    /// Keys discarded early as clear losers.
    pub discards: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass_mean_and_variance() {
        let xs = [3.0, 1.5, 4.25, 0.5, 2.0, 9.75, 2.5];
        let mut m = Moments::default();
        for &x in &xs {
            m.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((m.mean - mean).abs() < 1e-12);
        assert!((m.variance() - var).abs() < 1e-12);
        assert_eq!(m.n, xs.len() as u64);
    }

    #[test]
    fn half_width_shrinks_with_samples() {
        let mut m = Moments::default();
        assert_eq!(m.half_width(2.0), 0.0, "undefined CI reads as zero");
        m.push(10.0);
        assert_eq!(m.half_width(2.0), 0.0);
        m.push(12.0);
        let at2 = m.half_width(2.0);
        assert!(at2 > 0.0);
        // More samples at the same spread tighten the interval.
        m.push(10.0);
        m.push(12.0);
        m.push(10.0);
        m.push(12.0);
        assert!(m.half_width(2.0) < at2);
    }

    #[test]
    fn moments_round_trip_through_parts() {
        let mut m = Moments::default();
        for x in [1.0, 2.0, 3.5, 2.25] {
            m.push(x);
        }
        let back = Moments::from_parts(m.n, m.mean, m.m2);
        assert_eq!(m, back);
        assert_eq!(m.variance(), back.variance());
    }

    #[test]
    fn identical_samples_have_zero_width() {
        let mut m = Moments::default();
        for _ in 0..5 {
            m.push(7.0);
        }
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.half_width(3.0), 0.0);
    }
}
