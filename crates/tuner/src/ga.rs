//! The genetic-algorithm tuner.
//!
//! Population-based search over configuration genomes with elitism and
//! tournament selection (size 3, best two become parents — §III-A), the
//! same structure the paper builds with DEAP.

use crate::engine::EvalEngine;
use crate::stoppers::Stopper;
use crate::subset::SubsetProvider;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use tunio_params::Configuration;
use tunio_trace as trace;

/// Crossover operator variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Crossover {
    /// Each masked gene comes from either parent with equal probability.
    #[default]
    Uniform,
    /// A single cut point within the masked genes; the child takes the
    /// prefix from one parent and the suffix from the other.
    OnePoint,
}

/// Genetic-algorithm hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct GaConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Elite individuals carried over unchanged.
    pub elite: usize,
    /// Tournament size (3 in the paper).
    pub tournament: usize,
    /// Per-gene mutation probability within the active subset.
    pub mutation_rate: f64,
    /// Crossover operator.
    pub crossover: Crossover,
    /// Hard iteration budget (the tuning budget in generations).
    pub max_iterations: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 8,
            elite: 1,
            tournament: 3,
            mutation_rate: 0.08,
            crossover: Crossover::Uniform,
            max_iterations: 50,
            seed: 0,
        }
    }
}

/// One generation's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct IterationRecord {
    /// Generation number (1-based).
    pub iteration: u32,
    /// Best perf seen so far (bytes/s).
    pub best_perf: f64,
    /// Best perf among configurations evaluated *this* generation.
    pub generation_best_perf: f64,
    /// Tuning time charged for this generation, seconds.
    pub cost_s: f64,
    /// Cumulative tuning time, seconds.
    pub cumulative_cost_s: f64,
    /// Size of the parameter subset tuned this generation.
    pub subset_size: usize,
}

/// A completed tuning campaign.
#[derive(Debug, Clone, Serialize)]
pub struct TuningTrace {
    /// Per-generation records.
    pub records: Vec<IterationRecord>,
    /// Best configuration found.
    pub best_config: Configuration,
    /// Best perf found (bytes/s).
    pub best_perf: f64,
    /// Perf of the default (untuned) configuration (bytes/s).
    pub default_perf: f64,
    /// Whether the stopper terminated before the budget.
    pub stopped_early: bool,
    /// Stopper that ended the campaign.
    pub stopper_name: String,
}

impl TuningTrace {
    /// Total tuning time in seconds.
    pub fn total_cost_s(&self) -> f64 {
        self.records
            .last()
            .map(|r| r.cumulative_cost_s)
            .unwrap_or(0.0)
    }

    /// Total tuning time in minutes (the paper's budget unit).
    pub fn total_cost_min(&self) -> f64 {
        self.total_cost_s() / 60.0
    }

    /// Number of generations run.
    pub fn iterations(&self) -> u32 {
        self.records.len() as u32
    }

    /// perf gain over the default configuration (bytes/s).
    pub fn gain(&self) -> f64 {
        (self.best_perf - self.default_perf).max(0.0)
    }
}

/// Everything a checkpoint writer needs to know about one finished
/// generation, handed to a [`CampaignObserver`] while the campaign runs.
#[derive(Debug)]
pub struct GenerationSnapshot<'a> {
    /// Generation number (1-based).
    pub iteration: u32,
    /// The generation's trace record.
    pub record: &'a IterationRecord,
    /// The population that was evaluated this generation.
    pub population: &'a [Configuration],
    /// Raw GA RNG state *after* this generation's breeding (at loop exit
    /// for the final generation) — the value a deterministic replay must
    /// reproduce to be trusted.
    pub rng_state: [u64; 4],
    /// Best perf so far.
    pub best_perf: f64,
    /// Best configuration so far.
    pub best_config: &'a Configuration,
    /// True when this is the campaign's final generation (stopper fired
    /// or budget exhausted).
    pub stopped: bool,
    /// Serialized [`crate::strategy::SearchStrategy`] state after this
    /// window, when the campaign runs through the async scheduler
    /// (`None` for the classic `GaTuner` loop, whose whole state is the
    /// RNG + population already checkpointed).
    pub strategy_state: Option<String>,
    /// Gene keys of this window's commits that charged the simulator, in
    /// commit order — the canonical attribution of engine-journal cache
    /// entries to windows when evaluations complete out of order under
    /// the async scheduler. `None` for the classic `GaTuner` loop, whose
    /// journal drains in a deterministic serial order anyway.
    pub charged: Option<Vec<Vec<usize>>>,
}

/// Hook invoked after every completed generation — the write-ahead-log
/// attachment point for campaign checkpointing.
pub trait CampaignObserver {
    /// Called once per generation, in order, from the tuning thread.
    fn on_generation(&mut self, snapshot: &GenerationSnapshot<'_>);
}

/// Observer that does nothing (plain, checkpoint-free runs).
pub struct NoObserver;

impl CampaignObserver for NoObserver {
    fn on_generation(&mut self, _snapshot: &GenerationSnapshot<'_>) {}
}

/// The tuner.
///
/// ```
/// use tunio_iosim::Simulator;
/// use tunio_params::ParameterSpace;
/// use tunio_tuner::{AllParams, EvalEngine, GaConfig, GaTuner, NoStop};
/// use tunio_workloads::{hacc, Variant, Workload};
///
/// let engine = EvalEngine::new(
///     Simulator::cori_4node(1),
///     Workload::new(hacc(), Variant::Kernel),
///     ParameterSpace::tunio_default(),
///     3,
/// );
/// let mut tuner = GaTuner::new(GaConfig { max_iterations: 3, ..Default::default() });
/// let trace = tuner.run(&engine, &mut NoStop, &mut AllParams);
/// assert_eq!(trace.iterations(), 3);
/// assert!(trace.best_perf >= trace.default_perf);
/// ```
#[derive(Debug)]
pub struct GaTuner {
    /// Hyperparameters.
    pub cfg: GaConfig,
    rng: StdRng,
}

impl GaTuner {
    /// Create a tuner.
    pub fn new(cfg: GaConfig) -> Self {
        GaTuner {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
        }
    }

    /// Run the tuning pipeline: evolve generations until the stopper fires
    /// or the iteration budget is exhausted. Each generation's population
    /// is evaluated as one [`EvalEngine::evaluate_batch`] call, so cache
    /// misses run in parallel while the trace stays bitwise identical to
    /// a serial evaluation.
    pub fn run(
        &mut self,
        engine: &EvalEngine,
        stopper: &mut dyn Stopper,
        subsets: &mut dyn SubsetProvider,
    ) -> TuningTrace {
        self.run_with_observer(engine, stopper, subsets, &mut NoObserver)
    }

    /// [`GaTuner::run`] with a per-generation [`CampaignObserver`] hook —
    /// the checkpoint writer's entry point. The observer sees every
    /// generation after its bookkeeping (and breeding, when the campaign
    /// continues) completes, so everything it records is durable state.
    pub fn run_with_observer(
        &mut self,
        engine: &EvalEngine,
        stopper: &mut dyn Stopper,
        subsets: &mut dyn SubsetProvider,
        observer: &mut dyn CampaignObserver,
    ) -> TuningTrace {
        let space = engine.space.clone();
        let pop_size = self.cfg.population.max(2);
        let mut population: Vec<Configuration> = Vec::new();

        let mut campaign_span = trace::span(
            "ga.campaign",
            vec![
                ("population", pop_size.into()),
                ("max_iterations", self.cfg.max_iterations.into()),
                ("seed", self.cfg.seed.into()),
                ("stopper", stopper.name().into()),
                ("subsets", subsets.name().into()),
            ],
        );

        let default_perf = engine.evaluate(&space.default_config()).perf;
        // Baseline for per-generation cost attribution: deltas exclude the
        // default-configuration evaluation above.
        let mut profile_prev = engine.profile_snapshot();
        let mut resilience_prev = engine.resilience();

        let mut best_config = space.default_config();
        let mut best_perf = default_perf;
        let mut cumulative = 0.0;
        let mut records = Vec::new();
        let mut stopped_early = false;

        for iteration in 1..=self.cfg.max_iterations {
            let mut gen_span = trace::span("ga.generation", vec![("iteration", iteration.into())]);
            let subset = {
                let s = subsets.next_subset(iteration, best_perf, &space);
                if s.is_empty() {
                    tunio_params::ParamId::ALL.to_vec()
                } else {
                    s
                }
            };

            // The initial population is the default configuration plus
            // partial mutants of it *within the first active subset*:
            // tuning pipelines start from the deployed defaults, and
            // exploration is confined to the parameters being tuned. A
            // high-performing configuration usually needs several genes
            // right simultaneously, so it must be assembled over
            // generations — the wider the subset, the longer that takes.
            if population.is_empty() {
                population.push(space.default_config());
                while population.len() < pop_size {
                    let mut c = space.default_config();
                    c.mutate_masked(&space, &subset, 0.12, &mut self.rng);
                    population.push(c);
                }
            }

            // Evaluate the generation in one parallel batch; results come
            // back in population order, so the best-so-far fold below is
            // identical to the old serial loop (first strict improvement
            // wins ties).
            let mut scored: Vec<(f64, Configuration)> = Vec::with_capacity(population.len());
            let mut gen_cost = 0.0;
            let mut gen_best = f64::NEG_INFINITY;
            for e in engine.evaluate_batch(&population) {
                gen_cost += e.cost_s;
                gen_best = gen_best.max(e.perf);
                if e.perf > best_perf {
                    best_perf = e.perf;
                    best_config = e.config.clone();
                }
                scored.push((e.perf, e.config));
            }
            cumulative += gen_cost;

            records.push(IterationRecord {
                iteration,
                best_perf,
                generation_best_perf: gen_best,
                cost_s: gen_cost,
                cumulative_cost_s: cumulative,
                subset_size: subset.len(),
            });
            gen_span.add_field("best_perf", best_perf.into());
            gen_span.add_field("generation_best_perf", gen_best.into());
            gen_span.add_field("cost_s", gen_cost.into());
            gen_span.add_field("cumulative_cost_s", cumulative.into());
            gen_span.add_field("subset_size", subset.len().into());

            // Per-generation fault/retry deltas, so `tunio-report` can
            // render resilience columns without replaying counters.
            let resilience = engine.resilience();
            gen_span.add_field(
                "faults",
                (resilience.faults_injected - resilience_prev.faults_injected).into(),
            );
            gen_span.add_field(
                "retries",
                (resilience.retries - resilience_prev.retries).into(),
            );
            gen_span.add_field(
                "failures",
                (resilience.failed_evaluations - resilience_prev.failed_evaluations).into(),
            );
            gen_span.add_field(
                "quarantined",
                (resilience.quarantined_keys - resilience_prev.quarantined_keys).into(),
            );
            resilience_prev = resilience;

            // Per-layer cost attribution for this generation: one
            // `profile.layer` event per stack layer carrying the self time
            // charged since the previous generation plus the cumulative
            // total, so `tunio-report` can reconstruct the breakdown.
            if trace::enabled() {
                let snap = engine.profile_snapshot();
                let delta = snap.delta_since(&profile_prev);
                for (layer, stat) in delta.iter() {
                    trace::event(
                        "profile.layer",
                        vec![
                            ("iteration", iteration.into()),
                            ("layer", layer.as_str().into()),
                            ("self_s", stat.self_s.into()),
                            ("cum_self_s", snap.get(layer).self_s.into()),
                            ("bytes", stat.bytes.into()),
                            ("ops", stat.ops.into()),
                        ],
                    );
                }
                profile_prev = snap;
            }

            subsets.feedback(&subset, best_perf);
            if stopper.should_stop(iteration, best_perf) {
                stopped_early = iteration < self.cfg.max_iterations;
                observer.on_generation(&GenerationSnapshot {
                    iteration,
                    record: records.last().expect("record pushed this generation"),
                    population: &population,
                    rng_state: self.rng.state(),
                    best_perf,
                    best_config: &best_config,
                    stopped: true,
                    strategy_state: None,
                    charged: None,
                });
                break;
            }

            // Breed the next generation: elitism + tournament offspring.
            scored.sort_by(|a, b| b.0.total_cmp(&a.0));
            let mut next: Vec<Configuration> = scored
                .iter()
                .take(self.cfg.elite.min(scored.len()))
                .map(|(_, c)| c.clone())
                .collect();
            let elite_n = next.len();
            while next.len() < pop_size {
                let (p1, p2) = self.tournament_parents(&scored);
                let mut child = match self.cfg.crossover {
                    Crossover::Uniform => p1.crossover_masked(p2, &subset, &mut self.rng),
                    Crossover::OnePoint => {
                        let cut = self.rng.gen_range(0..=subset.len());
                        let mut c = p1.clone();
                        for &p in &subset[cut..] {
                            c.set_gene(p, p2.gene(p));
                        }
                        c
                    }
                };
                child.mutate_masked(&space, &subset, self.cfg.mutation_rate, &mut self.rng);
                next.push(child);
            }
            trace::counter("tunio.ga.offspring").inc((pop_size - elite_n) as u64);
            trace::event(
                "ga.breed",
                vec![
                    ("iteration", iteration.into()),
                    ("elite", elite_n.into()),
                    ("offspring", (pop_size - elite_n).into()),
                    ("tournament", self.cfg.tournament.into()),
                    ("mutation_rate", self.cfg.mutation_rate.into()),
                ],
            );
            observer.on_generation(&GenerationSnapshot {
                iteration,
                record: records.last().expect("record pushed this generation"),
                population: &population,
                rng_state: self.rng.state(),
                best_perf,
                best_config: &best_config,
                stopped: iteration == self.cfg.max_iterations,
                strategy_state: None,
                charged: None,
            });
            population = next;
        }

        campaign_span.add_field("best_perf", best_perf.into());
        campaign_span.add_field("stopped_early", stopped_early.into());
        drop(campaign_span);

        TuningTrace {
            records,
            best_config,
            best_perf,
            default_perf,
            stopped_early,
            stopper_name: stopper.name().to_string(),
        }
    }

    /// Tournament selection: draw `tournament` individuals at random, the
    /// best two become the parents (§III-A).
    fn tournament_parents<'a>(
        &mut self,
        scored: &'a [(f64, Configuration)],
    ) -> (&'a Configuration, &'a Configuration) {
        let k = self.cfg.tournament.max(2).min(scored.len());
        trace::counter("tunio.ga.tournaments").inc(1);
        let mut picks: Vec<&(f64, Configuration)> = (0..k)
            .map(|_| &scored[self.rng.gen_range(0..scored.len())])
            .collect();
        picks.sort_by(|a, b| b.0.total_cmp(&a.0));
        (&picks[0].1, &picks[1].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stoppers::{HeuristicStop, NoStop};
    use crate::subset::{AllParams, FixedSubset};
    use tunio_iosim::Simulator;
    use tunio_params::{Impact, ParameterSpace};
    use tunio_workloads::{hacc, Variant, Workload};

    fn engine(seed: u64) -> EvalEngine {
        EvalEngine::new(
            Simulator::cori_4node(seed),
            Workload::new(hacc(), Variant::Kernel),
            ParameterSpace::tunio_default(),
            3,
        )
    }

    fn quick_cfg(seed: u64, iters: u32) -> GaConfig {
        GaConfig {
            max_iterations: iters,
            seed,
            ..GaConfig::default()
        }
    }

    #[test]
    fn tuning_improves_over_default() {
        let mut tuner = GaTuner::new(quick_cfg(1, 25));
        let trace = tuner.run(&engine(1), &mut NoStop, &mut AllParams);
        assert!(
            trace.best_perf > 1.5 * trace.default_perf,
            "best {} vs default {}",
            trace.best_perf,
            trace.default_perf
        );
    }

    #[test]
    fn best_so_far_is_monotone_elitism() {
        let mut tuner = GaTuner::new(quick_cfg(2, 20));
        let trace = tuner.run(&engine(2), &mut NoStop, &mut AllParams);
        for w in trace.records.windows(2) {
            assert!(
                w[1].best_perf >= w[0].best_perf,
                "elitism must keep best-so-far monotone"
            );
        }
    }

    #[test]
    fn costs_accumulate_and_are_positive() {
        let mut tuner = GaTuner::new(quick_cfg(3, 10));
        let trace = tuner.run(&engine(3), &mut NoStop, &mut AllParams);
        assert!(trace.total_cost_s() > 0.0);
        for w in trace.records.windows(2) {
            assert!(w[1].cumulative_cost_s >= w[0].cumulative_cost_s);
        }
        // First generation costs the most (nothing memoized yet).
        assert!(trace.records[0].cost_s > 0.0);
    }

    #[test]
    fn heuristic_stop_ends_before_budget_on_plateau() {
        let mut tuner = GaTuner::new(quick_cfg(4, 50));
        let trace = tuner.run(
            &engine(4),
            &mut HeuristicStop::paper_default(),
            &mut AllParams,
        );
        assert!(trace.iterations() < 50, "ran {}", trace.iterations());
        assert!(trace.stopped_early);
        assert_eq!(trace.stopper_name, "heuristic-5pct-5iter");
    }

    #[test]
    fn high_impact_subset_tunes_as_well_as_full_space_but_cheaper_search() {
        let space = ParameterSpace::tunio_default();
        let high = space.with_impact(Impact::High);

        let mut full_tuner = GaTuner::new(quick_cfg(5, 30));
        let full = full_tuner.run(&engine(5), &mut NoStop, &mut AllParams);

        let mut sub_tuner = GaTuner::new(quick_cfg(5, 30));
        let sub = sub_tuner.run(&engine(5), &mut NoStop, &mut FixedSubset { subset: high });

        // The high-impact subset achieves ≥85% of the full-space perf.
        assert!(
            sub.best_perf > 0.85 * full.best_perf,
            "subset {} vs full {}",
            sub.best_perf,
            full.best_perf
        );
    }

    #[test]
    fn low_impact_subset_cannot_match_high_impact() {
        let space = ParameterSpace::tunio_default();
        let mut low_tuner = GaTuner::new(quick_cfg(6, 20));
        let low = low_tuner.run(
            &engine(6),
            &mut NoStop,
            &mut FixedSubset {
                subset: space.with_impact(Impact::Low),
            },
        );
        let mut high_tuner = GaTuner::new(quick_cfg(6, 20));
        let high = high_tuner.run(
            &engine(6),
            &mut NoStop,
            &mut FixedSubset {
                subset: space.with_impact(Impact::High),
            },
        );
        assert!(
            high.best_perf > 1.5 * low.best_perf,
            "high {} vs low {}",
            high.best_perf,
            low.best_perf
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut tuner = GaTuner::new(quick_cfg(7, 8));
            tuner.run(&engine(7), &mut NoStop, &mut AllParams).best_perf
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn trace_metrics_are_consistent() {
        let mut tuner = GaTuner::new(quick_cfg(8, 5));
        let trace = tuner.run(&engine(8), &mut NoStop, &mut AllParams);
        assert_eq!(trace.iterations(), 5);
        assert!(trace.gain() >= 0.0);
        assert!((trace.total_cost_min() - trace.total_cost_s() / 60.0).abs() < 1e-9);
    }

    #[test]
    fn observer_sees_every_generation_with_live_rng_state() {
        struct Recorder {
            iterations: Vec<u32>,
            states: Vec<[u64; 4]>,
            stops: Vec<bool>,
        }
        impl CampaignObserver for Recorder {
            fn on_generation(&mut self, snap: &GenerationSnapshot<'_>) {
                assert_eq!(snap.iteration, snap.record.iteration);
                assert!(!snap.population.is_empty());
                assert!(snap.best_perf >= snap.record.generation_best_perf * 0.0);
                self.iterations.push(snap.iteration);
                self.states.push(snap.rng_state);
                self.stops.push(snap.stopped);
            }
        }
        let mut rec = Recorder {
            iterations: Vec::new(),
            states: Vec::new(),
            stops: Vec::new(),
        };
        let mut tuner = GaTuner::new(quick_cfg(9, 6));
        let trace = tuner.run_with_observer(&engine(9), &mut NoStop, &mut AllParams, &mut rec);
        assert_eq!(rec.iterations, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(rec.stops, vec![false, false, false, false, false, true]);
        // The RNG advances between generations (breeding consumes draws),
        // so consecutive snapshots must differ.
        for w in rec.states.windows(2) {
            assert_ne!(w[0], w[1], "rng state must advance every generation");
        }
        assert_eq!(trace.iterations(), 6);
    }

    #[test]
    fn chaos_campaign_converges_to_finite_nonpenalty_best() {
        use crate::engine::FailurePolicy;
        use tunio_iosim::FaultPlan;

        // ≥10% transient failures plus stragglers, flaps and corrupted
        // reports — the acceptance scenario. The campaign must complete
        // with a real (finite, positive) best configuration.
        let engine = EvalEngine::new(
            Simulator::cori_4node(11).with_fault_plan(FaultPlan::chaos(11, 0.15)),
            Workload::new(hacc(), Variant::Kernel),
            ParameterSpace::tunio_default(),
            3,
        )
        .with_policy(FailurePolicy {
            max_retries: 4,
            ..FailurePolicy::default()
        });
        let mut tuner = GaTuner::new(quick_cfg(11, 12));
        let trace = tuner.run(&engine, &mut NoStop, &mut AllParams);

        assert!(trace.best_perf.is_finite(), "NaN/Inf must never win");
        assert!(
            trace.best_perf > 0.0,
            "best must be a real result, not the penalty value"
        );
        for r in &trace.records {
            assert!(r.best_perf.is_finite());
            assert!(r.cost_s.is_finite() && r.cost_s >= 0.0);
        }
        let res = engine.resilience();
        assert!(res.faults_injected > 0, "the plan must actually fire");
    }

    #[test]
    fn corrupt_heavy_campaign_never_promotes_nan() {
        use tunio_iosim::FaultPlan;

        // Half of all runs return NaN-corrupted reports. Every corrupted
        // report must be rejected by the sanity gate, so nothing NaN can
        // reach best_perf — it stays finite even if it is the penalty.
        let plan = FaultPlan {
            corrupt_rate: 0.5,
            ..FaultPlan::disabled(13)
        };
        let engine = EvalEngine::new(
            Simulator::cori_4node(13).with_fault_plan(plan),
            Workload::new(hacc(), Variant::Kernel),
            ParameterSpace::tunio_default(),
            3,
        );
        let mut tuner = GaTuner::new(quick_cfg(13, 8));
        let trace = tuner.run(&engine, &mut NoStop, &mut AllParams);
        assert!(trace.best_perf.is_finite());
        assert!(trace.default_perf.is_finite());
        assert!(trace.records.iter().all(|r| r.best_perf.is_finite()
            && r.generation_best_perf.is_finite()
            && r.cumulative_cost_s.is_finite()));
    }
}

impl TuningTrace {
    /// Export the per-iteration series as CSV (header + one row per
    /// generation) for external plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "iteration,best_perf_bytes_per_s,generation_best_bytes_per_s,cost_s,cumulative_cost_s,subset_size\n",
        );
        for r in &self.records {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                r.iteration,
                r.best_perf,
                r.generation_best_perf,
                r.cost_s,
                r.cumulative_cost_s,
                r.subset_size
            ));
        }
        out
    }
}

#[cfg(test)]
mod csv_tests {
    use super::*;
    use crate::engine::EvalEngine;
    use crate::stoppers::NoStop;
    use crate::subset::AllParams;
    use tunio_iosim::Simulator;
    use tunio_params::ParameterSpace;
    use tunio_workloads::{hacc, Variant, Workload};

    #[test]
    fn csv_has_header_plus_one_row_per_iteration() {
        let engine = EvalEngine::new(
            Simulator::cori_4node(1),
            Workload::new(hacc(), Variant::Kernel),
            ParameterSpace::tunio_default(),
            3,
        );
        let mut tuner = GaTuner::new(GaConfig {
            max_iterations: 4,
            seed: 1,
            ..GaConfig::default()
        });
        let trace = tuner.run(&engine, &mut NoStop, &mut AllParams);
        let csv = trace.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("iteration,"));
        assert!(lines[1].starts_with("1,"));
        // Each row has 6 comma-separated fields.
        assert!(lines.iter().all(|l| l.split(',').count() == 6));
    }
}

#[cfg(test)]
mod crossover_tests {
    use super::*;
    use crate::engine::EvalEngine;
    use crate::stoppers::NoStop;
    use crate::subset::AllParams;
    use tunio_iosim::Simulator;
    use tunio_params::ParameterSpace;
    use tunio_workloads::{hacc, Variant, Workload};

    #[test]
    fn one_point_crossover_also_tunes() {
        let engine = EvalEngine::new(
            Simulator::cori_4node(6),
            Workload::new(hacc(), Variant::Kernel),
            ParameterSpace::tunio_default(),
            3,
        );
        let mut tuner = GaTuner::new(GaConfig {
            crossover: Crossover::OnePoint,
            max_iterations: 15,
            seed: 6,
            ..GaConfig::default()
        });
        let trace = tuner.run(&engine, &mut NoStop, &mut AllParams);
        assert!(trace.best_perf > 1.5 * trace.default_perf);
    }
}
