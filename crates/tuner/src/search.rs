//! Alternative search strategies.
//!
//! §II-B: "The search algorithms employed in user-level tuning have
//! usually been AI techniques such as genetic algorithms, random search,
//! hill climbing algorithms, and, more recently, reinforcement learning."
//! The GA is the pipeline the paper builds on; these baselines make the
//! comparison reproducible and share the same trace format, stoppers and
//! subset hooks so TunIO's components attach to them unchanged.

use crate::engine::EvalEngine;
use crate::ga::{IterationRecord, TuningTrace};
use crate::stoppers::Stopper;
use crate::subset::SubsetProvider;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tunio_params::{Configuration, ParamId};

/// How many configurations a non-population search evaluates per
/// "iteration" so budgets are comparable with a GA generation.
const EVALS_PER_ITERATION: usize = 8;

/// Pure random search: sample configurations uniformly within the active
/// subset (other genes stay at their current best values).
#[derive(Debug)]
pub struct RandomSearch {
    /// Iteration budget.
    pub max_iterations: u32,
    rng: StdRng,
}

impl RandomSearch {
    /// Create a random search with a seed.
    pub fn new(max_iterations: u32, seed: u64) -> Self {
        RandomSearch {
            max_iterations,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Run the search.
    ///
    /// The iteration's candidates all derive from the best configuration
    /// *at the start of the iteration* (a synchronous population, like a
    /// GA generation) so they can be evaluated as one parallel batch;
    /// the serial version chained candidates off a mid-iteration best.
    /// With a subset covering all parameters the two are identical, since
    /// every gene is redrawn anyway.
    pub fn run(
        &mut self,
        engine: &EvalEngine,
        stopper: &mut dyn Stopper,
        subsets: &mut dyn SubsetProvider,
    ) -> TuningTrace {
        let space = engine.space.clone();
        let default_perf = engine.evaluate(&space.default_config()).perf;
        let mut best_config = space.default_config();
        let mut best_perf = default_perf;
        let mut cumulative = 0.0;
        let mut records = Vec::new();
        let mut stopped_early = false;

        for iteration in 1..=self.max_iterations {
            let subset = nonempty(subsets.next_subset(iteration, best_perf, &space));
            let mut gen_cost = 0.0;
            let mut gen_best = f64::NEG_INFINITY;
            let candidates: Vec<Configuration> = (0..EVALS_PER_ITERATION)
                .map(|_| {
                    let mut candidate = best_config.clone();
                    for &p in &subset {
                        candidate.set_gene(p, space.random_value(p, &mut self.rng));
                    }
                    candidate
                })
                .collect();
            for e in engine.evaluate_batch(&candidates) {
                gen_cost += e.cost_s;
                gen_best = gen_best.max(e.perf);
                if e.perf > best_perf {
                    best_perf = e.perf;
                    best_config = e.config;
                }
            }
            cumulative += gen_cost;
            records.push(IterationRecord {
                iteration,
                best_perf,
                generation_best_perf: gen_best,
                cost_s: gen_cost,
                cumulative_cost_s: cumulative,
                subset_size: subset.len(),
            });
            subsets.feedback(&subset, best_perf);
            if stopper.should_stop(iteration, best_perf) {
                stopped_early = iteration < self.max_iterations;
                break;
            }
        }

        TuningTrace {
            records,
            best_config,
            best_perf,
            default_perf,
            stopped_early,
            stopper_name: stopper.name().to_string(),
        }
    }
}

/// Steepest-ascent-with-restarts hill climbing: from the current best,
/// evaluate single-gene neighbours (one step up/down per parameter in the
/// active subset); move to the best improvement, or restart from a random
/// point when stuck.
#[derive(Debug)]
pub struct HillClimb {
    /// Iteration budget.
    pub max_iterations: u32,
    rng: StdRng,
}

impl HillClimb {
    /// Create a hill climber with a seed.
    pub fn new(max_iterations: u32, seed: u64) -> Self {
        HillClimb {
            max_iterations,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Run the search. The neighbourhood of the current point is fixed at
    /// the start of each iteration, so it is evaluated as one parallel
    /// batch; the steepest-ascent move picks the first-listed best
    /// neighbour exactly as the serial fold did.
    pub fn run(
        &mut self,
        engine: &EvalEngine,
        stopper: &mut dyn Stopper,
        subsets: &mut dyn SubsetProvider,
    ) -> TuningTrace {
        let space = engine.space.clone();
        let default_perf = engine.evaluate(&space.default_config()).perf;
        let mut current = space.default_config();
        let mut current_perf = default_perf;
        let mut best_config = current.clone();
        let mut best_perf = current_perf;
        let mut cumulative = 0.0;
        let mut records = Vec::new();
        let mut stopped_early = false;

        for iteration in 1..=self.max_iterations {
            let subset = nonempty(subsets.next_subset(iteration, best_perf, &space));
            let mut gen_cost = 0.0;
            let mut gen_best = f64::NEG_INFINITY;

            // Collect ±1-step neighbours (budget-capped), then evaluate
            // the whole neighbourhood as one batch.
            let mut neighbours: Vec<Configuration> = Vec::new();
            'outer: for &p in &subset {
                for delta in [-1isize, 1] {
                    if neighbours.len() >= EVALS_PER_ITERATION {
                        break 'outer;
                    }
                    let cur = current.gene(p) as isize;
                    let idx = cur + delta;
                    if idx < 0 || idx as usize >= space.cardinality(p) {
                        continue;
                    }
                    let mut n = current.clone();
                    n.set_gene(p, idx as usize);
                    neighbours.push(n);
                }
            }
            let mut best_neighbour: Option<(f64, Configuration)> = None;
            for e in engine.evaluate_batch(&neighbours) {
                gen_cost += e.cost_s;
                gen_best = gen_best.max(e.perf);
                if best_neighbour
                    .as_ref()
                    .map(|(bp, _)| e.perf > *bp)
                    .unwrap_or(true)
                {
                    best_neighbour = Some((e.perf, e.config));
                }
            }

            match best_neighbour {
                Some((perf, config)) if perf > current_perf => {
                    current = config;
                    current_perf = perf;
                }
                _ => {
                    // Stuck on a local optimum: restart within the subset.
                    let mut fresh = current.clone();
                    for &p in &subset {
                        fresh.set_gene(p, space.random_value(p, &mut self.rng));
                    }
                    let e = engine.evaluate(&fresh);
                    gen_cost += e.cost_s;
                    gen_best = gen_best.max(e.perf);
                    current = fresh;
                    current_perf = e.perf;
                }
            }
            if current_perf > best_perf {
                best_perf = current_perf;
                best_config = current.clone();
            }

            cumulative += gen_cost;
            records.push(IterationRecord {
                iteration,
                best_perf,
                generation_best_perf: gen_best,
                cost_s: gen_cost,
                cumulative_cost_s: cumulative,
                subset_size: subset.len(),
            });
            subsets.feedback(&subset, best_perf);
            if stopper.should_stop(iteration, best_perf) {
                stopped_early = iteration < self.max_iterations;
                break;
            }
        }

        TuningTrace {
            records,
            best_config,
            best_perf,
            default_perf,
            stopped_early,
            stopper_name: stopper.name().to_string(),
        }
    }
}

fn nonempty(subset: Vec<ParamId>) -> Vec<ParamId> {
    if subset.is_empty() {
        ParamId::ALL.to_vec()
    } else {
        subset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stoppers::{HeuristicStop, NoStop};
    use crate::subset::AllParams;
    use tunio_iosim::Simulator;
    use tunio_params::ParameterSpace;
    use tunio_workloads::{hacc, Variant, Workload};

    fn engine(seed: u64) -> EvalEngine {
        EvalEngine::new(
            Simulator::cori_4node(seed),
            Workload::new(hacc(), Variant::Kernel),
            ParameterSpace::tunio_default(),
            3,
        )
    }

    #[test]
    fn random_search_improves_over_default() {
        let mut rs = RandomSearch::new(20, 3);
        let trace = rs.run(&engine(3), &mut NoStop, &mut AllParams);
        assert!(trace.best_perf > trace.default_perf);
        assert_eq!(trace.iterations(), 20);
    }

    #[test]
    fn hill_climb_improves_over_default() {
        let mut hc = HillClimb::new(25, 4);
        let trace = hc.run(&engine(4), &mut NoStop, &mut AllParams);
        assert!(trace.best_perf > trace.default_perf);
    }

    #[test]
    fn best_so_far_is_monotone_for_both() {
        let mut rs = RandomSearch::new(15, 5);
        let a = rs.run(&engine(5), &mut NoStop, &mut AllParams);
        let mut hc = HillClimb::new(15, 5);
        let b = hc.run(&engine(5), &mut NoStop, &mut AllParams);
        for trace in [a, b] {
            for w in trace.records.windows(2) {
                assert!(w[1].best_perf >= w[0].best_perf);
            }
        }
    }

    #[test]
    fn stoppers_attach_to_baselines() {
        let mut rs = RandomSearch::new(50, 6);
        let trace = rs.run(
            &engine(6),
            &mut HeuristicStop::paper_default(),
            &mut AllParams,
        );
        assert!(trace.iterations() < 50);
        assert!(trace.stopped_early);
    }

    #[test]
    fn searches_are_deterministic() {
        let run = |seed| {
            let mut rs = RandomSearch::new(8, seed);
            rs.run(&engine(seed), &mut NoStop, &mut AllParams).best_perf
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn hill_climb_restarts_when_stuck() {
        // With a tiny budget the climber must still make progress thanks
        // to restarts rather than looping on a local optimum forever.
        let mut hc = HillClimb::new(40, 10);
        let trace = hc.run(&engine(10), &mut NoStop, &mut AllParams);
        assert!(trace.best_perf > 1.2 * trace.default_perf);
    }
}
