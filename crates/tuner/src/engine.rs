//! Parallel, deterministic configuration evaluation.
//!
//! [`EvalEngine`] replaces the original single-threaded `Evaluator`: it
//! evaluates whole batches of configurations concurrently (one rayon task
//! per cache-missing configuration) behind a sharded, lock-protected memo
//! cache, while producing results that are **bitwise identical** to a
//! serial evaluation in batch order, regardless of thread count or
//! completion order.
//!
//! Determinism rests on three properties:
//!
//! 1. **Pure simulation.** [`Simulator::run`] derives its noise stream
//!    from `(simulator seed, configuration fingerprint, run index)` — see
//!    `tunio_iosim::noise` — so a configuration's report is a pure
//!    function of `(sim, config, repeats)`. Nothing about scheduling can
//!    change it.
//! 2. **Ordered assembly.** [`EvalEngine::evaluate_batch`] returns results
//!    in input order (the shim rayon's indexed `collect` preserves order,
//!    as real rayon's does), and all counter/cost bookkeeping happens in
//!    that order after the parallel section.
//! 3. **Serial-equivalent cost accounting.** Within a batch, the *first*
//!    occurrence of an uncached gene key is charged one run's elapsed
//!    time; later duplicates and cache hits are free — exactly what a
//!    serial memoized loop over the same batch would charge.
//!
//! The engine also keeps counters ([`EvalCounters`]) separating the
//! *simulated* tuning cost charged to the budget from the *real* wall
//! time spent inside the simulator, for the bench binaries.

use crate::racing::{Moments, RaceDiscard, RaceOutcome, RacingConfig, RacingCounters};
use parking_lot::Mutex;
use rayon::prelude::*;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Instant;
use tunio_iosim::{noise, FaultKind, InjectedFault, Layer, Profile, RunReport, Simulator};
use tunio_params::{Configuration, ParameterSpace};
use tunio_trace as trace;
use tunio_workloads::Workload;

/// Result of evaluating one configuration.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The evaluated configuration.
    pub config: Configuration,
    /// Averaged run report (over `repeats` runs).
    pub report: RunReport,
    /// The tuning objective `perf` in bytes/s.
    pub perf: f64,
    /// Time charged to the tuning budget for this evaluation, seconds.
    /// Zero for memoized repeats; otherwise one run's elapsed time (§IV:
    /// extra runs for averaging are "a necessary expense for a given
    /// platform" and not accumulated).
    pub cost_s: f64,
}

/// Engine counters: how much work was done and what it cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct EvalCounters {
    /// Simulator evaluations actually performed (cache misses).
    pub evaluations: u64,
    /// Memoized lookups served (including within-batch duplicates).
    pub cache_hits: u64,
    /// Simulated tuning time charged to the budget, seconds.
    pub charged_cost_s: f64,
    /// Real wall time spent inside the simulator, seconds. With more
    /// than one worker this is the *sum* across threads, so it can
    /// exceed elapsed time; compare against it to measure speedup.
    pub sim_wall_s: f64,
}

/// How failed evaluations are retried, quarantined and degraded.
///
/// A failed attempt (transient fault or corrupted report) is retried up
/// to [`FailurePolicy::max_retries`] times with fresh fault draws. An
/// evaluation that exhausts its retries yields the penalty value — a zero
/// report with [`FailurePolicy::penalty_perf`] — which can never beat the
/// default configuration, so the GA keeps making progress without ever
/// promoting a failed config to `best`. Failed evaluations are *not*
/// cached: a later generation re-encountering the key tries again, until
/// [`FailurePolicy::quarantine_after`] consecutive whole-evaluation
/// failures open the circuit breaker and the key is permanently served
/// the penalty without touching the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailurePolicy {
    /// Retries per evaluation after the first attempt (so `max_retries`
    /// = 2 means up to three simulation attempts).
    pub max_retries: u32,
    /// Base backoff between retries, milliseconds; doubles per retry.
    /// Zero (the default) skips sleeping — simulated stacks need no
    /// real-time courtesy, and tests stay fast.
    pub backoff_base_ms: u64,
    /// Consecutive failed evaluations before a key is quarantined.
    pub quarantine_after: u32,
    /// Objective value served for unrecoverable evaluations. Must be
    /// ≤ any real perf so a failed config never becomes `best`.
    pub penalty_perf: f64,
}

impl Default for FailurePolicy {
    fn default() -> Self {
        FailurePolicy {
            max_retries: 2,
            backoff_base_ms: 0,
            quarantine_after: 2,
            penalty_perf: 0.0,
        }
    }
}

/// Resilience counters: what the failure machinery actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct ResilienceCounters {
    /// Faults the simulator injected (all kinds, including non-fatal).
    pub faults_injected: u64,
    /// Attempts that failed and were retried.
    pub retries: u64,
    /// Whole evaluations that exhausted their retries.
    pub failed_evaluations: u64,
    /// Keys whose circuit breaker has opened.
    pub quarantined_keys: u64,
    /// Evaluations served the penalty value (failures + quarantine hits).
    pub penalties_served: u64,
}

/// One memo-cache entry, as exported to (and restored from) a campaign
/// checkpoint. `report`/`perf` reproduce the cached result; `profile`
/// lets a resumed campaign re-charge the evaluation's cost attribution
/// bitwise-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// The gene key.
    pub key: Vec<usize>,
    /// The averaged run report.
    pub report: RunReport,
    /// The tuning objective.
    pub perf: f64,
    /// Per-layer cost attribution of the charged evaluation.
    pub profile: Profile,
    /// Racing sample count that produced `perf` (0 for the fixed-repeat
    /// path — the WAL omits the racing moments entirely in that case).
    pub samples: u32,
    /// Welford M2 of the per-run objectives (with `samples` and `perf`
    /// as the mean, this restores the key's racing moments bitwise).
    pub m2: f64,
}

/// Per-key failure bookkeeping behind the retry/quarantine policy.
#[derive(Debug, Clone, Copy, Default)]
struct KeyFailState {
    /// Simulation attempts this key has consumed (fault draws are pure in
    /// the attempt index, so retries across generations see fresh draws).
    attempts_used: u32,
    /// Consecutive whole-evaluation failures; reset on success.
    consecutive_failures: u32,
    /// Circuit breaker state: once open, the key is never simulated again.
    quarantined: bool,
}

/// Per-key racing accumulator between the parallel warm phase and the
/// serial settle at the commit frontier. Only the one worker that
/// race-warmed the key and the committing coordinator ever touch it
/// (the scheduler never dispatches a key twice), so its contents are a
/// pure function of `(sim, config, sample indices)`.
#[derive(Debug, Default)]
struct RaceState {
    /// Valid per-run reports, in sample order.
    reports: Vec<RunReport>,
    /// Matching per-run profiles.
    profiles: Vec<Profile>,
    /// Welford moments of the per-run objectives.
    perfs: Moments,
    /// Sample indices consumed, including failed/insane runs (the next
    /// sample always runs at `run_idx = attempts`).
    attempts: u32,
}

impl RaceState {
    fn note(&mut self, sample: Option<(RunReport, Profile)>) {
        self.attempts += 1;
        if let Some((report, profile)) = sample {
            self.perfs.push(report.perf());
            self.reports.push(report);
            self.profiles.push(profile);
        }
    }
}

/// Why a simulation attempt produced no usable report.
enum AttemptError {
    /// A transient fault killed the run.
    Fault(InjectedFault),
    /// The run "completed" but its report failed the sanity gate
    /// (NaN/negative counters — a torn log).
    Corrupt,
}

/// Outcome of a full (retried) evaluation of one key.
enum SimOutcome {
    /// A usable report: `(report, profile, perf)`.
    Success(RunReport, Box<Profile>, f64),
    /// All attempts failed; the caller serves the penalty value.
    Failed,
}

/// Number of cache shards; keys are spread by gene-vector fingerprint.
const SHARDS: usize = 16;

/// Rendezvous point for concurrent evaluations of the same gene key:
/// the first caller simulates, everyone else blocks here — *without*
/// holding the shard lock — until the result is published.
#[derive(Debug, Default)]
struct InFlight {
    result: StdMutex<Option<(RunReport, f64)>>,
    ready: Condvar,
}

impl InFlight {
    fn wait(&self) -> (RunReport, f64) {
        let mut guard = self.result.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(v) = *guard {
                return v;
            }
            guard = self.ready.wait(guard).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn publish(&self, value: (RunReport, f64)) {
        *self.result.lock().unwrap_or_else(|p| p.into_inner()) = Some(value);
        self.ready.notify_all();
    }
}

/// One cache entry: a finished result, a marker that some thread is
/// currently simulating this key, or a checkpoint-restored result that
/// still owes its serial cost/profile charge.
#[derive(Debug)]
enum Slot {
    Ready(RunReport, f64),
    Pending(Arc<InFlight>),
    /// Preloaded from a checkpoint: served like a fresh simulation the
    /// first time the key is used (full miss bookkeeping, cost charged,
    /// profile absorbed), then converted to `Ready`. This is what makes a
    /// resumed campaign's costs and profile accumulator bitwise-identical
    /// to the uninterrupted run.
    Replay(Box<(RunReport, f64, Profile)>),
}

type Shard = Mutex<HashMap<Vec<usize>, Slot>>;

/// What [`EvalEngine::evaluate`] found when it claimed a key.
enum Claim {
    /// Cached result, served immediately.
    Hit(RunReport, f64),
    /// Another thread is simulating this key; wait on its guard.
    Join(Arc<InFlight>),
    /// This thread inserted the pending marker and must simulate.
    Claimed(Arc<InFlight>),
    /// Checkpoint-preloaded result, converted to `Ready` under the shard
    /// lock; the caller owes the miss bookkeeping.
    Replayed(Box<(RunReport, f64, Profile)>),
}

/// Unwinding a panic out of a claimed simulation must not leave the
/// `Pending` marker in place — concurrent waiters on the same key would
/// block forever and wedge the campaign. On drop (while armed) this guard
/// removes the marker and publishes the penalty value to any waiters; the
/// success path disarms it.
struct PendingGuard<'a> {
    engine: &'a EvalEngine,
    key: &'a [usize],
    shard_idx: usize,
    inflight: &'a Arc<InFlight>,
    armed: bool,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.engine.shards[self.shard_idx].lock().remove(self.key);
            self.inflight
                .publish((RunReport::default(), self.engine.policy.penalty_perf));
        }
    }
}

/// Thread-safe, memoizing configuration evaluator.
///
/// All methods take `&self`; the engine can be shared freely across
/// threads. Prefer [`EvalEngine::evaluate_batch`] for a generation's
/// population — it deduplicates, fans the cache misses out across rayon
/// workers, and reassembles results in input order.
#[derive(Debug)]
pub struct EvalEngine {
    /// The simulated machine.
    pub sim: Simulator,
    /// The application (or kernel) under tuning.
    pub workload: Workload,
    /// The tuning space.
    pub space: ParameterSpace,
    /// Runs averaged per evaluation (the paper uses 3).
    pub repeats: u32,
    /// Retry/quarantine/penalty policy for failed evaluations.
    pub policy: FailurePolicy,
    shards: [Shard; SHARDS],
    evaluations: AtomicU64,
    cache_hits: AtomicU64,
    sim_wall_ns: AtomicU64,
    faults_injected: AtomicU64,
    retries: AtomicU64,
    failed_evaluations: AtomicU64,
    quarantined_keys: AtomicU64,
    penalties_served: AtomicU64,
    charged_cost_s: Mutex<f64>,
    profile: Mutex<Profile>,
    fail_state: Mutex<HashMap<Vec<usize>, KeyFailState>>,
    /// Keys mid-race: warm samples accumulated, settle pending.
    races: Mutex<HashMap<Vec<usize>, RaceState>>,
    /// Racing provenance of settled/preloaded keys — `(samples, m2)` —
    /// consulted when journaling so re-checkpointed entries keep their
    /// moments across kill/resume cycles.
    race_meta: Mutex<HashMap<Vec<usize>, (u32, f64)>>,
    /// Early-discard audit log, in settle (= commit) order.
    race_discard_log: Mutex<Vec<RaceDiscard>>,
    race_samples: AtomicU64,
    race_settled: AtomicU64,
    race_topups: AtomicU64,
    race_discards: AtomicU64,
    /// When enabled, every charged cache insertion is recorded here so a
    /// checkpoint writer can persist the generation's new entries.
    journal: Mutex<Option<Vec<CacheEntry>>>,
    m_hits: trace::Counter,
    m_misses: trace::Counter,
    m_cost: trace::Histogram,
    m_retries: trace::Counter,
    m_failures: trace::Counter,
    m_quarantined: trace::Counter,
    m_faults: Vec<trace::Counter>,
    m_layer_self: Vec<trace::Histogram>,
    m_race_samples: trace::Counter,
    m_race_settled: trace::Counter,
    m_race_topups: trace::Counter,
    m_race_discards: trace::Counter,
    m_noise_interference: trace::Histogram,
    #[cfg(test)]
    sim_gate: SimGate,
}

/// Fault kinds in a stable order for the labeled `tunio.fault.injected`
/// counters.
const FAULT_KINDS: [FaultKind; 4] = [
    FaultKind::Transient,
    FaultKind::Straggler,
    FaultKind::OstFlap,
    FaultKind::Corrupt,
];

/// Callback installed into a [`SimGate`].
#[cfg(test)]
pub(crate) type GateFn = Arc<dyn Fn(&[usize]) + Send + Sync>;

/// Test hook: lets unit tests block inside [`EvalEngine::simulate`] to
/// prove that concurrent evaluations of *different* keys do not
/// serialize behind one another.
#[cfg(test)]
#[derive(Default)]
struct SimGate(StdMutex<Option<GateFn>>);

#[cfg(test)]
impl std::fmt::Debug for SimGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SimGate")
    }
}

impl EvalEngine {
    /// Create an engine; `repeats` follows the paper's 3-run averaging.
    pub fn new(sim: Simulator, workload: Workload, space: ParameterSpace, repeats: u32) -> Self {
        EvalEngine {
            sim,
            workload,
            space,
            repeats: repeats.max(1),
            policy: FailurePolicy::default(),
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            evaluations: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            sim_wall_ns: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            failed_evaluations: AtomicU64::new(0),
            quarantined_keys: AtomicU64::new(0),
            penalties_served: AtomicU64::new(0),
            charged_cost_s: Mutex::new(0.0),
            profile: Mutex::new(Profile::new()),
            fail_state: Mutex::new(HashMap::new()),
            races: Mutex::new(HashMap::new()),
            race_meta: Mutex::new(HashMap::new()),
            race_discard_log: Mutex::new(Vec::new()),
            race_samples: AtomicU64::new(0),
            race_settled: AtomicU64::new(0),
            race_topups: AtomicU64::new(0),
            race_discards: AtomicU64::new(0),
            journal: Mutex::new(None),
            m_hits: trace::counter("tunio.eval.cache_hits"),
            m_misses: trace::counter("tunio.eval.evaluations"),
            m_cost: trace::histogram("tunio.eval.cost_s"),
            m_retries: trace::counter("tunio.eval.retries"),
            m_failures: trace::counter("tunio.eval.failures"),
            m_quarantined: trace::counter("tunio.eval.quarantined"),
            m_faults: FAULT_KINDS
                .iter()
                .map(|k| trace::labeled_counter("tunio.fault.injected", &[("kind", k.label())]))
                .collect(),
            m_layer_self: Layer::ALL
                .iter()
                .map(|l| trace::labeled_histogram("tunio.profile.self_s", &[("layer", l.as_str())]))
                .collect(),
            m_race_samples: trace::counter("tunio.racing.samples"),
            m_race_settled: trace::counter("tunio.racing.settled"),
            m_race_topups: trace::counter("tunio.racing.topups"),
            m_race_discards: trace::counter("tunio.racing.discards"),
            m_noise_interference: trace::histogram("tunio.noise.interference_s"),
            #[cfg(test)]
            sim_gate: SimGate::default(),
        }
    }

    /// Override the failure policy (builder style).
    pub fn with_policy(mut self, policy: FailurePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Install a simulator-entry hook (crate tests only): called with
    /// the gene key of every configuration about to simulate. Used to
    /// stall or panic chosen evaluations.
    #[cfg(test)]
    pub(crate) fn install_sim_gate(&self, gate: GateFn) {
        *self.sim_gate.0.lock().unwrap_or_else(|p| p.into_inner()) = Some(gate);
    }

    fn shard_of(key: &[usize]) -> usize {
        (noise::fingerprint(key) % SHARDS as u64) as usize
    }

    /// Run the simulator once for one configuration (no cache, no retry).
    /// Pure in `(sim, config, repeats, attempt)`; see the module docs.
    /// Injected non-fatal faults are surfaced as `fault.injected` events
    /// and counters; a transient fault or an insane (NaN/negative) report
    /// comes back as an [`AttemptError`].
    fn simulate_attempt(
        &self,
        config: &Configuration,
        attempt: u32,
    ) -> Result<(RunReport, Profile, f64), AttemptError> {
        #[cfg(test)]
        {
            let gate = self
                .sim_gate
                .0
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .clone();
            if let Some(gate) = gate {
                gate(config.genes());
            }
        }
        let mut span = trace::span("eval.simulate", vec![("repeats", self.repeats.into())]);
        let t0 = Instant::now();
        let phases = self.workload.phases();
        let stack = config.resolve(&self.space);
        let outcome = self
            .sim
            .try_run_averaged_profiled(&phases, &stack, self.repeats, attempt);
        self.sim_wall_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        match outcome {
            Ok((report, profile, faults)) => {
                for fault in &faults {
                    self.note_fault(fault);
                }
                if !report.is_sane() {
                    span.add_field("failed", "corrupt_report".into());
                    return Err(AttemptError::Corrupt);
                }
                span.add_field("perf", report.perf().into());
                span.add_field("cost_s", report.elapsed_s.into());
                let perf = report.perf();
                Ok((report, profile, perf))
            }
            Err(sim_fault) => {
                self.note_fault(&sim_fault.fault);
                span.add_field("failed", sim_fault.fault.kind.label().into());
                Err(AttemptError::Fault(sim_fault.fault))
            }
        }
    }

    /// Record one injected fault: event + labeled counter.
    fn note_fault(&self, fault: &InjectedFault) {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
        let idx = FAULT_KINDS
            .iter()
            .position(|k| *k == fault.kind)
            .expect("every kind is registered");
        self.m_faults[idx].inc(1);
        trace::event(
            "fault.injected",
            vec![
                ("kind", fault.kind.label().into()),
                ("run_idx", fault.run_idx.into()),
                ("attempt", fault.attempt.into()),
            ],
        );
    }

    /// Evaluate one key with bounded retry and quarantine bookkeeping.
    ///
    /// Deterministic per key: attempt indices continue from the key's
    /// persistent counter, so the sequence of fault draws a key sees is a
    /// pure function of how often it has been (re)tried — independent of
    /// thread interleaving, because each key's state is only touched by
    /// the one worker evaluating it.
    fn simulate_resilient(&self, config: &Configuration) -> SimOutcome {
        let key = config.genes();
        let base = self
            .fail_state
            .lock()
            .get(key)
            .map_or(0, |s| s.attempts_used);
        let tries = self.policy.max_retries + 1;
        for t in 0..tries {
            match self.simulate_attempt(config, base + t) {
                Ok((report, profile, perf)) => {
                    if base > 0 || t > 0 {
                        let mut states = self.fail_state.lock();
                        let state = states.entry(key.to_vec()).or_default();
                        state.attempts_used += t + 1;
                        state.consecutive_failures = 0;
                    }
                    return SimOutcome::Success(report, Box::new(profile), perf);
                }
                Err(why) => {
                    let reason = match why {
                        AttemptError::Fault(f) => f.kind.label(),
                        AttemptError::Corrupt => "corrupt_report",
                    };
                    if t + 1 < tries {
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        self.m_retries.inc(1);
                        trace::event(
                            "eval.retry",
                            vec![
                                ("key_fp", noise::fingerprint(key).into()),
                                ("attempt", (base + t).into()),
                                ("reason", reason.into()),
                            ],
                        );
                        let backoff = self.policy.backoff_base_ms << t;
                        if backoff > 0 {
                            std::thread::sleep(std::time::Duration::from_millis(backoff));
                        }
                    }
                }
            }
        }
        // Retries exhausted: count the failure, maybe open the breaker.
        self.failed_evaluations.fetch_add(1, Ordering::Relaxed);
        self.m_failures.inc(1);
        let newly_quarantined = {
            let mut states = self.fail_state.lock();
            let state = states.entry(key.to_vec()).or_default();
            state.attempts_used += tries;
            state.consecutive_failures += 1;
            if !state.quarantined && state.consecutive_failures >= self.policy.quarantine_after {
                state.quarantined = true;
                true
            } else {
                false
            }
        };
        if newly_quarantined {
            self.quarantined_keys.fetch_add(1, Ordering::Relaxed);
            self.m_quarantined.inc(1);
            trace::event(
                "eval.quarantined",
                vec![("key_fp", noise::fingerprint(key).into())],
            );
        }
        SimOutcome::Failed
    }

    /// True when the key's circuit breaker is open.
    fn is_quarantined(&self, key: &[usize]) -> bool {
        self.fail_state
            .lock()
            .get(key)
            .is_some_and(|s| s.quarantined)
    }

    /// The penalty evaluation served for unrecoverable keys.
    fn penalty_evaluation(&self, config: &Configuration) -> Evaluation {
        self.penalties_served.fetch_add(1, Ordering::Relaxed);
        Evaluation {
            config: config.clone(),
            report: RunReport::default(),
            perf: self.policy.penalty_perf,
            cost_s: 0.0,
        }
    }

    /// Record a charged cache insertion into the checkpoint journal, when
    /// journaling is enabled. Called only from serial accounting sections,
    /// so entry order is deterministic.
    fn journal_push(&self, key: &[usize], report: &RunReport, perf: f64, profile: &Profile) {
        if let Some(journal) = self.journal.lock().as_mut() {
            // Raced keys carry their (sample count, M2) so a resumed
            // campaign restores the racing moments bitwise; the pair is
            // (0, 0.0) — and omitted from the WAL — for fixed repeats.
            let (samples, m2) = self.race_meta.lock().get(key).copied().unwrap_or((0, 0.0));
            journal.push(CacheEntry {
                key: key.to_vec(),
                report: *report,
                perf,
                profile: profile.clone(),
                samples,
                m2,
            });
        }
    }

    /// Start recording charged cache insertions for checkpointing.
    pub fn enable_journal(&self) {
        let mut journal = self.journal.lock();
        if journal.is_none() {
            *journal = Some(Vec::new());
        }
    }

    /// Take the cache entries recorded since the last drain (empty unless
    /// [`EvalEngine::enable_journal`] was called).
    pub fn drain_journal(&self) -> Vec<CacheEntry> {
        match self.journal.lock().as_mut() {
            Some(journal) => std::mem::take(journal),
            None => Vec::new(),
        }
    }

    /// Preload checkpoint-restored entries. Each is served with full miss
    /// bookkeeping on first use (see [`Slot::Replay`]); keys already in
    /// the cache are left untouched.
    pub fn preload(&self, entries: Vec<CacheEntry>) {
        for e in entries {
            if e.samples > 0 {
                // Restore the key's racing provenance so the replayed
                // entry re-journals with its moments intact and a race
                // warm short-circuits to the memoized aggregate.
                self.race_meta
                    .lock()
                    .insert(e.key.clone(), (e.samples, e.m2));
            }
            let mut shard = self.shards[Self::shard_of(&e.key)].lock();
            shard
                .entry(e.key)
                .or_insert_with(|| Slot::Replay(Box::new((e.report, e.perf, e.profile))));
        }
    }

    /// Drop a cached result, forcing the next evaluation of the key to
    /// re-simulate. Intended for cache management in long campaigns; the
    /// batch path also survives a concurrent eviction by falling back to
    /// re-simulation.
    pub fn evict(&self, key: &[usize]) {
        self.shards[Self::shard_of(key)].lock().remove(key);
    }

    /// Fold one charged evaluation's profile into the engine accumulator
    /// and the per-layer self-time histograms. Called only from serial
    /// accounting sections, in batch input order, so the float sums in
    /// the accumulated profile are deterministic.
    fn charge_profile(&self, profile: &Profile) {
        for (layer, stat) in profile.iter() {
            self.m_layer_self[layer as usize].record(stat.self_s);
            if layer == Layer::Interference && stat.self_s > 0.0 {
                self.m_noise_interference.record(stat.self_s);
            }
        }
        self.profile.lock().absorb(profile);
    }

    /// Look the key up; if some thread is mid-simulation on it, wait for
    /// that result instead of recomputing.
    fn lookup_or_wait(&self, key: &[usize]) -> Option<(RunReport, f64)> {
        let found = {
            let shard = self.shards[Self::shard_of(key)].lock();
            match shard.get(key) {
                Some(Slot::Ready(report, perf)) => return Some((*report, *perf)),
                Some(Slot::Pending(inflight)) => Some(inflight.clone()),
                // A replay slot still owes its charge: report no result so
                // the caller goes through the claiming path, which does
                // the miss bookkeeping.
                Some(Slot::Replay(_)) | None => None,
            }
        };
        found.map(|inflight| inflight.wait())
    }

    /// Evaluate a single configuration (memoized).
    ///
    /// A miss claims the key with an in-flight marker and releases the
    /// shard lock *before* simulating, so only callers presenting the
    /// **same** gene key wait for each other; different keys that happen
    /// to collide on a shard proceed in parallel. Each unique key is
    /// still simulated at most once. Failed evaluations are retried per
    /// the [`FailurePolicy`] and, if unrecoverable, served the penalty
    /// value *without* caching it (quarantine aside), so later calls get
    /// another chance.
    pub fn evaluate(&self, config: &Configuration) -> Evaluation {
        let key = config.genes().to_vec();
        let shard_idx = Self::shard_of(&key);

        if self.is_quarantined(&key) {
            return self.penalty_evaluation(config);
        }

        let claim = {
            let mut shard = self.shards[shard_idx].lock();
            match shard.get(&key) {
                Some(Slot::Ready(report, perf)) => Claim::Hit(*report, *perf),
                Some(Slot::Pending(inflight)) => Claim::Join(inflight.clone()),
                Some(Slot::Replay(_)) => {
                    let Some(Slot::Replay(entry)) = shard.remove(&key) else {
                        unreachable!("matched Replay under the same lock");
                    };
                    shard.insert(key.clone(), Slot::Ready(entry.0, entry.1));
                    Claim::Replayed(entry)
                }
                None => {
                    let inflight = Arc::new(InFlight::default());
                    shard.insert(key.clone(), Slot::Pending(inflight.clone()));
                    Claim::Claimed(inflight)
                }
            }
        }; // shard lock released here, before any simulation

        let (report, perf) = match claim {
            Claim::Hit(report, perf) => (report, perf),
            Claim::Join(inflight) => inflight.wait(),
            Claim::Replayed(entry) => {
                let (report, perf, profile) = *entry;
                *self.charged_cost_s.lock() += report.elapsed_s;
                return self.charge_miss(config, &key, report, perf, &profile);
            }
            Claim::Claimed(inflight) => {
                let mut guard = PendingGuard {
                    engine: self,
                    key: &key,
                    shard_idx,
                    inflight: &inflight,
                    armed: true,
                };
                let outcome = self.simulate_resilient(config);
                match outcome {
                    SimOutcome::Success(report, profile, perf) => {
                        guard.armed = false;
                        self.shards[shard_idx]
                            .lock()
                            .insert(key.clone(), Slot::Ready(report, perf));
                        inflight.publish((report, perf));
                        *self.charged_cost_s.lock() += report.elapsed_s;
                        return self.charge_miss(config, &key, report, perf, &profile);
                    }
                    SimOutcome::Failed => {
                        // The guard's drop removes the pending marker and
                        // unblocks any waiters with the penalty value; the
                        // key stays uncached so it can retry later.
                        drop(guard);
                        return self.penalty_evaluation(config);
                    }
                }
            }
        };
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
        self.m_hits.inc(1);
        Evaluation {
            config: config.clone(),
            report,
            perf,
            cost_s: 0.0,
        }
    }

    /// Miss bookkeeping for one charged evaluation: counters, profile
    /// accumulator, checkpoint journal. Serial-section only. The caller
    /// owns the `charged_cost_s` fold (batches sum locally and fold once,
    /// preserving the serial float-accumulation order).
    fn charge_miss(
        &self,
        config: &Configuration,
        key: &[usize],
        report: RunReport,
        perf: f64,
        profile: &Profile,
    ) -> Evaluation {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        self.m_misses.inc(1);
        self.m_cost.record(report.elapsed_s);
        self.charge_profile(profile);
        self.journal_push(key, &report, perf, profile);
        Evaluation {
            config: config.clone(),
            report,
            perf,
            cost_s: report.elapsed_s,
        }
    }

    /// Evaluate a batch of configurations, simulating cache misses in
    /// parallel. Results come back in input order and are bitwise
    /// identical to evaluating the batch serially in that order:
    /// the first occurrence of each uncached gene key is charged one
    /// run's elapsed time, everything else costs zero.
    pub fn evaluate_batch(&self, configs: &[Configuration]) -> Vec<Evaluation> {
        let keys: Vec<Vec<usize>> = configs.iter().map(|c| c.genes().to_vec()).collect();

        // Classify the first occurrence of each gene key: quarantined
        // (circuit open, never simulated), checkpoint-replayed (converted
        // to Ready here, charged below in input order), fresh (needs the
        // simulator), or already cached.
        let mut seen: HashMap<&[usize], usize> = HashMap::with_capacity(configs.len());
        let mut fresh: Vec<usize> = Vec::new();
        let mut quarantined: Vec<usize> = Vec::new();
        let mut replayed: HashMap<usize, (RunReport, f64, Profile)> = HashMap::new();
        for (i, key) in keys.iter().enumerate() {
            if seen.contains_key(key.as_slice()) {
                continue;
            }
            seen.insert(key, i);
            if self.is_quarantined(key) {
                quarantined.push(i);
                continue;
            }
            let mut shard = self.shards[Self::shard_of(key)].lock();
            match shard.get(key) {
                None => fresh.push(i),
                Some(Slot::Replay(_)) => {
                    let Some(Slot::Replay(entry)) = shard.remove(key) else {
                        unreachable!("matched Replay under the same lock");
                    };
                    shard.insert(key.clone(), Slot::Ready(entry.0, entry.1));
                    replayed.insert(i, *entry);
                }
                Some(_) => {}
            }
        }

        // Fan the misses out; order-preserving collect keeps sims[j]
        // aligned with fresh[j]. Retry/quarantine bookkeeping is per-key,
        // so outcomes stay deterministic under any interleaving. The
        // caller's causal context is re-installed inside each rayon
        // worker so eval spans stay in the campaign's trace.
        let ctx = trace::current();
        let sims: Vec<SimOutcome> = fresh
            .par_iter()
            .map(|&i| {
                let _ctx = trace::with_context(ctx);
                self.simulate_resilient(&configs[i])
            })
            .collect();

        // Publish successes; failures stay uncached so they retry on the
        // next encounter. `penalized` serves this batch's duplicates of a
        // failed or quarantined key.
        let mut fresh_results: HashMap<&[usize], (RunReport, f64)> = HashMap::new();
        let mut penalized: std::collections::HashSet<&[usize]> = std::collections::HashSet::new();
        for (&i, outcome) in fresh.iter().zip(&sims) {
            match outcome {
                SimOutcome::Success(report, _, perf) => {
                    self.shards[Self::shard_of(&keys[i])]
                        .lock()
                        .insert(keys[i].clone(), Slot::Ready(*report, *perf));
                    fresh_results.insert(keys[i].as_slice(), (*report, *perf));
                }
                SimOutcome::Failed => {
                    penalized.insert(keys[i].as_slice());
                }
            }
        }
        for &i in &quarantined {
            penalized.insert(keys[i].as_slice());
        }

        // All bookkeeping in input order — bitwise identical to a serial
        // memoized loop over the same batch.
        let mut out = Vec::with_capacity(configs.len());
        let mut charged = 0.0;
        for (i, config) in configs.iter().enumerate() {
            let key = keys[i].as_slice();
            if let Ok(j) = fresh.binary_search(&i) {
                match &sims[j] {
                    SimOutcome::Success(report, profile, perf) => {
                        charged += report.elapsed_s;
                        out.push(self.charge_miss(config, key, *report, *perf, profile));
                    }
                    SimOutcome::Failed => out.push(self.penalty_evaluation(config)),
                }
            } else if let Some((report, perf, profile)) = replayed.get(&i) {
                charged += report.elapsed_s;
                out.push(self.charge_miss(config, key, *report, *perf, profile));
            } else if penalized.contains(key) {
                out.push(self.penalty_evaluation(config));
            } else if let Some((report, perf)) = self.lookup_or_wait(key) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                self.m_hits.inc(1);
                out.push(Evaluation {
                    config: config.clone(),
                    report,
                    perf,
                    cost_s: 0.0,
                });
            } else {
                // The entry vanished between classification and assembly
                // (eviction). Recover by re-simulating through the normal
                // claim path, which does its own bookkeeping.
                out.push(self.evaluate(config));
            }
        }
        *self.charged_cost_s.lock() += charged;
        out
    }

    /// Number of simulator evaluations actually performed (cache misses).
    pub fn evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }

    /// Number of memoized lookups served.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Snapshot the accumulated per-layer cost profile: the pooled
    /// attribution of every *charged* evaluation (first occurrence of
    /// each unique configuration). Its total time tracks
    /// [`EvalCounters::charged_cost_s`].
    pub fn profile_snapshot(&self) -> Profile {
        self.profile.lock().clone()
    }

    /// Snapshot the resilience counters.
    pub fn resilience(&self) -> ResilienceCounters {
        ResilienceCounters {
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            failed_evaluations: self.failed_evaluations.load(Ordering::Relaxed),
            quarantined_keys: self.quarantined_keys.load(Ordering::Relaxed),
            penalties_served: self.penalties_served.load(Ordering::Relaxed),
        }
    }

    /// Snapshot all counters.
    pub fn counters(&self) -> EvalCounters {
        EvalCounters {
            evaluations: self.evaluations(),
            cache_hits: self.cache_hits(),
            charged_cost_s: *self.charged_cost_s.lock(),
            sim_wall_s: self.sim_wall_ns.load(Ordering::Relaxed) as f64 / 1e9,
        }
    }

    /// Snapshot the racing activity counters.
    pub fn racing_counters(&self) -> RacingCounters {
        RacingCounters {
            samples: self.race_samples.load(Ordering::Relaxed),
            settled: self.race_settled.load(Ordering::Relaxed),
            topups: self.race_topups.load(Ordering::Relaxed),
            discards: self.race_discards.load(Ordering::Relaxed),
        }
    }

    /// The early-discard audit log, in settle (= commit) order.
    pub fn race_discard_log(&self) -> Vec<RaceDiscard> {
        self.race_discard_log.lock().clone()
    }

    /// One raw single-run sample of `config` at repeat index `rep` — no
    /// cache, no retry, no charge. Pure in `(sim, config, rep)`; a fault
    /// or insane report comes back as `None` (the sample is excluded
    /// from the moments, which is what keeps aggregation NaN-safe).
    fn race_sample(&self, config: &Configuration, rep: u32) -> Option<(RunReport, Profile)> {
        #[cfg(test)]
        {
            let gate = self
                .sim_gate
                .0
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .clone();
            if let Some(gate) = gate {
                gate(config.genes());
            }
        }
        let mut span = trace::span("eval.sample", vec![("rep", rep.into())]);
        let t0 = Instant::now();
        let phases = self.workload.phases();
        let stack = config.resolve(&self.space);
        let outcome = self.sim.try_run_profiled(&phases, &stack, rep, 0);
        self.sim_wall_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.race_samples.fetch_add(1, Ordering::Relaxed);
        self.m_race_samples.inc(1);
        match outcome {
            Ok((report, profile, fault)) => {
                if let Some(f) = &fault {
                    self.note_fault(f);
                }
                if !report.is_sane() || !report.perf().is_finite() {
                    span.add_field("failed", "corrupt_report".into());
                    return None;
                }
                span.add_field("perf", report.perf().into());
                Some((report, profile))
            }
            Err(sim_fault) => {
                self.note_fault(&sim_fault.fault);
                span.add_field("failed", sim_fault.fault.kind.label().into());
                None
            }
        }
    }

    /// Racing warm phase: run the first [`RacingConfig::min_samples`]
    /// raw repeats of an unseen key and return a **provisional**
    /// evaluation (running mean, zero cost). Nothing is cached, charged
    /// or journaled until [`EvalEngine::race_settle`] runs at the
    /// scheduler's commit frontier.
    ///
    /// Keys the engine already knows — the default baseline, a
    /// checkpoint [`Slot::Replay`], or an earlier settle — are served
    /// through [`EvalEngine::evaluate`] with standard accounting; no
    /// race state is created, so settling leaves them untouched. This
    /// is what makes a resumed campaign skip re-racing bitwise.
    pub fn race_warm(&self, config: &Configuration, racing: &RacingConfig) -> Evaluation {
        let key = config.genes().to_vec();
        if self.is_quarantined(&key) {
            return self.penalty_evaluation(config);
        }
        let known = self.shards[Self::shard_of(&key)].lock().contains_key(&key);
        if known {
            return self.evaluate(config);
        }
        let min = racing.min_samples.clamp(2, racing.max_samples.max(2));
        let mut state = RaceState::default();
        for rep in 0..min {
            state.note(self.race_sample(config, rep));
        }
        let provisional = if state.perfs.n > 0 {
            state.perfs.mean
        } else {
            self.policy.penalty_perf
        };
        let report = RunReport::average(&state.reports);
        self.races.lock().insert(key, state);
        Evaluation {
            config: config.clone(),
            report,
            perf: provisional,
            cost_s: 0.0,
        }
    }

    /// Settle a raced key against the incumbent objective. **Serial
    /// section**: must be called from the scheduler's commit frontier,
    /// where `incumbent` is a pure function of the committed history —
    /// that is what keeps top-up counts and discards independent of
    /// thread timing.
    ///
    /// Returns `None` for keys with no race state (cache hits, replays,
    /// penalties), whose worker-reported values are already final. The
    /// racing rule: while the CI `mean ± z·sd/√n` overlaps the
    /// incumbent, top up one sample at a time; discard early once
    /// `mean + half < incumbent` (a clear loser needs no more
    /// precision); stop as soon as `mean - half > incumbent` (a clear
    /// winner needs no more either) or at `max_samples`. The settled
    /// aggregate is cached, charged and journaled exactly like a
    /// fixed-repeat miss.
    pub fn race_settle(
        &self,
        config: &Configuration,
        incumbent: f64,
        racing: &RacingConfig,
    ) -> Option<RaceOutcome> {
        let key = config.genes().to_vec();
        let mut state = self.races.lock().remove(&key)?;
        let max = racing.max_samples.max(racing.min_samples).max(2);
        let mut topups = 0u32;
        let mut discarded = false;
        loop {
            if state.perfs.n >= 2 {
                let half = state.perfs.half_width(racing.z);
                let mean = state.perfs.mean;
                if mean + half < incumbent {
                    discarded = true;
                    break;
                }
                if mean - half > incumbent {
                    break;
                }
            }
            if state.attempts >= max {
                break;
            }
            let rep = state.attempts;
            state.note(self.race_sample(config, rep));
            topups += 1;
            trace::event(
                "eval.repeat",
                vec![
                    ("key_fp", noise::fingerprint(&key).into()),
                    ("rep", rep.into()),
                    ("samples", state.perfs.n.into()),
                    ("incumbent", incumbent.into()),
                ],
            );
        }
        self.race_settled.fetch_add(1, Ordering::Relaxed);
        self.m_race_settled.inc(1);
        self.race_topups.fetch_add(topups as u64, Ordering::Relaxed);
        self.m_race_topups.inc(topups as u64);

        let samples = state.perfs.n as u32;
        let mean = state.perfs.mean;
        let half = state.perfs.half_width(racing.z);
        if discarded {
            self.race_discards.fetch_add(1, Ordering::Relaxed);
            self.m_race_discards.inc(1);
            self.race_discard_log.lock().push(RaceDiscard {
                key: key.clone(),
                mean,
                half_width: half,
                incumbent,
                samples,
            });
            trace::event(
                "eval.discard",
                vec![
                    ("key", format!("{:?}", key).into()),
                    ("mean", mean.into()),
                    ("half_width", half.into()),
                    ("incumbent", incumbent.into()),
                    ("samples", samples.into()),
                ],
            );
        }
        if samples == 0 {
            // Every sample failed: serve the penalty and leave the key
            // uncached, mirroring the fixed-repeat failure path.
            self.failed_evaluations.fetch_add(1, Ordering::Relaxed);
            self.m_failures.inc(1);
            self.penalties_served.fetch_add(1, Ordering::Relaxed);
            return Some(RaceOutcome {
                perf: self.policy.penalty_perf,
                cost_s: 0.0,
                samples: 0,
                topups,
                discarded,
                mean: self.policy.penalty_perf,
                half_width: 0.0,
            });
        }
        // Aggregate: the strategy observes the mean of the per-run
        // objectives (the quantity the CI race reasoned about); the
        // pooled report/profile carry the bookkeeping.
        let report = RunReport::average(&state.reports);
        let profile = Profile::average(&state.profiles);
        self.shards[Self::shard_of(&key)]
            .lock()
            .insert(key.clone(), Slot::Ready(report, mean));
        self.race_meta
            .lock()
            .insert(key.clone(), (samples, state.perfs.m2));
        *self.charged_cost_s.lock() += report.elapsed_s;
        let eval = self.charge_miss(config, &key, report, mean, &profile);
        Some(RaceOutcome {
            perf: mean,
            cost_s: eval.cost_s,
            samples,
            topups,
            discarded,
            mean,
            half_width: half,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tunio_iosim::Simulator;
    use tunio_params::ParameterSpace;
    use tunio_workloads::{hacc, Variant, Workload};

    fn engine() -> EvalEngine {
        EvalEngine::new(
            Simulator::cori_4node(1),
            Workload::new(hacc(), Variant::Kernel),
            ParameterSpace::tunio_default(),
            3,
        )
    }

    #[test]
    fn evaluation_produces_positive_perf_and_cost() {
        let ev = engine();
        let cfg = ev.space.default_config();
        let e = ev.evaluate(&cfg);
        assert!(e.perf > 0.0);
        assert!(e.cost_s > 0.0);
        assert_eq!(ev.evaluations(), 1);
    }

    #[test]
    fn repeat_evaluations_are_memoized_and_free() {
        let ev = engine();
        let cfg = ev.space.default_config();
        let first = ev.evaluate(&cfg);
        let second = ev.evaluate(&cfg);
        assert_eq!(first.perf, second.perf);
        assert_eq!(second.cost_s, 0.0, "memoized evaluation must cost nothing");
        assert_eq!(ev.evaluations(), 1);
        assert_eq!(ev.cache_hits(), 1);
    }

    #[test]
    fn different_configs_differ_in_perf() {
        let ev = engine();
        let default = ev.evaluate(&ev.space.default_config().clone());
        let mut tuned_cfg = ev.space.default_config();
        tuned_cfg.set_gene(tunio_params::ParamId::CollectiveIo, 1);
        tuned_cfg.set_gene(tunio_params::ParamId::StripingFactor, 9);
        let tuned = ev.evaluate(&tuned_cfg);
        assert!(tuned.perf != default.perf);
    }

    #[test]
    fn cost_counts_single_run_not_repeats() {
        // Averaging 3 runs must not triple the charged cost.
        let mut ev1 = engine();
        ev1.repeats = 1;
        let ev3 = engine();
        let cfg = ev1.space.default_config();
        let c1 = ev1.evaluate(&cfg).cost_s;
        let c3 = ev3.evaluate(&cfg).cost_s;
        assert!(
            (c3 - c1).abs() / c1 < 0.2,
            "3-run cost {c3} should be ~1-run cost {c1}"
        );
    }

    #[test]
    fn batch_matches_serial_evaluation_bitwise() {
        let space = ParameterSpace::tunio_default();
        let mut configs = vec![space.default_config()];
        for v in [1usize, 3, 5] {
            let mut c = space.default_config();
            c.set_gene(tunio_params::ParamId::StripingFactor, v);
            configs.push(c);
        }
        // Duplicate an earlier entry to exercise within-batch dedup.
        configs.push(configs[1].clone());

        let batch = engine().evaluate_batch(&configs);
        let serial_engine = engine();
        let serial: Vec<Evaluation> = configs.iter().map(|c| serial_engine.evaluate(c)).collect();

        assert_eq!(batch.len(), serial.len());
        for (b, s) in batch.iter().zip(&serial) {
            assert_eq!(b.perf, s.perf, "perf must be bitwise identical");
            assert_eq!(b.report, s.report, "reports must be bitwise identical");
            assert_eq!(b.cost_s, s.cost_s, "cost accounting must match serial");
        }
    }

    #[test]
    fn batch_dedups_and_charges_only_first_occurrence() {
        let ev = engine();
        let cfg = ev.space.default_config();
        let batch = ev.evaluate_batch(&[cfg.clone(), cfg.clone(), cfg]);
        assert_eq!(ev.evaluations(), 1, "one unique key, one simulation");
        assert_eq!(ev.cache_hits(), 2);
        assert!(batch[0].cost_s > 0.0);
        assert_eq!(batch[1].cost_s, 0.0);
        assert_eq!(batch[2].cost_s, 0.0);
    }

    #[test]
    fn counters_track_charged_cost_and_wall_time() {
        let ev = engine();
        let cfg = ev.space.default_config();
        let e = ev.evaluate(&cfg);
        ev.evaluate(&cfg);
        let c = ev.counters();
        assert_eq!(c.evaluations, 1);
        assert_eq!(c.cache_hits, 1);
        assert_eq!(c.charged_cost_s, e.cost_s);
        assert!(c.sim_wall_s > 0.0);
    }

    /// Regression test for the shard-lock contention bug: `evaluate`
    /// used to hold the shard mutex across the entire simulation, so an
    /// unrelated key colliding on the same shard serialized behind a
    /// full multi-run simulation. Blocks key A *inside* the simulator
    /// via the test gate, then requires a different same-shard key B to
    /// complete while A is still simulating.
    #[test]
    fn different_keys_on_same_shard_do_not_serialize() {
        use std::sync::mpsc;
        use std::time::Duration;

        let ev = engine();
        let a = ev.space.default_config();
        let a_key = a.genes().to_vec();
        let shard = EvalEngine::shard_of(&a_key);

        // Find a second configuration with a different key on A's shard.
        let mut b = None;
        'outer: for p in tunio_params::ParamId::ALL {
            for v in 0..ev.space.cardinality(p) {
                let mut c = ev.space.default_config();
                c.set_gene(p, v);
                if c.genes() != a_key.as_slice() && EvalEngine::shard_of(c.genes()) == shard {
                    b = Some(c);
                    break 'outer;
                }
            }
        }
        let b = b.expect("some single-gene mutant shares the default's shard");

        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = std::sync::Mutex::new(release_rx);
        let gate_key = a_key.clone();
        *ev.sim_gate.0.lock().unwrap() = Some(Arc::new(move |key: &[usize]| {
            if key == gate_key.as_slice() {
                entered_tx.send(()).expect("test alive");
                release_rx.lock().unwrap().recv().expect("release signal");
            }
        }));

        std::thread::scope(|s| {
            let ta = s.spawn(|| ev.evaluate(&a));
            // A is now mid-simulation with its in-flight marker planted.
            entered_rx.recv().expect("A entered the simulator");

            let (done_tx, done_rx) = mpsc::channel();
            let evr = &ev;
            let bb = b.clone();
            s.spawn(move || {
                done_tx.send(evr.evaluate(&bb).perf).ok();
            });
            let perf_b = done_rx.recv_timeout(Duration::from_secs(30)).expect(
                "different-key evaluation on the same shard must proceed \
                 while another key's simulation is in flight",
            );
            assert!(perf_b > 0.0);

            release_tx.send(()).expect("release A");
            assert!(ta.join().unwrap().perf > 0.0);
        });
        assert_eq!(ev.evaluations(), 2, "both keys simulated exactly once");
        assert_eq!(ev.cache_hits(), 0);
    }

    #[test]
    fn profile_accumulates_only_charged_evaluations() {
        let ev = engine();
        let cfg = ev.space.default_config();
        assert_eq!(ev.profile_snapshot(), tunio_iosim::Profile::new());
        ev.evaluate(&cfg);
        let after_one = ev.profile_snapshot();
        let total = after_one.total_time_s();
        assert!(total > 0.0);
        // The accumulated layer self times reconstruct the charged cost.
        let c = ev.counters();
        assert!(
            (total - c.charged_cost_s).abs() < 1e-9 * c.charged_cost_s,
            "profile total {total} vs charged {}",
            c.charged_cost_s
        );
        // Cache hits charge nothing and add nothing to the profile.
        ev.evaluate(&cfg);
        assert_eq!(ev.profile_snapshot(), after_one);
    }

    #[test]
    fn batch_profile_matches_serial_profile() {
        let space = ParameterSpace::tunio_default();
        let mut configs = vec![space.default_config()];
        for v in [1usize, 3, 5] {
            let mut c = space.default_config();
            c.set_gene(tunio_params::ParamId::StripingFactor, v);
            configs.push(c);
        }
        configs.push(configs[2].clone()); // duplicate: charged once

        let batch_engine = engine();
        batch_engine.evaluate_batch(&configs);
        let serial_engine = engine();
        for c in &configs {
            serial_engine.evaluate(c);
        }
        assert_eq!(
            batch_engine.profile_snapshot(),
            serial_engine.profile_snapshot(),
            "accumulated profiles must be bitwise identical to serial order"
        );
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        let ev = engine();
        let cfg = ev.space.default_config();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| ev.evaluate(&cfg));
            }
        });
        assert_eq!(
            ev.evaluations(),
            1,
            "concurrent duplicates must simulate once"
        );
        assert_eq!(ev.cache_hits(), 3);
    }

    use tunio_iosim::FaultPlan;

    fn engine_with_plan(plan: FaultPlan) -> EvalEngine {
        EvalEngine::new(
            Simulator::cori_4node(1).with_fault_plan(plan),
            Workload::new(hacc(), Variant::Kernel),
            ParameterSpace::tunio_default(),
            3,
        )
    }

    fn mutant_batch(space: &ParameterSpace, n: usize) -> Vec<Configuration> {
        let mut configs = vec![space.default_config()];
        for v in 0..n {
            let mut c = space.default_config();
            c.set_gene(
                tunio_params::ParamId::StripingFactor,
                v % space.cardinality(tunio_params::ParamId::StripingFactor),
            );
            c.set_gene(
                tunio_params::ParamId::CollectiveIo,
                (v / 3) % space.cardinality(tunio_params::ParamId::CollectiveIo),
            );
            configs.push(c);
        }
        configs
    }

    #[test]
    fn inert_fault_plan_is_bitwise_invisible() {
        let configs = mutant_batch(&ParameterSpace::tunio_default(), 6);
        let plain = engine();
        let armed = engine_with_plan(FaultPlan::disabled(99));
        let a = plain.evaluate_batch(&configs);
        let b = armed.evaluate_batch(&configs);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.perf, y.perf);
            assert_eq!(x.report, y.report);
            assert_eq!(x.cost_s, y.cost_s);
        }
        assert_eq!(plain.counters(), {
            let mut c = armed.counters();
            // Wall time is real time and legitimately differs.
            c.sim_wall_s = plain.counters().sim_wall_s;
            c
        });
        assert_eq!(plain.profile_snapshot(), armed.profile_snapshot());
        let r = armed.resilience();
        assert_eq!(r, ResilienceCounters::default());
    }

    #[test]
    fn transient_faults_are_retried_to_success() {
        let ev = engine_with_plan(FaultPlan::chaos(7, 0.2)).with_policy(FailurePolicy {
            max_retries: 10,
            quarantine_after: 100,
            ..FailurePolicy::default()
        });
        let configs = mutant_batch(&ev.space.clone(), 12);
        let out = ev.evaluate_batch(&configs);
        let r = ev.resilience();
        assert!(r.faults_injected > 0, "chaos plan must fire at this rate");
        assert!(r.retries > 0, "some attempt must have been retried");
        assert_eq!(
            r.failed_evaluations, 0,
            "10 retries at 20% chaos must recover every key"
        );
        for e in &out {
            assert!(e.perf > 0.0, "retried evaluations recover real results");
            assert!(e.report.is_sane());
        }
    }

    #[test]
    fn always_fatal_key_is_quarantined_and_served_penalty() {
        let plan = FaultPlan {
            transient_rate: 1.0,
            ..FaultPlan::disabled(5)
        };
        let ev = engine_with_plan(plan).with_policy(FailurePolicy {
            max_retries: 1,
            quarantine_after: 2,
            ..FailurePolicy::default()
        });
        let cfg = ev.space.default_config();

        let first = ev.evaluate(&cfg);
        assert_eq!(first.perf, ev.policy.penalty_perf);
        assert_eq!(first.report, RunReport::default());
        assert_eq!(ev.resilience().failed_evaluations, 1);
        assert_eq!(ev.resilience().quarantined_keys, 0);

        let second = ev.evaluate(&cfg);
        assert_eq!(second.perf, ev.policy.penalty_perf);
        let r = ev.resilience();
        assert_eq!(r.failed_evaluations, 2);
        assert_eq!(r.quarantined_keys, 1, "breaker opens after 2 consecutive");
        assert_eq!(r.retries, 2, "one retry per evaluation");

        // Quarantined: the penalty is served without touching the simulator.
        let faults_before = ev.resilience().faults_injected;
        let third = ev.evaluate(&cfg);
        assert_eq!(third.perf, ev.policy.penalty_perf);
        assert_eq!(third.cost_s, 0.0);
        assert_eq!(ev.resilience().faults_injected, faults_before);
        assert_eq!(ev.resilience().penalties_served, 3);
        assert_eq!(ev.evaluations(), 0, "nothing was ever charged");

        // Batches serve the open breaker the same way.
        let batch = ev.evaluate_batch(&[cfg.clone(), cfg]);
        assert!(batch.iter().all(|e| e.perf == ev.policy.penalty_perf));
        assert_eq!(ev.resilience().faults_injected, faults_before);
    }

    #[test]
    fn corrupt_reports_never_become_results() {
        // Every run's report reads NaN; the sanity gate must reject them
        // all, so nothing NaN ever escapes the engine.
        let plan = FaultPlan {
            corrupt_rate: 1.0,
            ..FaultPlan::disabled(17)
        };
        let ev = engine_with_plan(plan);
        let configs = mutant_batch(&ev.space.clone(), 4);
        for e in ev.evaluate_batch(&configs) {
            assert!(e.perf.is_finite(), "NaN must never escape: {}", e.perf);
            assert_eq!(e.perf, ev.policy.penalty_perf);
            assert!(e.report.is_sane(), "penalty report is the zero report");
        }
        assert!(ev.resilience().failed_evaluations > 0);
        assert_eq!(ev.evaluations(), 0);
    }

    #[test]
    fn journal_preload_replays_bitwise_identically() {
        let configs = mutant_batch(&ParameterSpace::tunio_default(), 6);

        let live = engine();
        live.enable_journal();
        let live_out = live.evaluate_batch(&configs);
        let entries = live.drain_journal();
        assert_eq!(entries.len() as u64, live.evaluations());
        assert!(live.drain_journal().is_empty(), "drain takes everything");

        let resumed = engine();
        resumed.preload(entries);
        let resumed_out = resumed.evaluate_batch(&configs);

        for (a, b) in live_out.iter().zip(&resumed_out) {
            assert_eq!(a.perf, b.perf);
            assert_eq!(a.report, b.report);
            assert_eq!(a.cost_s, b.cost_s, "replay must charge like a miss");
        }
        let (cl, cr) = (live.counters(), resumed.counters());
        assert_eq!(cl.evaluations, cr.evaluations);
        assert_eq!(cl.cache_hits, cr.cache_hits);
        assert_eq!(cl.charged_cost_s, cr.charged_cost_s);
        assert_eq!(
            cr.sim_wall_s, 0.0,
            "a fully replayed batch never runs the simulator"
        );
        assert_eq!(
            live.profile_snapshot(),
            resumed.profile_snapshot(),
            "replayed profile accumulator must be bitwise identical"
        );
    }

    /// Regression test for the old `.expect("key was cached before the
    /// batch")` panic: if a cached entry is evicted between a batch's
    /// classification and its assembly, the batch must recover by
    /// re-simulating instead of crashing.
    #[test]
    fn batch_survives_eviction_between_classification_and_assembly() {
        use std::sync::mpsc;

        let ev = engine();
        let cached = ev.space.default_config();
        let cached_key = cached.genes().to_vec();
        let first = ev.evaluate(&cached);

        let mut fresh_cfg = ev.space.default_config();
        fresh_cfg.set_gene(tunio_params::ParamId::StripingFactor, 5);
        let fresh_key = fresh_cfg.genes().to_vec();

        let (hit_tx, hit_rx) = mpsc::channel::<()>();
        let (go_tx, go_rx) = mpsc::channel::<()>();
        let go_rx = std::sync::Mutex::new(go_rx);
        *ev.sim_gate.0.lock().unwrap() = Some(Arc::new(move |key: &[usize]| {
            if key == fresh_key.as_slice() {
                hit_tx.send(()).ok();
                go_rx.lock().unwrap().recv().ok();
            }
        }));

        std::thread::scope(|s| {
            let evr = &ev;
            let cached_key = cached_key.clone();
            s.spawn(move || {
                // While the batch is mid-parallel-phase (after it classified
                // `cached` as already Ready), evict that entry.
                hit_rx.recv().expect("fresh key entered the simulator");
                evr.evict(&cached_key);
                go_tx.send(()).expect("resume the batch");
            });
            let out = ev.evaluate_batch(&[cached.clone(), fresh_cfg.clone()]);
            assert_eq!(
                out[0].perf, first.perf,
                "eviction recovery must re-simulate to the same result"
            );
            assert!(out[1].perf > 0.0);
        });
        assert_eq!(
            ev.evaluations(),
            3,
            "original + fresh + the re-simulation that replaced the eviction"
        );
    }

    /// A panicking evaluation thread must not wedge the campaign: the
    /// in-flight marker is cleaned up on unwind and any waiters receive
    /// the penalty value instead of blocking forever.
    #[test]
    fn panicking_evaluation_does_not_wedge_waiters() {
        use std::sync::atomic::AtomicBool;
        use std::sync::mpsc;

        let ev = engine();
        let cfg = ev.space.default_config();
        let key = cfg.genes().to_vec();

        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = std::sync::Mutex::new(release_rx);
        let panic_once = AtomicBool::new(true);
        let gate_key = key.clone();
        *ev.sim_gate.0.lock().unwrap() = Some(Arc::new(move |k: &[usize]| {
            if k == gate_key.as_slice() && panic_once.swap(false, Ordering::SeqCst) {
                entered_tx.send(()).ok();
                release_rx.lock().unwrap().recv().ok();
                panic!("injected evaluation panic");
            }
        }));

        let inflight = std::thread::scope(|s| {
            let ta = s.spawn(|| ev.evaluate(&cfg));
            entered_rx.recv().expect("evaluation entered the simulator");
            // Capture the pending marker exactly as a concurrent waiter
            // would see it, then let the evaluation thread panic.
            let inflight = {
                let shard = ev.shards[EvalEngine::shard_of(&key)].lock();
                match shard.get(key.as_slice()) {
                    Some(Slot::Pending(i)) => i.clone(),
                    other => panic!("expected a pending marker, got {other:?}"),
                }
            };
            release_tx.send(()).expect("release the gated thread");
            assert!(ta.join().is_err(), "the evaluation must have panicked");
            inflight
        });

        // The unwind published the penalty, so a waiter returns instantly
        // instead of blocking forever on the condvar.
        let (report, perf) = inflight.wait();
        assert_eq!(perf, ev.policy.penalty_perf);
        assert_eq!(report, RunReport::default());

        // And the marker is gone, so the key recovers on the next call.
        assert!(ev.shards[EvalEngine::shard_of(&key)]
            .lock()
            .get(key.as_slice())
            .is_none());
        let again = ev.evaluate(&cfg);
        assert!(again.perf > 0.0, "key must be evaluable after the panic");
    }
}
