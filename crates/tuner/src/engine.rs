//! Parallel, deterministic configuration evaluation.
//!
//! [`EvalEngine`] replaces the original single-threaded `Evaluator`: it
//! evaluates whole batches of configurations concurrently (one rayon task
//! per cache-missing configuration) behind a sharded, lock-protected memo
//! cache, while producing results that are **bitwise identical** to a
//! serial evaluation in batch order, regardless of thread count or
//! completion order.
//!
//! Determinism rests on three properties:
//!
//! 1. **Pure simulation.** [`Simulator::run`] derives its noise stream
//!    from `(simulator seed, configuration fingerprint, run index)` — see
//!    `tunio_iosim::noise` — so a configuration's report is a pure
//!    function of `(sim, config, repeats)`. Nothing about scheduling can
//!    change it.
//! 2. **Ordered assembly.** [`EvalEngine::evaluate_batch`] returns results
//!    in input order (the shim rayon's indexed `collect` preserves order,
//!    as real rayon's does), and all counter/cost bookkeeping happens in
//!    that order after the parallel section.
//! 3. **Serial-equivalent cost accounting.** Within a batch, the *first*
//!    occurrence of an uncached gene key is charged one run's elapsed
//!    time; later duplicates and cache hits are free — exactly what a
//!    serial memoized loop over the same batch would charge.
//!
//! The engine also keeps counters ([`EvalCounters`]) separating the
//! *simulated* tuning cost charged to the budget from the *real* wall
//! time spent inside the simulator, for the bench binaries.

use parking_lot::Mutex;
use rayon::prelude::*;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Instant;
use tunio_iosim::{noise, Layer, Profile, RunReport, Simulator};
use tunio_params::{Configuration, ParameterSpace};
use tunio_trace as trace;
use tunio_workloads::Workload;

/// Result of evaluating one configuration.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The evaluated configuration.
    pub config: Configuration,
    /// Averaged run report (over `repeats` runs).
    pub report: RunReport,
    /// The tuning objective `perf` in bytes/s.
    pub perf: f64,
    /// Time charged to the tuning budget for this evaluation, seconds.
    /// Zero for memoized repeats; otherwise one run's elapsed time (§IV:
    /// extra runs for averaging are "a necessary expense for a given
    /// platform" and not accumulated).
    pub cost_s: f64,
}

/// Engine counters: how much work was done and what it cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct EvalCounters {
    /// Simulator evaluations actually performed (cache misses).
    pub evaluations: u64,
    /// Memoized lookups served (including within-batch duplicates).
    pub cache_hits: u64,
    /// Simulated tuning time charged to the budget, seconds.
    pub charged_cost_s: f64,
    /// Real wall time spent inside the simulator, seconds. With more
    /// than one worker this is the *sum* across threads, so it can
    /// exceed elapsed time; compare against it to measure speedup.
    pub sim_wall_s: f64,
}

/// Number of cache shards; keys are spread by gene-vector fingerprint.
const SHARDS: usize = 16;

/// Rendezvous point for concurrent evaluations of the same gene key:
/// the first caller simulates, everyone else blocks here — *without*
/// holding the shard lock — until the result is published.
#[derive(Debug, Default)]
struct InFlight {
    result: StdMutex<Option<(RunReport, f64)>>,
    ready: Condvar,
}

impl InFlight {
    fn wait(&self) -> (RunReport, f64) {
        let mut guard = self.result.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(v) = *guard {
                return v;
            }
            guard = self.ready.wait(guard).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn publish(&self, value: (RunReport, f64)) {
        *self.result.lock().unwrap_or_else(|p| p.into_inner()) = Some(value);
        self.ready.notify_all();
    }
}

/// One cache entry: a finished result, or a marker that some thread is
/// currently simulating this key.
#[derive(Debug)]
enum Slot {
    Ready(RunReport, f64),
    Pending(Arc<InFlight>),
}

type Shard = Mutex<HashMap<Vec<usize>, Slot>>;

/// What [`EvalEngine::evaluate`] found when it claimed a key.
enum Claim {
    /// Cached result, served immediately.
    Hit(RunReport, f64),
    /// Another thread is simulating this key; wait on its guard.
    Join(Arc<InFlight>),
    /// This thread inserted the pending marker and must simulate.
    Claimed(Arc<InFlight>),
}

/// Thread-safe, memoizing configuration evaluator.
///
/// All methods take `&self`; the engine can be shared freely across
/// threads. Prefer [`EvalEngine::evaluate_batch`] for a generation's
/// population — it deduplicates, fans the cache misses out across rayon
/// workers, and reassembles results in input order.
#[derive(Debug)]
pub struct EvalEngine {
    /// The simulated machine.
    pub sim: Simulator,
    /// The application (or kernel) under tuning.
    pub workload: Workload,
    /// The tuning space.
    pub space: ParameterSpace,
    /// Runs averaged per evaluation (the paper uses 3).
    pub repeats: u32,
    shards: [Shard; SHARDS],
    evaluations: AtomicU64,
    cache_hits: AtomicU64,
    sim_wall_ns: AtomicU64,
    charged_cost_s: Mutex<f64>,
    profile: Mutex<Profile>,
    m_hits: trace::Counter,
    m_misses: trace::Counter,
    m_cost: trace::Histogram,
    m_layer_self: Vec<trace::Histogram>,
    #[cfg(test)]
    sim_gate: SimGate,
}

/// Callback installed into a [`SimGate`].
#[cfg(test)]
type GateFn = Arc<dyn Fn(&[usize]) + Send + Sync>;

/// Test hook: lets unit tests block inside [`EvalEngine::simulate`] to
/// prove that concurrent evaluations of *different* keys do not
/// serialize behind one another.
#[cfg(test)]
#[derive(Default)]
struct SimGate(StdMutex<Option<GateFn>>);

#[cfg(test)]
impl std::fmt::Debug for SimGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SimGate")
    }
}

impl EvalEngine {
    /// Create an engine; `repeats` follows the paper's 3-run averaging.
    pub fn new(sim: Simulator, workload: Workload, space: ParameterSpace, repeats: u32) -> Self {
        EvalEngine {
            sim,
            workload,
            space,
            repeats: repeats.max(1),
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            evaluations: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            sim_wall_ns: AtomicU64::new(0),
            charged_cost_s: Mutex::new(0.0),
            profile: Mutex::new(Profile::new()),
            m_hits: trace::counter("tunio.eval.cache_hits"),
            m_misses: trace::counter("tunio.eval.evaluations"),
            m_cost: trace::histogram("tunio.eval.cost_s"),
            m_layer_self: Layer::ALL
                .iter()
                .map(|l| trace::labeled_histogram("tunio.profile.self_s", &[("layer", l.as_str())]))
                .collect(),
            #[cfg(test)]
            sim_gate: SimGate::default(),
        }
    }

    fn shard_of(key: &[usize]) -> usize {
        (noise::fingerprint(key) % SHARDS as u64) as usize
    }

    /// Run the simulator for one configuration (no cache involvement).
    /// Pure in `(sim, config, repeats)`; see the module docs. Also returns
    /// the averaged per-layer cost [`Profile`]; the caller absorbs it into
    /// the engine accumulator at the (serial) point where the evaluation's
    /// cost is charged, keeping the accumulated profile deterministic.
    fn simulate(&self, config: &Configuration) -> (RunReport, Profile, f64) {
        #[cfg(test)]
        {
            let gate = self
                .sim_gate
                .0
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .clone();
            if let Some(gate) = gate {
                gate(config.genes());
            }
        }
        let mut span = trace::span("eval.simulate", vec![("repeats", self.repeats.into())]);
        let t0 = Instant::now();
        let phases = self.workload.phases();
        let stack = config.resolve(&self.space);
        let (report, profile) = self
            .sim
            .run_averaged_profiled(&phases, &stack, self.repeats);
        self.sim_wall_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        span.add_field("perf", report.perf().into());
        span.add_field("cost_s", report.elapsed_s.into());
        (report, profile, report.perf())
    }

    /// Fold one charged evaluation's profile into the engine accumulator
    /// and the per-layer self-time histograms. Called only from serial
    /// accounting sections, in batch input order, so the float sums in
    /// the accumulated profile are deterministic.
    fn charge_profile(&self, profile: &Profile) {
        for (layer, stat) in profile.iter() {
            self.m_layer_self[layer as usize].record(stat.self_s);
        }
        self.profile.lock().absorb(profile);
    }

    /// Look the key up; if some thread is mid-simulation on it, wait for
    /// that result instead of recomputing.
    fn lookup_or_wait(&self, key: &[usize]) -> Option<(RunReport, f64)> {
        let found = {
            let shard = self.shards[Self::shard_of(key)].lock();
            match shard.get(key) {
                Some(Slot::Ready(report, perf)) => return Some((*report, *perf)),
                Some(Slot::Pending(inflight)) => Some(inflight.clone()),
                None => None,
            }
        };
        found.map(|inflight| inflight.wait())
    }

    /// Evaluate a single configuration (memoized).
    ///
    /// A miss claims the key with an in-flight marker and releases the
    /// shard lock *before* simulating, so only callers presenting the
    /// **same** gene key wait for each other; different keys that happen
    /// to collide on a shard proceed in parallel. Each unique key is
    /// still simulated at most once.
    pub fn evaluate(&self, config: &Configuration) -> Evaluation {
        let key = config.genes().to_vec();
        let shard_idx = Self::shard_of(&key);

        let claim = {
            let mut shard = self.shards[shard_idx].lock();
            match shard.get(&key) {
                Some(Slot::Ready(report, perf)) => Claim::Hit(*report, *perf),
                Some(Slot::Pending(inflight)) => Claim::Join(inflight.clone()),
                None => {
                    let inflight = Arc::new(InFlight::default());
                    shard.insert(key.clone(), Slot::Pending(inflight.clone()));
                    Claim::Claimed(inflight)
                }
            }
        }; // shard lock released here, before any simulation

        let (report, perf) = match claim {
            Claim::Hit(report, perf) => (report, perf),
            Claim::Join(inflight) => inflight.wait(),
            Claim::Claimed(inflight) => {
                let (report, profile, perf) = self.simulate(config);
                self.shards[shard_idx]
                    .lock()
                    .insert(key, Slot::Ready(report, perf));
                inflight.publish((report, perf));
                self.evaluations.fetch_add(1, Ordering::Relaxed);
                self.m_misses.inc(1);
                self.m_cost.record(report.elapsed_s);
                self.charge_profile(&profile);
                *self.charged_cost_s.lock() += report.elapsed_s;
                return Evaluation {
                    config: config.clone(),
                    report,
                    perf,
                    cost_s: report.elapsed_s,
                };
            }
        };
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
        self.m_hits.inc(1);
        Evaluation {
            config: config.clone(),
            report,
            perf,
            cost_s: 0.0,
        }
    }

    /// Evaluate a batch of configurations, simulating cache misses in
    /// parallel. Results come back in input order and are bitwise
    /// identical to evaluating the batch serially in that order:
    /// the first occurrence of each uncached gene key is charged one
    /// run's elapsed time, everything else costs zero.
    pub fn evaluate_batch(&self, configs: &[Configuration]) -> Vec<Evaluation> {
        let keys: Vec<Vec<usize>> = configs.iter().map(|c| c.genes().to_vec()).collect();

        // First occurrence of each gene key not already cached: the only
        // configurations that need the simulator.
        let mut seen: HashMap<&[usize], usize> = HashMap::with_capacity(configs.len());
        let mut fresh: Vec<usize> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            if seen.contains_key(key.as_slice()) {
                continue;
            }
            seen.insert(key, i);
            let cached = self.shards[Self::shard_of(key)].lock().contains_key(key);
            if !cached {
                fresh.push(i);
            }
        }

        // Fan the misses out; order-preserving collect keeps sims[j]
        // aligned with fresh[j].
        let sims: Vec<(RunReport, Profile, f64)> = fresh
            .par_iter()
            .map(|&i| self.simulate(&configs[i]))
            .collect();

        // Publish results and do all bookkeeping in input order.
        let fresh_results: HashMap<&[usize], (RunReport, f64)> = fresh
            .iter()
            .zip(&sims)
            .map(|(&i, (report, _, perf))| {
                self.shards[Self::shard_of(&keys[i])]
                    .lock()
                    .insert(keys[i].clone(), Slot::Ready(*report, *perf));
                (keys[i].as_slice(), (*report, *perf))
            })
            .collect();

        let mut out = Vec::with_capacity(configs.len());
        let mut charged = 0.0;
        for (i, config) in configs.iter().enumerate() {
            let key = keys[i].as_slice();
            let (report, perf) = match fresh_results.get(key) {
                Some(&rp) => rp,
                None => self
                    .lookup_or_wait(key)
                    .expect("key was cached before the batch"),
            };
            let charged_here = fresh.binary_search(&i);
            let cost_s = if let Ok(j) = charged_here {
                self.evaluations.fetch_add(1, Ordering::Relaxed);
                self.m_misses.inc(1);
                self.m_cost.record(report.elapsed_s);
                self.charge_profile(&sims[j].1);
                charged += report.elapsed_s;
                report.elapsed_s
            } else {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                self.m_hits.inc(1);
                0.0
            };
            out.push(Evaluation {
                config: config.clone(),
                report,
                perf,
                cost_s,
            });
        }
        *self.charged_cost_s.lock() += charged;
        out
    }

    /// Number of simulator evaluations actually performed (cache misses).
    pub fn evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }

    /// Number of memoized lookups served.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Snapshot the accumulated per-layer cost profile: the pooled
    /// attribution of every *charged* evaluation (first occurrence of
    /// each unique configuration). Its total time tracks
    /// [`EvalCounters::charged_cost_s`].
    pub fn profile_snapshot(&self) -> Profile {
        self.profile.lock().clone()
    }

    /// Snapshot all counters.
    pub fn counters(&self) -> EvalCounters {
        EvalCounters {
            evaluations: self.evaluations(),
            cache_hits: self.cache_hits(),
            charged_cost_s: *self.charged_cost_s.lock(),
            sim_wall_s: self.sim_wall_ns.load(Ordering::Relaxed) as f64 / 1e9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tunio_iosim::Simulator;
    use tunio_params::ParameterSpace;
    use tunio_workloads::{hacc, Variant, Workload};

    fn engine() -> EvalEngine {
        EvalEngine::new(
            Simulator::cori_4node(1),
            Workload::new(hacc(), Variant::Kernel),
            ParameterSpace::tunio_default(),
            3,
        )
    }

    #[test]
    fn evaluation_produces_positive_perf_and_cost() {
        let ev = engine();
        let cfg = ev.space.default_config();
        let e = ev.evaluate(&cfg);
        assert!(e.perf > 0.0);
        assert!(e.cost_s > 0.0);
        assert_eq!(ev.evaluations(), 1);
    }

    #[test]
    fn repeat_evaluations_are_memoized_and_free() {
        let ev = engine();
        let cfg = ev.space.default_config();
        let first = ev.evaluate(&cfg);
        let second = ev.evaluate(&cfg);
        assert_eq!(first.perf, second.perf);
        assert_eq!(second.cost_s, 0.0, "memoized evaluation must cost nothing");
        assert_eq!(ev.evaluations(), 1);
        assert_eq!(ev.cache_hits(), 1);
    }

    #[test]
    fn different_configs_differ_in_perf() {
        let ev = engine();
        let default = ev.evaluate(&ev.space.default_config().clone());
        let mut tuned_cfg = ev.space.default_config();
        tuned_cfg.set_gene(tunio_params::ParamId::CollectiveIo, 1);
        tuned_cfg.set_gene(tunio_params::ParamId::StripingFactor, 9);
        let tuned = ev.evaluate(&tuned_cfg);
        assert!(tuned.perf != default.perf);
    }

    #[test]
    fn cost_counts_single_run_not_repeats() {
        // Averaging 3 runs must not triple the charged cost.
        let mut ev1 = engine();
        ev1.repeats = 1;
        let ev3 = engine();
        let cfg = ev1.space.default_config();
        let c1 = ev1.evaluate(&cfg).cost_s;
        let c3 = ev3.evaluate(&cfg).cost_s;
        assert!(
            (c3 - c1).abs() / c1 < 0.2,
            "3-run cost {c3} should be ~1-run cost {c1}"
        );
    }

    #[test]
    fn batch_matches_serial_evaluation_bitwise() {
        let space = ParameterSpace::tunio_default();
        let mut configs = vec![space.default_config()];
        for v in [1usize, 3, 5] {
            let mut c = space.default_config();
            c.set_gene(tunio_params::ParamId::StripingFactor, v);
            configs.push(c);
        }
        // Duplicate an earlier entry to exercise within-batch dedup.
        configs.push(configs[1].clone());

        let batch = engine().evaluate_batch(&configs);
        let serial_engine = engine();
        let serial: Vec<Evaluation> = configs.iter().map(|c| serial_engine.evaluate(c)).collect();

        assert_eq!(batch.len(), serial.len());
        for (b, s) in batch.iter().zip(&serial) {
            assert_eq!(b.perf, s.perf, "perf must be bitwise identical");
            assert_eq!(b.report, s.report, "reports must be bitwise identical");
            assert_eq!(b.cost_s, s.cost_s, "cost accounting must match serial");
        }
    }

    #[test]
    fn batch_dedups_and_charges_only_first_occurrence() {
        let ev = engine();
        let cfg = ev.space.default_config();
        let batch = ev.evaluate_batch(&[cfg.clone(), cfg.clone(), cfg]);
        assert_eq!(ev.evaluations(), 1, "one unique key, one simulation");
        assert_eq!(ev.cache_hits(), 2);
        assert!(batch[0].cost_s > 0.0);
        assert_eq!(batch[1].cost_s, 0.0);
        assert_eq!(batch[2].cost_s, 0.0);
    }

    #[test]
    fn counters_track_charged_cost_and_wall_time() {
        let ev = engine();
        let cfg = ev.space.default_config();
        let e = ev.evaluate(&cfg);
        ev.evaluate(&cfg);
        let c = ev.counters();
        assert_eq!(c.evaluations, 1);
        assert_eq!(c.cache_hits, 1);
        assert_eq!(c.charged_cost_s, e.cost_s);
        assert!(c.sim_wall_s > 0.0);
    }

    /// Regression test for the shard-lock contention bug: `evaluate`
    /// used to hold the shard mutex across the entire simulation, so an
    /// unrelated key colliding on the same shard serialized behind a
    /// full multi-run simulation. Blocks key A *inside* the simulator
    /// via the test gate, then requires a different same-shard key B to
    /// complete while A is still simulating.
    #[test]
    fn different_keys_on_same_shard_do_not_serialize() {
        use std::sync::mpsc;
        use std::time::Duration;

        let ev = engine();
        let a = ev.space.default_config();
        let a_key = a.genes().to_vec();
        let shard = EvalEngine::shard_of(&a_key);

        // Find a second configuration with a different key on A's shard.
        let mut b = None;
        'outer: for p in tunio_params::ParamId::ALL {
            for v in 0..ev.space.cardinality(p) {
                let mut c = ev.space.default_config();
                c.set_gene(p, v);
                if c.genes() != a_key.as_slice() && EvalEngine::shard_of(c.genes()) == shard {
                    b = Some(c);
                    break 'outer;
                }
            }
        }
        let b = b.expect("some single-gene mutant shares the default's shard");

        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = std::sync::Mutex::new(release_rx);
        let gate_key = a_key.clone();
        *ev.sim_gate.0.lock().unwrap() = Some(Arc::new(move |key: &[usize]| {
            if key == gate_key.as_slice() {
                entered_tx.send(()).expect("test alive");
                release_rx.lock().unwrap().recv().expect("release signal");
            }
        }));

        std::thread::scope(|s| {
            let ta = s.spawn(|| ev.evaluate(&a));
            // A is now mid-simulation with its in-flight marker planted.
            entered_rx.recv().expect("A entered the simulator");

            let (done_tx, done_rx) = mpsc::channel();
            let evr = &ev;
            let bb = b.clone();
            s.spawn(move || {
                done_tx.send(evr.evaluate(&bb).perf).ok();
            });
            let perf_b = done_rx.recv_timeout(Duration::from_secs(30)).expect(
                "different-key evaluation on the same shard must proceed \
                 while another key's simulation is in flight",
            );
            assert!(perf_b > 0.0);

            release_tx.send(()).expect("release A");
            assert!(ta.join().unwrap().perf > 0.0);
        });
        assert_eq!(ev.evaluations(), 2, "both keys simulated exactly once");
        assert_eq!(ev.cache_hits(), 0);
    }

    #[test]
    fn profile_accumulates_only_charged_evaluations() {
        let ev = engine();
        let cfg = ev.space.default_config();
        assert_eq!(ev.profile_snapshot(), tunio_iosim::Profile::new());
        ev.evaluate(&cfg);
        let after_one = ev.profile_snapshot();
        let total = after_one.total_time_s();
        assert!(total > 0.0);
        // The accumulated layer self times reconstruct the charged cost.
        let c = ev.counters();
        assert!(
            (total - c.charged_cost_s).abs() < 1e-9 * c.charged_cost_s,
            "profile total {total} vs charged {}",
            c.charged_cost_s
        );
        // Cache hits charge nothing and add nothing to the profile.
        ev.evaluate(&cfg);
        assert_eq!(ev.profile_snapshot(), after_one);
    }

    #[test]
    fn batch_profile_matches_serial_profile() {
        let space = ParameterSpace::tunio_default();
        let mut configs = vec![space.default_config()];
        for v in [1usize, 3, 5] {
            let mut c = space.default_config();
            c.set_gene(tunio_params::ParamId::StripingFactor, v);
            configs.push(c);
        }
        configs.push(configs[2].clone()); // duplicate: charged once

        let batch_engine = engine();
        batch_engine.evaluate_batch(&configs);
        let serial_engine = engine();
        for c in &configs {
            serial_engine.evaluate(c);
        }
        assert_eq!(
            batch_engine.profile_snapshot(),
            serial_engine.profile_snapshot(),
            "accumulated profiles must be bitwise identical to serial order"
        );
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        let ev = engine();
        let cfg = ev.space.default_config();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| ev.evaluate(&cfg));
            }
        });
        assert_eq!(
            ev.evaluations(),
            1,
            "concurrent duplicates must simulate once"
        );
        assert_eq!(ev.cache_hits(), 3);
    }
}
