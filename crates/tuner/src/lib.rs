//! # tunio-tuner — the genetic-algorithm tuning pipeline
//!
//! A from-scratch stand-in for the DEAP-driven HSTuner pipeline the paper
//! builds on: configurations are genomes over the twelve-parameter space,
//! evolved with tournament selection (size 3, best two carried forward as
//! parents — §III-A) and elitism (the best configuration found so far is
//! never lost).
//!
//! The pipeline is deliberately pluggable at the two points where TunIO
//! attaches (paper Fig 3):
//!
//! * [`subset::SubsetProvider`] — which parameters the genetic operators
//!   may touch this generation. HSTuner uses [`subset::AllParams`]; TunIO
//!   plugs in its Smart Configuration Generation agent.
//! * [`stoppers::Stopper`] — the termination condition. HSTuner variants
//!   use [`stoppers::NoStop`] / [`stoppers::HeuristicStop`]; TunIO plugs
//!   in its RL Early Stopping agent.
//!
//! [`engine::EvalEngine`] runs configurations on the simulated I/O stack
//! (averaging three runs, charging only one run's time to the tuning
//! budget, exactly as §IV's methodology describes), memoizes repeat
//! evaluations behind a sharded cache, and evaluates a generation's
//! cache misses in parallel while staying bitwise-deterministic (see the
//! module docs for the determinism argument). [`ga::GaTuner::run`]
//! produces a [`ga::TuningTrace`] — the per-iteration best-perf /
//! cumulative-cost series every figure in the paper's evaluation is
//! drawn from.

#![warn(missing_docs)]

pub mod bo;
pub mod engine;
pub mod ga;
pub mod racing;
pub mod scheduler;
pub mod search;
pub mod stoppers;
pub mod strategy;
pub mod subset;

pub use bo::{BoConfig, BoStrategy};
pub use engine::{
    CacheEntry, EvalCounters, EvalEngine, Evaluation, FailurePolicy, ResilienceCounters,
};
pub use ga::{
    CampaignObserver, Crossover, GaConfig, GaTuner, GenerationSnapshot, IterationRecord,
    NoObserver, TuningTrace,
};
pub use racing::{Moments, RaceDiscard, RaceOutcome, RacingConfig, RacingCounters};
pub use scheduler::{
    run_strategy, run_strategy_opts, Hooks, Job, Scheduler, SchedulerStats, StrategyRun,
};
pub use search::{HillClimb, RandomSearch};
pub use stoppers::{BudgetStop, HeuristicStop, MaxPerfStop, NoStop, Stopper};
pub use strategy::{sanitize, GaStrategy, LhsStrategy, RandomStrategy, SearchStrategy};
pub use subset::{AllParams, SubsetProvider};
