//! Parameter-subset selection hooks.
//!
//! Each generation, the genetic operators only touch a subset of the
//! parameter space. HSTuner touches everything ([`AllParams`]); TunIO's
//! Smart Configuration Generation component provides high-impact subsets
//! (implemented in the `tunio` crate against this trait).

use tunio_params::{ParamId, ParameterSpace};

/// Supplies the parameter subset the genetic operators may mutate in the
/// next generation, and receives feedback on the result.
pub trait SubsetProvider {
    /// Subset for generation `iteration` (1-based). Must be non-empty.
    fn next_subset(
        &mut self,
        iteration: u32,
        best_perf: f64,
        space: &ParameterSpace,
    ) -> Vec<ParamId>;

    /// Feedback after the generation ran: the subset used and the best
    /// perf achieved with it.
    fn feedback(&mut self, subset: &[ParamId], best_perf: f64);

    /// Display name for reports.
    fn name(&self) -> &'static str;
}

/// Tune every parameter every generation (the HSTuner behaviour).
#[derive(Debug, Clone, Default)]
pub struct AllParams;

impl SubsetProvider for AllParams {
    fn next_subset(
        &mut self,
        _iteration: u32,
        _best_perf: f64,
        _space: &ParameterSpace,
    ) -> Vec<ParamId> {
        ParamId::ALL.to_vec()
    }

    fn feedback(&mut self, _subset: &[ParamId], _best_perf: f64) {}

    fn name(&self) -> &'static str {
        "all-params"
    }
}

/// Tune a fixed subset (for ablations).
#[derive(Debug, Clone)]
pub struct FixedSubset {
    /// The parameters to tune.
    pub subset: Vec<ParamId>,
}

impl SubsetProvider for FixedSubset {
    fn next_subset(
        &mut self,
        _iteration: u32,
        _best_perf: f64,
        _space: &ParameterSpace,
    ) -> Vec<ParamId> {
        self.subset.clone()
    }

    fn feedback(&mut self, _subset: &[ParamId], _best_perf: f64) {}

    fn name(&self) -> &'static str {
        "fixed-subset"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_params_returns_full_space() {
        let space = ParameterSpace::tunio_default();
        let mut p = AllParams;
        assert_eq!(p.next_subset(1, 0.0, &space).len(), 12);
    }

    #[test]
    fn fixed_subset_is_stable() {
        let space = ParameterSpace::tunio_default();
        let mut p = FixedSubset {
            subset: vec![ParamId::StripingFactor, ParamId::CbNodes],
        };
        assert_eq!(p.next_subset(1, 0.0, &space).len(), 2);
        assert_eq!(p.next_subset(9, 5.0, &space).len(), 2);
    }
}
