//! Production-lifecycle viability analysis (Fig 12).
//!
//! Tuning pays off only when an application re-runs enough times: the
//! lifecycle time of a tuned application is `tune_time + n × tuned_runtime`
//! versus `n × untuned_runtime` without tuning. The *viability point* is
//! the execution count where tuning first wins; between two tuning methods
//! there may also be a crossover where a slower tune with a better final
//! configuration overtakes a faster tune.

use serde::Serialize;

/// One tuning method's lifecycle parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LifecycleModel {
    /// Time spent tuning, minutes.
    pub tune_minutes: f64,
    /// Runtime of one tuned production execution, minutes.
    pub tuned_runtime_min: f64,
}

impl LifecycleModel {
    /// Total lifecycle time after `executions` production runs, minutes.
    pub fn total_minutes(&self, executions: f64) -> f64 {
        self.tune_minutes + executions * self.tuned_runtime_min
    }

    /// Executions needed for this method to beat running untuned
    /// (`None` when the tuned runtime is not actually faster).
    pub fn viability_point(&self, untuned_runtime_min: f64) -> Option<f64> {
        let saving = untuned_runtime_min - self.tuned_runtime_min;
        if saving <= 0.0 {
            return None;
        }
        Some(self.tune_minutes / saving)
    }
}

/// Execution count where method `a` stops beating method `b` (i.e. their
/// lifecycle lines cross). `None` when the lines never cross for positive
/// executions (one dominates).
pub fn crossover(a: &LifecycleModel, b: &LifecycleModel) -> Option<f64> {
    let runtime_delta = a.tuned_runtime_min - b.tuned_runtime_min;
    let tune_delta = b.tune_minutes - a.tune_minutes;
    if runtime_delta.abs() < 1e-12 {
        return None;
    }
    let n = tune_delta / runtime_delta;
    if n > 0.0 {
        Some(n)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_time_is_affine_in_executions() {
        let m = LifecycleModel {
            tune_minutes: 100.0,
            tuned_runtime_min: 2.0,
        };
        assert_eq!(m.total_minutes(0.0), 100.0);
        assert_eq!(m.total_minutes(10.0), 120.0);
    }

    #[test]
    fn viability_point_matches_breakeven() {
        let m = LifecycleModel {
            tune_minutes: 403.0,
            tuned_runtime_min: 5.0,
        };
        // Saving 0.289 min per run → ~1394 executions to break even
        // (the paper's TunIO BD-CATS number).
        let untuned = 5.0 + 403.0 / 1394.0;
        let v = m.viability_point(untuned).unwrap();
        assert!((v - 1394.0).abs() / 1394.0 < 0.01, "viability {v}");
    }

    #[test]
    fn no_viability_when_tuning_does_not_help() {
        let m = LifecycleModel {
            tune_minutes: 10.0,
            tuned_runtime_min: 5.0,
        };
        assert!(m.viability_point(5.0).is_none());
        assert!(m.viability_point(4.0).is_none());
    }

    #[test]
    fn crossover_between_fast_and_thorough_tuning() {
        // Fast method: cheap tune, slightly slower tuned runtime.
        let fast = LifecycleModel {
            tune_minutes: 403.0,
            tuned_runtime_min: 5.0,
        };
        // Thorough method: expensive tune, slightly faster tuned runtime.
        let thorough = LifecycleModel {
            tune_minutes: 1560.0,
            tuned_runtime_min: 4.99971,
        };
        let n = crossover(&fast, &thorough).expect("lines must cross");
        // Fast wins until ~4e6 executions (paper: 3.99 million).
        assert!((3.0e6..6.0e6).contains(&n), "crossover at {n}");
        // Before the crossover the fast method's total is lower.
        assert!(fast.total_minutes(n * 0.5) < thorough.total_minutes(n * 0.5));
        assert!(fast.total_minutes(n * 2.0) > thorough.total_minutes(n * 2.0));
    }

    #[test]
    fn identical_runtimes_never_cross() {
        let a = LifecycleModel {
            tune_minutes: 1.0,
            tuned_runtime_min: 2.0,
        };
        let b = LifecycleModel {
            tune_minutes: 5.0,
            tuned_runtime_min: 2.0,
        };
        assert!(crossover(&a, &b).is_none());
    }
}
