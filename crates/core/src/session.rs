//! Interactive tuning sessions (paper §VI future work).
//!
//! "We would like to explore adding an interactive session feature where
//! a configuration can be refined over time across a series of runs."
//! A [`TuningSession`] persists every observed (configuration, perf) pair
//! across process lifetimes (JSON on disk), suggests the next refinement
//! from the accumulated evidence, and — given the user's expected number
//! of production runs — advises whether further refinement is still worth
//! its cost (the viability logic of Fig 12 applied online).

use serde::{Deserialize, Serialize};
use std::path::Path;
use tunio_iosim::RunReport;
use tunio_params::{Configuration, Impact, ParamId, ParameterSpace};
use tunio_trace as trace;

/// One observed run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionRound {
    /// The configuration that ran.
    pub config: Configuration,
    /// The objective it achieved (bytes/s).
    pub perf: f64,
    /// Wall time of the run, seconds (counts toward refinement cost).
    pub elapsed_s: f64,
}

/// A persistent, refine-over-time tuning session.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct TuningSession {
    /// All recorded rounds, oldest first.
    pub rounds: Vec<SessionRound>,
    /// Expected number of future production executions (None = unknown).
    pub expected_production_runs: Option<u64>,
}

impl TuningSession {
    /// Start an empty session.
    pub fn new() -> Self {
        TuningSession::default()
    }

    /// Start a session with a production-run expectation (feeds the
    /// keep-refining advice).
    pub fn with_expected_runs(runs: u64) -> Self {
        TuningSession {
            rounds: Vec::new(),
            expected_production_runs: Some(runs),
        }
    }

    /// Record one run's outcome.
    pub fn record(&mut self, config: Configuration, report: &RunReport) {
        trace::event(
            "session.record",
            vec![
                ("round", self.rounds.len().into()),
                ("perf", report.perf().into()),
                ("elapsed_s", report.elapsed_s.into()),
            ],
        );
        self.rounds.push(SessionRound {
            config,
            perf: report.perf(),
            elapsed_s: report.elapsed_s,
        });
    }

    /// Best round so far. NaN-safe: rounds with a non-finite perf (a
    /// corrupted report, an injected-fault artifact) are skipped, so a
    /// poisoned round can never become the session's best. `total_cmp`
    /// would otherwise order NaN *above* every finite perf. Falls back to
    /// the first round only when every recorded perf is non-finite.
    pub fn best(&self) -> Option<&SessionRound> {
        self.rounds
            .iter()
            .filter(|r| r.perf.is_finite())
            .max_by(|a, b| a.perf.total_cmp(&b.perf))
            .or_else(|| self.rounds.first())
    }

    /// Total time invested across recorded rounds, minutes.
    pub fn invested_minutes(&self) -> f64 {
        self.rounds.iter().map(|r| r.elapsed_s).sum::<f64>() / 60.0
    }

    /// Suggest the next configuration to try: start from the best round
    /// and move one high-impact parameter to a value the session has not
    /// yet observed in that gene (cycling through the domain). Falls back
    /// to the defaults when the session is empty.
    pub fn suggest(&self, space: &ParameterSpace) -> Configuration {
        let base = match self.best() {
            Some(b) => b.config.clone(),
            None => return space.default_config(),
        };
        // Round-robin across the high-impact parameters so the session
        // explores the space broadly instead of exhausting one domain
        // before touching the next.
        let order = high_impact_order(space);
        if order.is_empty() {
            // Nothing worth refining — keep the best configuration.
            return base;
        }
        for offset in 0..order.len() {
            let p = order[(self.rounds.len() + offset) % order.len()];
            let card = space.cardinality(p);
            let seen: Vec<usize> = self.rounds.iter().map(|r| r.config.gene(p)).collect();
            // First domain index never tried with this parameter.
            if let Some(idx) = (0..card).find(|i| !seen.contains(i)) {
                let mut next = base.clone();
                next.set_gene(p, idx);
                return next;
            }
        }
        // Every high-impact value has been tried at least once: step the
        // least-explored parameter cyclically.
        let mut next = base;
        let p = order[self.rounds.len() % order.len()];
        let idx = (next.gene(p) + 1) % space.cardinality(p);
        next.set_gene(p, idx);
        trace::event(
            "session.suggest",
            vec![
                ("rounds", self.rounds.len().into()),
                ("param", p.name().into()),
                ("value_index", idx.into()),
            ],
        );
        next
    }

    /// Whether another refinement run is still worthwhile: the expected
    /// saving across remaining production runs must exceed the typical
    /// cost of one more refinement run. Returns `true` when unknown
    /// (no expectation or not enough evidence to say no).
    pub fn worth_refining(&self) -> bool {
        let (Some(runs), Some(best)) = (self.expected_production_runs, self.best()) else {
            return true;
        };
        if self.rounds.len() < 3 {
            return true;
        }
        // Observed per-round improvement trend over the last 3 rounds.
        let n = self.rounds.len();
        let prev_best = self.rounds[..n - 3]
            .iter()
            .map(|r| r.perf)
            .fold(0.0f64, f64::max);
        let recent_gain = (best.perf - prev_best).max(0.0);
        if prev_best <= 0.0 {
            return true;
        }
        // Projected runtime saving per production run from a comparable
        // future gain, valued across all expected runs, vs. one more
        // refinement run's cost.
        let runtime = best.elapsed_s;
        let projected_saving_s = runtime * (recent_gain / best.perf).min(0.5);
        projected_saving_s * runs as f64 > runtime
    }

    /// Persist to a JSON file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let text = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, text)
    }

    /// Load from a JSON file.
    ///
    /// Rejects sessions whose rounds carry non-finite or negative
    /// `perf`/`elapsed_s` values: a hand-edited or corrupted file must
    /// not smuggle NaN into [`Self::best`] / [`Self::worth_refining`]
    /// arithmetic. Rejects genomes of the wrong length for the same
    /// reason: a short genome deserializes fine but panics later, deep
    /// inside [`Self::suggest`], when `gene()` indexes past its end.
    pub fn load(path: &Path) -> std::io::Result<TuningSession> {
        let text = std::fs::read_to_string(path)?;
        let session: TuningSession = serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        for (i, round) in session.rounds.iter().enumerate() {
            if round.config.len() != ParamId::ALL.len() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "round {i}: genome has {} genes, the space has {}",
                        round.config.len(),
                        ParamId::ALL.len()
                    ),
                ));
            }
            if !round.perf.is_finite() || round.perf < 0.0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("round {i}: invalid perf {}", round.perf),
                ));
            }
            if !round.elapsed_s.is_finite() || round.elapsed_s < 0.0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("round {i}: invalid elapsed_s {}", round.elapsed_s),
                ));
            }
        }
        Ok(session)
    }
}

/// High-impact parameters in a stable, sensible refinement order.
fn high_impact_order(space: &ParameterSpace) -> Vec<ParamId> {
    let mut high = space.with_impact(Impact::High);
    // Collective mode first — it gates the others.
    high.sort_by_key(|p| match p {
        ParamId::CollectiveIo => 0,
        ParamId::CbNodes => 1,
        ParamId::CbBufferSize => 2,
        ParamId::StripingFactor => 3,
        ParamId::StripingUnit => 4,
        ParamId::Alignment => 5,
        _ => 6,
    });
    high
}

#[cfg(test)]
mod tests {
    use super::*;
    use tunio_iosim::Simulator;
    use tunio_params::ParameterSpace;
    use tunio_workloads::{hacc, Variant, Workload};

    fn run_once(sim: &Simulator, space: &ParameterSpace, config: &Configuration) -> RunReport {
        let phases = Workload::new(hacc(), Variant::Kernel).phases();
        sim.run_averaged(&phases, &config.resolve(space), 3)
    }

    #[test]
    fn session_refines_toward_better_configs() {
        let space = ParameterSpace::tunio_default();
        let sim = Simulator::cori_4node(1);
        let mut session = TuningSession::new();

        let mut config = space.default_config();
        for _ in 0..10 {
            let report = run_once(&sim, &space, &config);
            session.record(config.clone(), &report);
            config = session.suggest(&space);
        }
        let best = session.best().unwrap();
        let default_perf = session.rounds[0].perf;
        assert!(
            best.perf > default_perf,
            "refinement never improved: {} vs {}",
            best.perf,
            default_perf
        );
    }

    #[test]
    fn suggestions_change_exactly_one_parameter_initially() {
        let space = ParameterSpace::tunio_default();
        let sim = Simulator::cori_4node(2);
        let mut session = TuningSession::new();
        let default = space.default_config();
        session.record(default.clone(), &run_once(&sim, &space, &default));
        let next = session.suggest(&space);
        let changed = ParamId::ALL
            .iter()
            .filter(|&&p| next.gene(p) != default.gene(p))
            .count();
        assert_eq!(changed, 1);
    }

    #[test]
    fn empty_session_suggests_defaults() {
        let space = ParameterSpace::tunio_default();
        let s = TuningSession::new();
        assert_eq!(s.suggest(&space), space.default_config());
        assert!(s.best().is_none());
        assert_eq!(s.invested_minutes(), 0.0);
    }

    #[test]
    fn session_round_trips_through_disk() {
        let space = ParameterSpace::tunio_default();
        let sim = Simulator::cori_4node(3);
        let mut session = TuningSession::with_expected_runs(1000);
        let cfg = space.default_config();
        session.record(cfg.clone(), &run_once(&sim, &space, &cfg));

        let path = std::env::temp_dir().join("tunio_session_test.json");
        session.save(&path).unwrap();
        let loaded = TuningSession::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.rounds.len(), 1);
        assert_eq!(loaded.expected_production_runs, Some(1000));
        assert_eq!(loaded.rounds[0].config, cfg);
    }

    #[test]
    fn refinement_advice_depends_on_expected_runs() {
        let space = ParameterSpace::tunio_default();
        let sim = Simulator::cori_4node(4);
        // A session whose last rounds plateaued.
        let build = |runs| {
            let mut s = TuningSession::with_expected_runs(runs);
            let cfg = space.default_config();
            let report = run_once(&sim, &space, &cfg);
            for _ in 0..6 {
                s.record(cfg.clone(), &report); // identical → zero recent gain
            }
            s
        };
        // Plateaued evidence → not worth refining for one production run…
        assert!(!build(1).worth_refining());
        // …and still not worth it for a million runs (no recent gain).
        assert!(!build(1_000_000).worth_refining());

        // But with recent improvement, many runs justify continuing.
        let mut improving = TuningSession::with_expected_runs(1_000_000);
        let mut cfg = space.default_config();
        let r0 = run_once(&sim, &space, &cfg);
        improving.record(cfg.clone(), &r0);
        improving.record(cfg.clone(), &r0);
        improving.record(cfg.clone(), &r0);
        cfg.set_gene(ParamId::CollectiveIo, 1);
        cfg.set_gene(ParamId::StripingFactor, 9);
        cfg.set_gene(ParamId::CbNodes, 4);
        let r1 = run_once(&sim, &space, &cfg);
        improving.record(cfg.clone(), &r1);
        assert!(improving.worth_refining());
    }

    #[test]
    fn unknown_expectation_always_permits_refining() {
        let s = TuningSession::new();
        assert!(s.worth_refining());
    }

    /// Regression test: the cyclic-fallback branch of `suggest` used to
    /// index `high_impact_order(space)[rounds.len() % 7]` — a hardcoded 7
    /// that panics out-of-bounds on any space with fewer than seven
    /// high-impact parameters once every high-impact value has been seen.
    #[test]
    fn suggest_survives_reduced_high_impact_space() {
        let mut space = ParameterSpace::tunio_default();
        // Demote everything except the collective-I/O toggle: one
        // high-impact parameter with a two-value (boolean) domain.
        for p in ParamId::ALL {
            if p != ParamId::CollectiveIo {
                space.set_impact(p, Impact::Low);
            }
        }
        assert_eq!(space.with_impact(Impact::High).len(), 1);

        let mut session = TuningSession::new();
        // 13 rounds covering both collective-I/O values: the "first
        // untried value" scan finds nothing, so the cyclic fallback runs
        // with rounds.len() % 7 == 6 — out of bounds for a 1-element
        // order before the fix.
        for i in 0..13 {
            let mut cfg = space.default_config();
            cfg.set_gene(ParamId::CollectiveIo, i % 2);
            session.rounds.push(SessionRound {
                config: cfg,
                perf: 1.0 + i as f64,
                elapsed_s: 1.0,
            });
        }
        let next = session.suggest(&space); // panicked pre-fix
        let best = session.best().unwrap();
        // The suggestion steps the sole high-impact parameter cyclically.
        assert_ne!(
            next.gene(ParamId::CollectiveIo),
            best.config.gene(ParamId::CollectiveIo)
        );
    }

    #[test]
    fn suggest_with_no_high_impact_params_keeps_best_config() {
        let mut space = ParameterSpace::tunio_default();
        for p in ParamId::ALL {
            space.set_impact(p, Impact::Low);
        }
        let mut session = TuningSession::new();
        session.rounds.push(SessionRound {
            config: space.default_config(),
            perf: 1.0,
            elapsed_s: 1.0,
        });
        assert_eq!(session.suggest(&space), space.default_config());
    }

    /// Regression tests: `best()` used `partial_cmp().unwrap()` and
    /// panicked the moment a NaN perf entered the session; the `total_cmp`
    /// replacement then ordered NaN *above* every finite perf, so a
    /// corrupted report's round would win. Neither may happen: a poisoned
    /// round must never become the session's best.
    #[test]
    fn corrupt_rounds_never_become_best() {
        let space = ParameterSpace::tunio_default();
        let mut session = TuningSession::new();
        for perf in [1.0, f64::NAN, 3.0, f64::INFINITY] {
            session.rounds.push(SessionRound {
                config: space.default_config(),
                perf,
                elapsed_s: 1.0,
            });
        }
        let best = session.best().expect("non-empty session has a best");
        assert_eq!(best.perf, 3.0, "best must be the top *finite* perf");
    }

    #[test]
    fn all_corrupt_session_still_has_a_best() {
        let space = ParameterSpace::tunio_default();
        let mut session = TuningSession::new();
        for perf in [f64::NAN, f64::INFINITY] {
            session.rounds.push(SessionRound {
                config: space.default_config(),
                perf,
                elapsed_s: 1.0,
            });
        }
        // Degenerate sessions fall back to the first round instead of
        // pretending to be empty — suggest() still works.
        assert!(session.best().is_some());
        let _ = session.suggest(&space);
    }

    #[test]
    fn load_rejects_negative_perf() {
        let space = ParameterSpace::tunio_default();
        let mut session = TuningSession::new();
        session.rounds.push(SessionRound {
            config: space.default_config(),
            perf: 2.5,
            elapsed_s: 1.5,
        });
        let path = std::env::temp_dir().join("tunio_session_invalid_perf.json");
        session.save(&path).unwrap();
        let tampered = std::fs::read_to_string(&path)
            .unwrap()
            .replace("2.5", "-2.5");
        std::fs::write(&path, tampered).unwrap();
        let err = TuningSession::load(&path).expect_err("negative perf must be rejected");
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    /// Regression test: a hand-truncated genome used to load fine and
    /// only blow up rounds later, as an index-out-of-bounds panic inside
    /// `suggest` — `load` must reject the malformed round up front.
    #[test]
    fn load_rejects_short_genome() {
        let text = "{\"rounds\":[{\"config\":{\"genes\":[0,1,2]},\
                    \"perf\":1.0,\"elapsed_s\":1.0}],\"expected_production_runs\":null}";
        let path = std::env::temp_dir().join("tunio_session_short_genome.json");
        std::fs::write(&path, text).unwrap();
        let err = TuningSession::load(&path).expect_err("short genome must be rejected");
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("genes"), "got {err}");
    }

    #[test]
    fn load_accepts_full_length_genome() {
        let space = ParameterSpace::tunio_default();
        let mut session = TuningSession::new();
        session.rounds.push(SessionRound {
            config: space.default_config(),
            perf: 1.0,
            elapsed_s: 1.0,
        });
        let path = std::env::temp_dir().join("tunio_session_full_genome.json");
        session.save(&path).unwrap();
        let loaded = TuningSession::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.rounds[0].config.len(), ParamId::ALL.len());
    }

    #[test]
    fn load_rejects_negative_elapsed() {
        let space = ParameterSpace::tunio_default();
        let mut session = TuningSession::new();
        session.rounds.push(SessionRound {
            config: space.default_config(),
            perf: 2.5,
            elapsed_s: 1.5,
        });
        let path = std::env::temp_dir().join("tunio_session_invalid_elapsed.json");
        session.save(&path).unwrap();
        let tampered = std::fs::read_to_string(&path)
            .unwrap()
            .replace("1.5", "-1.5");
        std::fs::write(&path, tampered).unwrap();
        let err = TuningSession::load(&path).expect_err("negative elapsed must be rejected");
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
