//! Smart Configuration Generation — Impact-First Tuning (§III-C).
//!
//! An RL agent that picks the parameter subset each tuning generation may
//! touch. It is built exactly as the paper describes:
//!
//! * a **State Observer** (NN contextual bandit,
//!   [`tunio_rl::ContextObserver`]) turns the raw tuner inputs — the
//!   subset used and the best perf achieved with it — into a learned
//!   state observation;
//! * a **Subset Picker** (NN Q-learning, [`tunio_rl::QAgent`]) maps that
//!   observation to the subset for the next generation (actions are
//!   top-*k* prefixes of the agent's impact ranking);
//! * the reward is `norm(perf) / norm(|subset|)` with a 5-iteration delay;
//! * **offline pre-training** sweeps each parameter on representative
//!   kernels (VPIC, FLASH, HACC), then a PCA over the sweep isolates the
//!   most impactful parameters and seeds the ranking.

use crate::perf::{normalize_perf, subset_reward};
use tunio_iosim::{ClusterSpec, Simulator};
use tunio_nn::Pca;
use tunio_params::{Configuration, ParamId, ParameterSpace};
use tunio_rl::qlearn::QConfig;
use tunio_rl::replay::Transition;
use tunio_rl::{ContextObserver, DelayedReward, QAgent};
use tunio_tuner::{EvalEngine, SubsetProvider};
use tunio_workloads::{flash, hacc, vpic, Variant, Workload, WorkloadFeatures};

/// Dimension of the observer's input context:
/// `[norm_perf, subset_len/total, iteration-scale]`.
const CONTEXT_DIM: usize = 3;
/// Dimension of the learned state observation.
const OBS_DIM: usize = 6;

/// Result of the offline sweep + PCA analysis.
#[derive(Debug, Clone)]
pub struct ImpactAnalysis {
    /// Parameters ranked by descending impact.
    pub ranking: Vec<ParamId>,
    /// Impact score per parameter (indexed by [`ParamId::index`]),
    /// normalized to max 1.
    pub scores: Vec<f64>,
    /// Number of parameters whose sweeps showed significant perf spread
    /// (≥ 8% of the largest spread) — the natural subset size.
    pub significant: usize,
}

impl ImpactAnalysis {
    /// The top-`k` prefix of the ranking.
    pub fn top(&self, k: usize) -> Vec<ParamId> {
        self.ranking.iter().copied().take(k.max(1)).collect()
    }
}

/// Run the offline parameter sweep on the representative kernels and
/// derive the impact ranking via PCA (paper §III-C: "first doing a simple
/// parameter sweep on some representative I/O kernels, including VPIC,
/// FLASH, and HACC … a PCA analysis is performed on the parameters with
/// respect to perf").
pub fn offline_impact_analysis(space: &ParameterSpace, seed: u64) -> ImpactAnalysis {
    let sim = Simulator::cori_4node(seed);
    let cluster = sim.cluster;
    let kernels = [hacc(), vpic(), flash()];

    // Sweep baselines: the library defaults, plus a collective-I/O
    // baseline (collective on, wide striping) that exposes the impact of
    // parameters like `cb_nodes` whose effect is gated on collective mode.
    let mut collective_base = space.default_config();
    collective_base.set_gene(ParamId::CollectiveIo, 1);
    collective_base.set_gene(ParamId::StripingFactor, 9);
    let baselines = [space.default_config(), collective_base];

    // One-at-a-time sweep: rows of [12 normalized gene positions, perf].
    // The sweep is embarrassingly parallel — (kernel, baseline, parameter)
    // cells are independent simulator runs — so each kernel's cells are
    // flattened into one [`EvalEngine::evaluate_batch`] call, which fans
    // the unique configurations out across threads and memoizes repeats
    // (every baseline reappears once per swept parameter). Results come
    // back in input order, so rows and spreads are identical to a serial
    // sweep.
    let mut samples: Vec<Vec<f64>> = Vec::new();
    let mut spreads = vec![0.0f64; space.len()];
    for app in &kernels {
        let engine = EvalEngine::new(
            sim.clone(),
            Workload::new(app.clone(), Variant::Kernel),
            space.clone(),
            3,
        );
        // (parameter, offset-into-configs, cardinality) per sweep cell.
        let mut cells: Vec<(ParamId, usize, usize)> = Vec::new();
        let mut configs = Vec::new();
        for base in &baselines {
            for p in ParamId::ALL {
                let card = space.cardinality(p);
                cells.push((p, configs.len(), card));
                for idx in 0..card {
                    let mut cfg = base.clone();
                    cfg.set_gene(p, idx);
                    configs.push(cfg);
                }
            }
        }
        let evals = engine.evaluate_batch(&configs);
        for (p, start, card) in cells {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for e in &evals[start..start + card] {
                let perf = normalize_perf(e.perf, &cluster);
                lo = lo.min(perf);
                hi = hi.max(perf);
                let mut row: Vec<f64> = e
                    .config
                    .genes()
                    .iter()
                    .enumerate()
                    .map(|(i, &g)| {
                        g as f64 / (space.descriptors()[i].domain.cardinality() - 1).max(1) as f64
                    })
                    .collect();
                row.push(perf);
                samples.push(row);
            }
            spreads[p.index()] += hi - lo;
        }
    }

    // PCA over (genes, perf): parameters co-varying with perf load on the
    // same strong components as the perf feature.
    let pca = Pca::fit(&samples);
    let importance = pca.feature_importance();

    // The observed perf spread is the primary impact signal (flat sweeps
    // mean no impact regardless of loading); PCA loadings refine ordering
    // among the impactful parameters.
    let max_spread = spreads.iter().cloned().fold(1e-12, f64::max);
    let mut scores: Vec<f64> = (0..space.len())
        .map(|i| (spreads[i] / max_spread) * (0.3 + 0.7 * importance[i]))
        .collect();
    let max_score = scores.iter().cloned().fold(1e-12, f64::max);
    for s in &mut scores {
        *s /= max_score;
    }

    let mut ranking: Vec<ParamId> = ParamId::ALL.to_vec();
    ranking.sort_by(|a, b| scores[b.index()].partial_cmp(&scores[a.index()]).unwrap());
    let significant = spreads
        .iter()
        .filter(|&&sp| sp >= 0.08 * max_spread)
        .count()
        .max(1);
    ImpactAnalysis {
        ranking,
        scores,
        significant,
    }
}

/// Derive an impact ranking from statically inferred workload features —
/// the warm-start analogue of [`offline_impact_analysis`]. Instead of
/// sweeping the simulator (expensive, workload-agnostic), each parameter's
/// score comes from how strongly the inferred feature vector suggests the
/// parameter matters for *this* workload: collective traffic raises the
/// collective-buffering knobs, volume raises striping, strided/random
/// reads raise the chunk cache, small reads raise sieving, metadata-heavy
/// workloads raise the metadata knobs. Scores are normalized to max 1 and
/// `significant` counts the parameters scoring ≥ 0.3, mirroring the
/// offline analysis contract so [`SmartConfigAgent::new`] works unchanged.
pub fn impact_from_features(features: &WorkloadFeatures, space: &ParameterSpace) -> ImpactAnalysis {
    let mut scores = vec![0.05f64; space.len()];
    let mut bump = |p: ParamId, s: f64| {
        let slot = &mut scores[p.index()];
        *slot = slot.max(s.clamp(0.0, 1.0));
    };

    let coll = features.collective_fraction;
    bump(ParamId::CollectiveIo, 0.4 + 0.6 * coll);
    bump(ParamId::CbNodes, 0.2 + 0.8 * coll);
    bump(ParamId::CbBufferSize, 0.15 + 0.7 * coll);

    // Volume on a log scale: 1 GiB ≈ 0.75, 1 TiB saturates.
    let vol = ((features.total_bytes.max(1) as f64).log2() / 40.0).clamp(0.0, 1.0);
    bump(ParamId::StripingFactor, 0.25 + 0.75 * vol);
    bump(ParamId::StripingUnit, 0.2 + 0.7 * vol);

    // Large requests make alignment pay; tiny ones make it irrelevant.
    let req = features.mean_request_bytes.max(1.0);
    let req_scale = (req.log2() / 24.0).clamp(0.0, 1.0); // 16 MiB saturates
    bump(ParamId::Alignment, 0.15 + 0.75 * req_scale);

    // Non-contiguous reads are what the chunk cache exists for.
    let noncontig = features.strided_fraction.max(features.random_fraction);
    bump(
        ParamId::ChunkCache,
        0.1 + 0.9 * noncontig * features.read_fraction,
    );

    // Sieving only helps small reads.
    let small = (1.0 - req / (1u64 << 20) as f64).clamp(0.0, 1.0);
    bump(ParamId::SieveBufSize, 0.85 * features.read_fraction * small);

    let meta = features.metadata_ratio.min(1.0);
    bump(ParamId::MetaBlockSize, 0.8 * meta);
    bump(ParamId::MdcConfig, 0.5 * meta);
    bump(ParamId::CollMetaOps, 0.7 * meta * coll);
    bump(ParamId::CollMetadataWrite, 0.7 * meta * coll);

    let max_score = scores.iter().cloned().fold(1e-12, f64::max);
    for s in &mut scores {
        *s /= max_score;
    }
    let mut ranking: Vec<ParamId> = ParamId::ALL.to_vec();
    ranking.sort_by(|a, b| scores[b.index()].partial_cmp(&scores[a.index()]).unwrap());
    let significant = scores.iter().filter(|&&s| s >= 0.3).count().max(1);
    ImpactAnalysis {
        ranking,
        scores,
        significant,
    }
}

/// Warm-start seed configurations derived from inferred workload
/// features: concrete points a search strategy plants in its starting
/// state (see `SearchStrategy::warm_start`). The first seed is the full
/// feature-guided guess; a second, conservative seed keeps the library
/// defaults and only switches the collective/striping mode, so the search
/// starts with both an aggressive and a safe hypothesis.
pub fn warm_seed_configs(
    features: &WorkloadFeatures,
    space: &ParameterSpace,
) -> Vec<Configuration> {
    // Index of the numeric value closest to `target` (log-ish domains are
    // monotone, so absolute distance picks the right neighbor).
    let nearest = |p: ParamId, target: u64| -> usize {
        let dom = &space.descriptor(p).domain;
        (0..dom.cardinality())
            .min_by_key(|&i| {
                dom.numeric_at(i)
                    .map(|v| v.abs_diff(target))
                    .unwrap_or(u64::MAX)
            })
            .unwrap_or(0)
    };

    let mut seed = space.default_config();
    // One stripe per 256 MiB of predicted volume.
    let stripes = (features.total_bytes / (256 << 20)).clamp(1, 128);
    seed.set_gene(
        ParamId::StripingFactor,
        nearest(ParamId::StripingFactor, stripes),
    );
    let unit = (features.mean_request_bytes.max(65_536.0)) as u64;
    seed.set_gene(ParamId::StripingUnit, nearest(ParamId::StripingUnit, unit));
    if features.mean_request_bytes >= (1u64 << 20) as f64 {
        seed.set_gene(ParamId::Alignment, nearest(ParamId::Alignment, 1 << 20));
    }
    let collective = features.collective_fraction > 0.5;
    if collective {
        seed.set_gene(ParamId::CollectiveIo, 1);
        seed.set_gene(ParamId::CbNodes, nearest(ParamId::CbNodes, 16));
        seed.set_gene(
            ParamId::CbBufferSize,
            nearest(ParamId::CbBufferSize, 16 << 20),
        );
    }
    let noncontig = features.strided_fraction.max(features.random_fraction);
    if features.read_fraction > 0.0 && noncontig > 0.3 {
        seed.set_gene(ParamId::ChunkCache, nearest(ParamId::ChunkCache, 32 << 20));
    }
    if features.read_fraction > 0.5 && features.mean_request_bytes < (1u64 << 20) as f64 {
        seed.set_gene(
            ParamId::SieveBufSize,
            nearest(ParamId::SieveBufSize, 4 << 20),
        );
    }
    if features.metadata_ratio > 0.1 {
        seed.set_gene(
            ParamId::MetaBlockSize,
            nearest(ParamId::MetaBlockSize, 1 << 20),
        );
        if collective {
            seed.set_gene(ParamId::CollMetaOps, 1);
            seed.set_gene(ParamId::CollMetadataWrite, 1);
        }
    }

    let mut conservative = space.default_config();
    if collective {
        conservative.set_gene(ParamId::CollectiveIo, 1);
    }
    conservative.set_gene(
        ParamId::StripingFactor,
        nearest(ParamId::StripingFactor, stripes),
    );

    let mut seeds = vec![seed];
    if conservative != seeds[0] {
        seeds.push(conservative);
    }
    seeds
}

/// The Smart Configuration Generation agent. Implements
/// [`tunio_tuner::SubsetProvider`], so it plugs directly into the GA
/// pipeline's configuration-generation phase.
#[derive(Debug)]
pub struct SmartConfigAgent {
    /// Offline impact analysis (ranking refreshed online).
    pub analysis: ImpactAnalysis,
    observer: ContextObserver,
    picker: QAgent,
    delayed: DelayedReward,
    cluster: ClusterSpec,
    total_params: usize,
    /// (observation, action, context) of the most recent subset decision.
    last: Option<(Vec<f64>, usize, Vec<f64>)>,
    last_perf: f64,
}

impl SmartConfigAgent {
    /// Build an agent from a completed impact analysis and pre-train the
    /// subset picker on the analysis scores.
    pub fn new(analysis: ImpactAnalysis, cluster: ClusterSpec, seed: u64) -> Self {
        let total = analysis.scores.len();
        let mut picker = QAgent::new(
            OBS_DIM,
            total,
            QConfig {
                epsilon_start: 0.5,
                epsilon_end: 0.12,
                epsilon_decay: 0.97,
                ..QConfig::default()
            },
            seed,
        );
        let observer = ContextObserver::new(CONTEXT_DIM, OBS_DIM, seed ^ 0x5eed);

        // Offline picker warm-up. The sweep tells us how many parameters
        // actually move perf (`analysis.significant`); parameters interact
        // (collective mode, aggregators and striping pay off jointly), so
        // achievable gain is modelled as convex coverage of the
        // significant set, and the reward divides by the normalized subset
        // size exactly as the online reward does. This seeds Q toward
        // subsets that cover the impactful parameters and nothing more.
        let n_sig = analysis.significant.max(1) as f64;
        for _ in 0..60 {
            for k0 in 0..total {
                let k = k0 + 1;
                let coverage = ((k as f64).min(n_sig) / n_sig).powf(1.6);
                let reward = coverage / (k as f64 / total as f64);
                let state = observer.observe(&[0.5, k as f64 / total as f64, 0.0]);
                picker.observe(Transition {
                    state,
                    action: k0,
                    reward,
                    next_state: vec![],
                    done: true,
                });
            }
            picker.end_episode();
        }

        SmartConfigAgent {
            analysis,
            observer,
            picker,
            delayed: DelayedReward::new(5),
            cluster,
            total_params: total,
            last: None,
            last_perf: 0.0,
        }
    }

    /// Full offline pre-training: sweep + PCA + picker warm-up.
    pub fn pretrained(space: &ParameterSpace, cluster: ClusterSpec, seed: u64) -> Self {
        let analysis = offline_impact_analysis(space, seed);
        SmartConfigAgent::new(analysis, cluster, seed)
    }

    /// Warm-start construction: skip the simulator sweep and derive the
    /// impact ranking from statically inferred workload features
    /// ([`impact_from_features`]). The picker warm-up is identical to
    /// [`Self::new`], so only the ranking differs from `pretrained`.
    pub fn from_features(
        features: &WorkloadFeatures,
        space: &ParameterSpace,
        cluster: ClusterSpec,
        seed: u64,
    ) -> Self {
        SmartConfigAgent::new(impact_from_features(features, space), cluster, seed)
    }

    /// Pick the subset for the given context (the Table-I
    /// `subset_picker(perf, current_parameter_set)` entry point).
    pub fn pick(&mut self, perf: f64, current_len: usize, iteration: u32) -> Vec<ParamId> {
        let context = vec![
            normalize_perf(perf, &self.cluster),
            current_len as f64 / self.total_params as f64,
            (iteration as f64 / 50.0).min(1.0),
        ];
        let obs = self.observer.observe(&context);
        let action = self.picker.act(&obs);
        let k = action + 1;
        self.last = Some((obs, action, context));
        self.analysis.top(k)
    }

    /// Feed back the best perf achieved with the last-picked subset.
    pub fn reward(&mut self, subset_len: usize, best_perf: f64) {
        let (obs, action, context) = match self.last.take() {
            Some(x) => x,
            None => return,
        };
        let r = subset_reward(best_perf, &self.cluster, subset_len, self.total_params);
        self.observer
            .learn(&context, normalize_perf(best_perf, &self.cluster));
        if let Some(matured) = self.delayed.push(Transition {
            state: obs,
            action,
            reward: r,
            next_state: vec![],
            done: true,
        }) {
            self.picker.observe(matured);
        }
        self.picker.end_episode();
        self.last_perf = best_perf;
    }
}

/// Serializable snapshot of a [`SmartConfigAgent`].
#[derive(serde::Serialize, serde::Deserialize)]
pub struct SmartConfigState {
    /// Impact ranking (parameter ids in descending impact order).
    pub ranking: Vec<ParamId>,
    /// Impact scores by parameter index.
    pub scores: Vec<f64>,
    /// Count of significant parameters.
    pub significant: usize,
    /// Subset-picker Q-network weights (JSON).
    pub picker: String,
    /// State-observer weights (JSON).
    pub observer: String,
}

impl SmartConfigAgent {
    /// Snapshot everything the agent has learned.
    pub fn save_state(&self) -> SmartConfigState {
        SmartConfigState {
            ranking: self.analysis.ranking.clone(),
            scores: self.analysis.scores.clone(),
            significant: self.analysis.significant,
            picker: self.picker.export_json(),
            observer: self.observer.export_json(),
        }
    }

    /// Restore a snapshot taken with [`Self::save_state`].
    pub fn restore_state(&mut self, state: &SmartConfigState) -> Result<(), String> {
        if state.ranking.len() != self.total_params || state.scores.len() != self.total_params {
            return Err("parameter-space size mismatch".into());
        }
        self.analysis = ImpactAnalysis {
            ranking: state.ranking.clone(),
            scores: state.scores.clone(),
            significant: state.significant,
        };
        self.picker.import_json(&state.picker)?;
        self.observer.import_json(&state.observer)?;
        Ok(())
    }
}

impl SubsetProvider for SmartConfigAgent {
    fn next_subset(
        &mut self,
        iteration: u32,
        best_perf: f64,
        _space: &ParameterSpace,
    ) -> Vec<ParamId> {
        let current = self
            .last
            .as_ref()
            .map(|(_, a, _)| a + 1)
            .unwrap_or(self.total_params);
        self.pick(best_perf, current, iteration)
    }

    fn feedback(&mut self, subset: &[ParamId], best_perf: f64) {
        self.reward(subset.len(), best_perf);
    }

    fn name(&self) -> &'static str {
        "tunio-smart-config"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tunio_params::Impact;

    fn space() -> ParameterSpace {
        ParameterSpace::tunio_default()
    }

    #[test]
    fn offline_analysis_finds_high_impact_params() {
        let s = space();
        let analysis = offline_impact_analysis(&s, 42);
        let high = s.with_impact(Impact::High);
        // At least 5 of the true top-7 appear in the analysis's top 7.
        let top7 = analysis.top(7);
        let overlap = top7.iter().filter(|p| high.contains(p)).count();
        assert!(
            overlap >= 5,
            "only {overlap}/7 high-impact parameters in top-7: {top7:?}"
        );
    }

    #[test]
    fn analysis_scores_are_normalized() {
        let analysis = offline_impact_analysis(&space(), 1);
        assert_eq!(analysis.scores.len(), 12);
        let max = analysis.scores.iter().cloned().fold(0.0, f64::max);
        assert!((max - 1.0).abs() < 1e-9);
        assert!(analysis.scores.iter().all(|s| (0.0..=1.0).contains(s)));
    }

    #[test]
    fn ranking_is_a_permutation() {
        let analysis = offline_impact_analysis(&space(), 2);
        let mut r = analysis.ranking.clone();
        r.sort();
        assert_eq!(r, ParamId::ALL.to_vec());
    }

    #[test]
    fn agent_picks_nonempty_subsets_and_learns() {
        let s = space();
        let analysis = offline_impact_analysis(&s, 3);
        let mut agent = SmartConfigAgent::new(analysis, ClusterSpec::cori_4node(), 3);
        for it in 1..=10 {
            let subset = agent.next_subset(it, 1e9, &s);
            assert!(!subset.is_empty() && subset.len() <= 12);
            agent.feedback(&subset, 1e9 + it as f64 * 1e8);
        }
    }

    #[test]
    fn warm_started_picker_prefers_small_subsets() {
        // After offline warm-up (no online data), the greedy subset size
        // should be well below the full 12 parameters.
        let s = space();
        let analysis = offline_impact_analysis(&s, 4);
        let mut agent = SmartConfigAgent::new(analysis, ClusterSpec::cori_4node(), 4);
        // Greedy choice (bypass exploration by sampling many picks).
        let mut sizes = Vec::new();
        for it in 1..=20 {
            let sub = agent.next_subset(it, 2e9, &s);
            sizes.push(sub.len());
            agent.feedback(&sub.clone(), 2e9);
        }
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!(mean < 10.0, "mean subset size {mean}");
    }

    #[test]
    fn top_k_clamps_to_at_least_one() {
        let analysis = offline_impact_analysis(&space(), 5);
        assert_eq!(analysis.top(0).len(), 1);
        assert_eq!(analysis.top(99).len(), 12);
    }

    fn collective_features() -> WorkloadFeatures {
        WorkloadFeatures {
            app: "vpic_dump".into(),
            total_bytes: 3 << 30,
            read_fraction: 0.0,
            mean_request_bytes: 8.0 * 1024.0 * 1024.0,
            collective_fraction: 1.0,
            random_fraction: 0.0,
            strided_fraction: 0.0,
            metadata_ratio: 0.2,
            loop_iterations: 12,
            confidence: 0.9,
        }
    }

    fn small_random_read_features() -> WorkloadFeatures {
        WorkloadFeatures {
            app: "bdcats_read".into(),
            total_bytes: 64 << 20,
            read_fraction: 1.0,
            mean_request_bytes: 4096.0,
            collective_fraction: 0.0,
            random_fraction: 1.0,
            strided_fraction: 0.0,
            metadata_ratio: 0.05,
            loop_iterations: 8,
            confidence: 0.8,
        }
    }

    #[test]
    fn feature_impact_matches_workload_shape() {
        let s = space();
        let coll = impact_from_features(&collective_features(), &s);
        assert!(
            coll.top(4).contains(&ParamId::CollectiveIo),
            "{:?}",
            coll.ranking
        );
        assert!(coll.top(6).contains(&ParamId::CbNodes));
        let rand = impact_from_features(&small_random_read_features(), &s);
        assert!(
            rand.top(4).contains(&ParamId::ChunkCache),
            "{:?}",
            rand.ranking
        );
        assert!(rand.top(6).contains(&ParamId::SieveBufSize));
        // Contract parity with the offline analysis.
        for a in [&coll, &rand] {
            let mut r = a.ranking.clone();
            r.sort();
            assert_eq!(r, ParamId::ALL.to_vec());
            let max = a.scores.iter().cloned().fold(0.0, f64::max);
            assert!((max - 1.0).abs() < 1e-9);
            assert!(a.significant >= 1);
        }
    }

    #[test]
    fn warm_seeds_encode_the_features() {
        let s = space();
        let seeds = warm_seed_configs(&collective_features(), &s);
        assert!(!seeds.is_empty() && seeds.len() <= 2);
        assert_eq!(seeds[0].gene(ParamId::CollectiveIo), 1);
        assert_ne!(
            seeds[0].gene(ParamId::CbBufferSize),
            s.default_config().gene(ParamId::CbBufferSize)
        );
        assert_ne!(
            seeds[0],
            s.default_config(),
            "seed must differ from default"
        );
        let read_seeds = warm_seed_configs(&small_random_read_features(), &s);
        assert_eq!(read_seeds[0].gene(ParamId::CollectiveIo), 0);
        assert_ne!(
            read_seeds[0].gene(ParamId::ChunkCache),
            s.default_config().gene(ParamId::ChunkCache)
        );
        assert_ne!(
            read_seeds[0].gene(ParamId::SieveBufSize),
            s.default_config().gene(ParamId::SieveBufSize)
        );
        // Every gene is inside its domain.
        for seed in seeds.iter().chain(&read_seeds) {
            for p in ParamId::ALL {
                assert!(seed.gene(p) < s.cardinality(p));
            }
        }
    }

    #[test]
    fn from_features_agent_picks_ranked_subsets() {
        let s = space();
        let mut agent = SmartConfigAgent::from_features(
            &collective_features(),
            &s,
            ClusterSpec::cori_4node(),
            7,
        );
        for it in 1..=5 {
            let subset = agent.next_subset(it, 1e9, &s);
            assert!(!subset.is_empty() && subset.len() <= 12);
            agent.feedback(&subset, 1e9);
        }
    }
}
