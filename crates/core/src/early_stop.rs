//! RL Early Stopping (§III-D).
//!
//! A Q-learning agent decides each generation whether the pipeline should
//! stop or continue. It is trained *offline* on synthetic log-shaped
//! tuning curves ([`tunio_rl::LogCurveEnv`]) — with randomized downward
//! shifts emulating briefly-wrong parameter choices — "until the average
//! reward of the agent begins to stagnate … indicated by 5% or less
//! increase across five iterations". Online it keeps learning from the
//! applications it sees, using the same 5-iteration reward delay.

use tunio_rl::logcurve::LogCurveEnv;
use tunio_rl::qlearn::QConfig;
use tunio_rl::replay::Transition;
use tunio_rl::{DelayedReward, QAgent};
use tunio_trace as trace;
use tunio_tuner::Stopper;

/// State dimension (mirrors [`LogCurveEnv`]'s observation).
const STATE_DIM: usize = 4;
/// Actions: 0 = continue, 1 = stop.
const CONTINUE: usize = 0;
const STOP: usize = 1;

/// The Early Stopping agent. Implements [`tunio_tuner::Stopper`].
#[derive(Debug)]
pub struct EarlyStopAgent {
    agent: QAgent,
    /// Best-perf history of the campaign being supervised.
    history: Vec<f64>,
    /// Iteration budget of the campaign (normalizes the iteration input).
    pub max_iterations: u32,
    /// Never stop before this many iterations (the agent needs a trend).
    pub min_iterations: u32,
    /// Per-iteration cost as a fraction of total gain, matching training.
    step_cost: f64,
    /// Expected number of production executions (paper §VI: knowing the
    /// application will run many more times justifies longer tuning).
    expected_production_runs: Option<u64>,
    /// Reward-delay length in iterations (the paper uses 5).
    reward_delay: usize,
    delayed: DelayedReward,
    last: Option<(Vec<f64>, usize)>,
    /// Episodes used during offline pre-training (for reports).
    pub offline_episodes: u32,
}

impl EarlyStopAgent {
    /// Pre-train offline on generated log curves until the rolling average
    /// reward stagnates (≤5% improvement across five rounds of episodes).
    pub fn pretrained(max_iterations: u32, seed: u64) -> Self {
        Self::pretrained_with_delay(max_iterations, seed, 5)
    }

    /// Like [`Self::pretrained`] but with a custom reward delay (the
    /// paper fixes 5; the `abl05_reward_delay` experiment ablates it).
    pub fn pretrained_with_delay(max_iterations: u32, seed: u64, delay: usize) -> Self {
        let step_cost = 0.012;
        let mut env = LogCurveEnv::new(max_iterations, step_cost, seed ^ 0xc0ffee);
        let mut agent = QAgent::new(
            STATE_DIM,
            2,
            QConfig {
                epsilon_decay: 0.985,
                ..QConfig::default()
            },
            seed,
        );

        let round = 40; // episodes per measurement round
        let mut avg_rewards: Vec<f64> = Vec::new();
        let mut episodes = 0;
        for r in 0..60 {
            let returns = agent.train(&mut env, round, max_iterations as usize + 1);
            episodes += round as u32;
            let avg = returns.iter().sum::<f64>() / returns.len() as f64;
            avg_rewards.push(avg);
            // Give the policy time to leave the trivial always-continue
            // region before trusting the stagnation signal.
            if r >= 15 && stagnated(&avg_rewards) {
                break;
            }
        }

        EarlyStopAgent {
            agent,
            history: Vec::new(),
            max_iterations,
            min_iterations: 6,
            step_cost,
            expected_production_runs: None,
            reward_delay: delay,
            delayed: DelayedReward::new(delay),
            last: None,
            offline_episodes: episodes,
        }
    }

    /// Tell the agent how many production executions are expected (paper
    /// §VI future work: "include the expected number of production runs as
    /// input, to allow TunIO to continue tuning if the user knows that
    /// they expect to run the application long enough for the extra tuning
    /// to be worthwhile"). More expected runs lower the effective
    /// per-iteration cost, shifting the stop decision later.
    pub fn set_expected_production_runs(&mut self, runs: u64) {
        self.expected_production_runs = Some(runs);
    }

    /// The per-iteration cost the stop decision uses, discounted by the
    /// production-run expectation: the reference cost assumes ~1000
    /// production runs; an application that will run 100x more can afford
    /// proportionally (logarithmically) more tuning.
    fn effective_step_cost(&self) -> f64 {
        match self.expected_production_runs {
            None => self.step_cost,
            Some(runs) => {
                let scale = ((runs.max(1) as f64 / 1000.0).log10()).clamp(-1.0, 3.0);
                // 10x fewer runs → 1.6x cost; 1000x more runs → ~0.36x.
                self.step_cost * (1.0 - 0.28 * scale).clamp(0.15, 2.0)
            }
        }
    }

    /// Reset campaign-local state (history) for a fresh tuning run while
    /// keeping everything learned.
    pub fn begin_campaign(&mut self) {
        self.history.clear();
        self.delayed = DelayedReward::new(self.reward_delay);
        self.last = None;
    }

    /// The state observation from the campaign history: iteration scale,
    /// 1-step and 5-step marginal gains, and total gain — all normalized
    /// by the running gain estimate, mirroring offline training.
    fn state(&self) -> Vec<f64> {
        let t = self.history.len();
        let first = self.history.first().copied().unwrap_or(0.0);
        let at = |i: usize| self.history.get(i).copied().unwrap_or(first);
        let cur = at(t.saturating_sub(1));
        // Normalize by the gain observed so far — the same normalizer the
        // offline log-curve environment exposes.
        let gained = (cur - first).max(first * 0.05).max(1e-9);
        let recent = if t >= 2 {
            (cur - at(t - 2)) / gained
        } else {
            0.0
        };
        let window = if t >= 6 {
            (cur - at(t - 6)) / gained
        } else {
            (cur - first) / gained
        };
        let relative_gain = (cur - first) / first.max(1e-9);
        vec![
            t as f64 / self.max_iterations as f64,
            recent,
            window,
            relative_gain.min(8.0) / 8.0,
        ]
    }

    /// The Table-I `stop(current_iteration, best_perf)` decision, with
    /// online learning.
    pub fn decide(&mut self, _current_iteration: u32, best_perf: f64) -> bool {
        self.history.push(best_perf);
        let t = self.history.len() as u32;
        let state = self.state();

        // Online learning from the matured (5-iteration delayed) reward.
        if let Some((prev_state, prev_action)) = self.last.take() {
            let norm = {
                let first = self.history[0];
                let best = self
                    .history
                    .iter()
                    .cloned()
                    .fold(f64::NEG_INFINITY, f64::max);
                (best - first).max(first * 0.1).max(1e-9)
            };
            let n = self.history.len();
            let marginal = if n >= 2 {
                (self.history[n - 1] - self.history[n - 2]) / norm
            } else {
                0.0
            };
            let reward = marginal - self.effective_step_cost();
            if let Some(matured) = self.delayed.push(Transition {
                state: prev_state,
                action: prev_action,
                reward,
                next_state: state.clone(),
                done: false,
            }) {
                trace::event(
                    "rl.reward",
                    vec![
                        ("stopper", "tunio-rl-early-stop".into()),
                        ("iteration", t.into()),
                        ("action", matured.action.into()),
                        ("reward", matured.reward.into()),
                    ],
                );
                self.agent.observe(matured);
            }
        }

        if t >= self.max_iterations {
            emit_decision(t, true, "budget-exhausted");
            return true;
        }
        if t < self.min_iterations {
            self.last = Some((state, CONTINUE));
            emit_decision(t, false, "warmup");
            return false;
        }
        // Guard rail: while a large share of all gain arrived within the
        // last five iterations, the curve is still climbing — do not even
        // consult the stop head (it was trained for the
        // diminishing-returns regime).
        let patience = 0.35 * (self.step_cost / self.effective_step_cost()).clamp(0.5, 3.0);
        if state[2] > patience.min(0.9) {
            self.last = Some((state, CONTINUE));
            emit_decision(t, false, "guard-rail");
            return false;
        }

        let action = self.agent.best_action(&state);
        self.last = Some((state, action));
        let verdict = action == STOP;
        emit_decision(t, verdict, "policy");
        verdict
    }
}

/// Emit the per-generation `stop.decision` trace event for the RL stopper,
/// tagging *which* internal branch produced the verdict (budget, warm-up,
/// guard rail, or the learned policy).
fn emit_decision(iteration: u32, stop: bool, basis: &'static str) {
    trace::event(
        "stop.decision",
        vec![
            ("stopper", "tunio-rl-early-stop".into()),
            ("iteration", iteration.into()),
            ("stop", stop.into()),
            ("basis", basis.into()),
        ],
    );
}

/// Serializable snapshot of an [`EarlyStopAgent`]'s learned policy.
#[derive(serde::Serialize, serde::Deserialize)]
pub struct EarlyStopState {
    /// Q-network weights (JSON).
    pub agent: String,
    /// Campaign budget the agent was trained for.
    pub max_iterations: u32,
}

impl EarlyStopAgent {
    /// Snapshot the learned stop policy.
    pub fn save_state(&self) -> EarlyStopState {
        EarlyStopState {
            agent: self.agent.export_json(),
            max_iterations: self.max_iterations,
        }
    }

    /// Restore a snapshot taken with [`Self::save_state`].
    pub fn restore_state(&mut self, state: &EarlyStopState) -> Result<(), String> {
        self.agent.import_json(&state.agent)?;
        self.max_iterations = state.max_iterations;
        Ok(())
    }
}

/// Whether the average-reward series has stagnated: ≤5% improvement over
/// the last five entries (§III-D's offline-training stop criterion).
fn stagnated(avgs: &[f64]) -> bool {
    if avgs.len() < 6 {
        return false;
    }
    let now = avgs[avgs.len() - 1];
    let then = avgs[avgs.len() - 6];
    if then.abs() < 1e-12 {
        return false;
    }
    (now - then) / then.abs() <= 0.05
}

impl Stopper for EarlyStopAgent {
    fn should_stop(&mut self, iteration: u32, best_perf: f64) -> bool {
        self.decide(iteration, best_perf)
    }

    fn name(&self) -> &'static str {
        "tunio-rl-early-stop"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tunio_rl::LogCurve;

    fn curve_perf(t: u32) -> f64 {
        // Saturating log curve in "bytes/s".
        1e9 + 3e9 * ((1.0 + t as f64).ln() / 51f64.ln())
    }

    #[test]
    fn pretraining_stagnates_and_terminates() {
        let agent = EarlyStopAgent::pretrained(50, 1);
        assert!(agent.offline_episodes >= 240, "{}", agent.offline_episodes);
        assert!(agent.offline_episodes <= 2000);
    }

    #[test]
    fn stops_on_fully_saturated_curve_before_budget() {
        let mut agent = EarlyStopAgent::pretrained(50, 2);
        agent.begin_campaign();
        let mut stopped_at = None;
        for t in 1..=50 {
            // Saturate hard after iteration 20.
            let perf = curve_perf(t.min(20));
            if agent.should_stop(t, perf) {
                stopped_at = Some(t);
                break;
            }
        }
        let at = stopped_at.expect("must stop by the budget");
        assert!(at < 50, "stopped only at budget");
        assert!(at >= agent.min_iterations);
    }

    #[test]
    fn does_not_stop_during_strong_growth() {
        let mut agent = EarlyStopAgent::pretrained(50, 3);
        agent.begin_campaign();
        // Linear growth — marginal gain stays high throughout.
        for t in 1..=12 {
            let perf = 1e9 * t as f64;
            let stop = agent.should_stop(t, perf);
            if t < 10 {
                assert!(!stop, "stopped during growth at iteration {t}");
            }
        }
    }

    #[test]
    fn respects_hard_budget() {
        let mut agent = EarlyStopAgent::pretrained(10, 4);
        agent.begin_campaign();
        let mut stopped = false;
        for t in 1..=10 {
            if agent.should_stop(t, 1e9) {
                stopped = true;
                break;
            }
        }
        assert!(stopped, "must stop at the budget at latest");
    }

    #[test]
    fn survives_transient_dips_better_than_plateau_heuristics() {
        // A curve with a plateau from iterations 8–14 then resumed growth;
        // the agent should usually push past it (the paper's Fig 10a
        // behaviour). We require it not to stop *within* the plateau's
        // first two iterations.
        let curve = LogCurve {
            start: 1.0,
            gain: 3.0,
            rate: 0.4,
            max_iters: 50,
            dips: vec![],
            delay: 0,
        };
        let mut agent = EarlyStopAgent::pretrained(50, 5);
        agent.begin_campaign();
        let mut stop_at = None;
        for t in 1..=50u32 {
            let perf = if (8..=14).contains(&t) {
                curve.perf(8) * 1e9
            } else {
                curve.perf(t) * 1e9
            };
            if agent.should_stop(t, perf) {
                stop_at = Some(t);
                break;
            }
        }
        if let Some(at) = stop_at {
            assert!(at > 9, "stopped immediately in the plateau at {at}");
        }
    }

    #[test]
    fn begin_campaign_resets_history() {
        let mut agent = EarlyStopAgent::pretrained(50, 6);
        agent.begin_campaign();
        for t in 1..=8 {
            let _ = agent.should_stop(t, curve_perf(t));
        }
        assert!(!agent.history.is_empty());
        agent.begin_campaign();
        assert!(agent.history.is_empty());
    }

    #[test]
    fn stagnation_detector() {
        assert!(!stagnated(&[1.0, 1.1]));
        assert!(stagnated(&[1.0, 1.0, 1.0, 1.0, 1.0, 1.01]));
        assert!(!stagnated(&[1.0, 1.2, 1.5, 1.9, 2.4, 3.0]));
    }
}

#[cfg(test)]
mod production_runs_tests {
    use super::*;

    fn plateau_stop_iteration(agent: &mut EarlyStopAgent) -> u32 {
        agent.begin_campaign();
        for t in 1..=50u32 {
            // Log growth until 12, then a hard plateau.
            let perf = 1e9 + 2e9 * ((1.0 + t.min(12) as f64).ln() / 13f64.ln());
            if agent.should_stop(t, perf) {
                return t;
            }
        }
        50
    }

    #[test]
    fn more_expected_runs_never_stop_earlier() {
        let mut few = EarlyStopAgent::pretrained(50, 8);
        few.set_expected_production_runs(10);
        let mut many = EarlyStopAgent::pretrained(50, 8);
        many.set_expected_production_runs(10_000_000);
        let few_stop = plateau_stop_iteration(&mut few);
        let many_stop = plateau_stop_iteration(&mut many);
        assert!(
            many_stop >= few_stop,
            "many-runs agent stopped earlier ({many_stop}) than few-runs ({few_stop})"
        );
    }

    #[test]
    fn effective_cost_decreases_with_expected_runs() {
        let mut a = EarlyStopAgent::pretrained(20, 9);
        let base = a.effective_step_cost();
        a.set_expected_production_runs(1000);
        let reference = a.effective_step_cost();
        assert!(
            (reference - base).abs() < 1e-12,
            "1000 runs is the reference point"
        );
        a.set_expected_production_runs(1_000_000);
        assert!(a.effective_step_cost() < reference);
        a.set_expected_production_runs(10);
        assert!(a.effective_step_cost() > reference);
    }
}

#[cfg(test)]
mod online_learning_tests {
    use super::*;

    #[test]
    fn online_updates_flow_after_the_delay_window() {
        let mut agent = EarlyStopAgent::pretrained(30, 12);
        agent.begin_campaign();
        // Feed 10 iterations; transitions mature after the 5-step delay,
        // exercising the observe() path without panicking and leaving the
        // delay queue partially filled.
        for t in 1..=10u32 {
            let perf = 1e9 * (1.0 + (t as f64).ln());
            let _ = agent.should_stop(t, perf);
        }
        assert_eq!(agent.history.len(), 10);
        // A fresh campaign clears the queue and history.
        agent.begin_campaign();
        assert!(agent.history.is_empty());
    }
}
