//! # tunio — an AI-powered framework for optimizing HPC I/O
//!
//! A from-scratch Rust reproduction of *TunIO* (Rajesh et al., IPDPS
//! 2024): a set of three optimizations that attach to any iterative I/O
//! tuning pipeline to balance tuning cost against performance gain.
//!
//! * **Application I/O Discovery** (re-exported from [`tunio_discovery`])
//!   reduces an application to its I/O kernel so objective evaluations are
//!   cheap (§III-B).
//! * **Smart Configuration Generation** ([`smart_config`]) — an RL agent
//!   (contextual-bandit state observer + NN Q-learning subset picker,
//!   pre-trained offline with parameter sweeps + PCA) that selects the
//!   high-impact parameter subset to tune each generation (§III-C).
//! * **Early Stopping** ([`early_stop`]) — an RL agent pre-trained on
//!   synthetic log-shaped tuning curves that stops the pipeline when
//!   returns diminish (§III-D).
//!
//! [`api::TunIo`] exposes the paper's Table I interface (`stop`,
//! `discover_io`, `subset_picker`); [`pipeline`] assembles the end-to-end
//! tuning campaigns evaluated in §IV; [`roti`] implements the Return on
//! Tuning Investment metric; [`viability`] the production-lifecycle model
//! of Fig 12.
//!
//! ## Quickstart
//!
//! ```
//! use tunio::pipeline::{run_campaign, CampaignSpec, PipelineKind};
//! use tunio_workloads::{hacc, Variant};
//!
//! let spec = CampaignSpec {
//!     app: hacc(),
//!     variant: Variant::Kernel,
//!     kind: PipelineKind::TunIo,
//!     max_iterations: 10,
//!     population: 6,
//!     seed: 7,
//!     large_scale: false,
//! };
//! let outcome = run_campaign(&spec).expect("fault-free campaign");
//! assert!(outcome.trace.best_perf >= outcome.trace.default_perf);
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod checkpoint;
pub mod early_stop;
pub mod perf;
pub mod pipeline;
pub mod roti;
pub mod session;
pub mod smart_config;
pub mod viability;

pub use api::TunIo;
pub use early_stop::EarlyStopAgent;
pub use roti::{roti_curve, RotiPoint};
pub use session::TuningSession;
pub use smart_config::SmartConfigAgent;

// Re-export the component crates under one roof for downstream users.
pub use tunio_discovery as discovery;
pub use tunio_iosim as iosim;
pub use tunio_params as params;
pub use tunio_tuner as tuner;
pub use tunio_workloads as workloads;
