//! The TunIO library interface (paper Table I).
//!
//! | Function        | Input                                   | Output             |
//! |-----------------|-----------------------------------------|--------------------|
//! | `stop`          | current_iteration, best_perf            | stop / continue    |
//! | `discover_io`   | source_code, options                    | I/O kernel         |
//! | `subset_picker` | perf, current_parameter_set             | next_parameter_set |
//!
//! The components are separable — each can be attached to any tuning
//! pipeline independently — but [`TunIo`] bundles them for convenience.

use crate::early_stop::EarlyStopAgent;
use crate::smart_config::SmartConfigAgent;
use tunio_cminus::parser::ParseError;
use tunio_discovery::{DiscoveryOptions, IoKernel};
use tunio_iosim::ClusterSpec;
use tunio_params::{ParamId, ParameterSpace};

/// Early-stopping verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopDecision {
    /// Keep tuning.
    Continue,
    /// Stop and return the best configuration found.
    Stop,
}

/// The assembled TunIO framework: both RL agents, pre-trained offline.
#[derive(Debug)]
pub struct TunIo {
    /// The Smart Configuration Generation component.
    pub smart_config: SmartConfigAgent,
    /// The Early Stopping component.
    pub early_stop: EarlyStopAgent,
    iteration_guess: u32,
}

impl TunIo {
    /// Build a fully pre-trained TunIO instance for a target machine and
    /// tuning budget. Offline training runs the representative-kernel
    /// sweep (+PCA) and the log-curve early-stop training.
    pub fn pretrained(
        space: &ParameterSpace,
        cluster: ClusterSpec,
        max_iterations: u32,
        seed: u64,
    ) -> Self {
        let mut early_stop = EarlyStopAgent::pretrained(max_iterations, seed);
        early_stop.begin_campaign();
        TunIo {
            smart_config: SmartConfigAgent::pretrained(space, cluster, seed),
            early_stop,
            iteration_guess: 0,
        }
    }

    /// Table I `stop`: should the pipeline stop after this iteration?
    pub fn stop(&mut self, current_iteration: u32, best_perf: f64) -> StopDecision {
        if self.early_stop.decide(current_iteration, best_perf) {
            StopDecision::Stop
        } else {
            StopDecision::Continue
        }
    }

    /// Table I `discover_io`: reduce source code to its I/O kernel.
    /// (Stateless — also available as [`tunio_discovery::discover_io`].)
    pub fn discover_io(source: &str, options: &DiscoveryOptions) -> Result<IoKernel, ParseError> {
        tunio_discovery::discover_io(source, options)
    }

    /// Lint application source with the dataflow analyses that back
    /// `discover_io`'s default slicing path (dead stores, unreachable
    /// code, possibly-uninitialized reads, I/O inside hot loops). The
    /// same diagnostics are available from the `tunio-lint` binary.
    pub fn lint_source(source: &str) -> Result<Vec<tunio_analysis::Diagnostic>, ParseError> {
        let program = tunio_cminus::parser::parse(source)?;
        Ok(tunio_analysis::lint_program(
            &program,
            &tunio_analysis::LintOptions::default(),
        ))
    }

    /// Table I `subset_picker`: given the perf achieved with the current
    /// parameter set, pick the next parameter set to tune.
    pub fn subset_picker(&mut self, perf: f64, current_parameter_set: &[ParamId]) -> Vec<ParamId> {
        // Credit the current set with the observed perf, then pick.
        self.smart_config.reward(current_parameter_set.len(), perf);
        self.iteration_guess += 1;
        self.smart_config
            .pick(perf, current_parameter_set.len(), self.iteration_guess)
    }

    /// Persist both agents' learned state to a JSON file, so future
    /// processes skip offline pre-training (`pretrained` re-runs the
    /// sweep and log-curve training; `load_into` restores in
    /// milliseconds).
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let state = (self.smart_config.save_state(), self.early_stop.save_state());
        let text = serde_json::to_string(&state)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, text)
    }

    /// Restore agent state saved with [`Self::save`] into this instance.
    pub fn load_into(&mut self, path: &std::path::Path) -> std::io::Result<()> {
        let text = std::fs::read_to_string(path)?;
        let (smart, stop): (
            crate::smart_config::SmartConfigState,
            crate::early_stop::EarlyStopState,
        ) = serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        self.smart_config
            .restore_state(&smart)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        self.early_stop
            .restore_state(&stop)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tunio_cminus::samples;

    fn tunio() -> TunIo {
        TunIo::pretrained(
            &ParameterSpace::tunio_default(),
            ClusterSpec::cori_4node(),
            20,
            13,
        )
    }

    #[test]
    fn stop_api_continues_then_stops_by_budget() {
        let mut t = tunio();
        let mut decisions = Vec::new();
        for i in 1..=20 {
            let d = t.stop(i, 1e9); // flat perf: should stop before 20
            decisions.push(d);
            if d == StopDecision::Stop {
                break;
            }
        }
        assert_eq!(*decisions.last().unwrap(), StopDecision::Stop);
        assert!(decisions.len() > 1, "must not stop instantly");
    }

    #[test]
    fn discover_io_api_matches_component() {
        let k = TunIo::discover_io(samples::VPIC_IO, &DiscoveryOptions::default()).unwrap();
        assert!(k.has_io());
        assert!(k.source.contains("H5Dwrite"));
    }

    #[test]
    fn discover_io_default_path_is_flow_sensitive() {
        // The default marking is the dataflow slice: an overwritten store
        // feeding nothing is dropped from the kernel.
        let src = "void f(int n) { double * b = alloc(n); b = stale(n); b = fresh(n); \
                   H5Dwrite(d, b); }";
        let k = TunIo::discover_io(src, &DiscoveryOptions::default()).unwrap();
        assert!(!k.source.contains("stale"), "{}", k.source);
        assert!(k.source.contains("fresh"));
    }

    #[test]
    fn lint_source_reports_spanned_diagnostics() {
        let diags = TunIo::lint_source(samples::VPIC_IO).unwrap();
        assert!(
            diags
                .iter()
                .any(|d| d.kind == tunio_analysis::LintKind::DeadStore),
            "{diags:?}"
        );
        assert!(diags.iter().all(|d| d.span.is_real()));
        assert!(TunIo::lint_source("void f( {").is_err());
    }

    #[test]
    fn subset_picker_api_returns_nonempty_sets() {
        let mut t = tunio();
        let mut current = ParamId::ALL.to_vec();
        for step in 0..6 {
            let next = t.subset_picker(1e9 + step as f64 * 1e8, &current);
            assert!(!next.is_empty() && next.len() <= 12);
            current = next;
        }
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use tunio_iosim::ClusterSpec;

    #[test]
    fn tunio_state_round_trips_through_disk() {
        let space = ParameterSpace::tunio_default();
        let a = TunIo::pretrained(&space, ClusterSpec::cori_4node(), 20, 17);
        let path = std::env::temp_dir().join("tunio_agents_test.json");
        a.save(&path).unwrap();

        let mut b = TunIo::pretrained(&space, ClusterSpec::cori_4node(), 20, 999);
        let ranking_before = b.smart_config.analysis.ranking.clone();
        b.load_into(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(
            b.smart_config.analysis.ranking,
            a.smart_config.analysis.ranking
        );
        // The restore genuinely changed something (different seeds give
        // different rankings with overwhelming probability — tolerate the
        // rare tie by checking scores instead).
        let _ = ranking_before;
        for (x, y) in b
            .smart_config
            .analysis
            .scores
            .iter()
            .zip(&a.smart_config.analysis.scores)
        {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
