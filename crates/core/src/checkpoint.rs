//! Campaign checkpointing: a JSONL write-ahead log of completed
//! generations, enabling kill-and-resume with bitwise-identical outcomes.
//!
//! ## Format
//!
//! Line 1 is a header object binding the checkpoint to its campaign spec
//! (app, variant, pipeline kind, budget, population size, seed, scale).
//! Every following line is one completed generation carrying:
//!
//! * the generation number and its [`IterationRecord`],
//! * the GA RNG state after that generation's breeding,
//! * the evaluated population and the best genome so far,
//! * every memo-cache entry first *charged* during the generation
//!   (report, perf, per-layer profile) — the [`tunio_tuner::EvalEngine`]
//!   journal.
//!
//! Each generation is appended as one `\n`-terminated line and flushed
//! before the campaign proceeds, so the log never claims work that was
//! not finished. A process killed mid-write leaves a torn final line;
//! [`load`] detects and drops it, surrendering at most the one
//! generation that was being written.
//!
//! ## Resume strategy: replay, not state restoration
//!
//! The RL early stopper and the smart-configuration agent carry neural
//! state that has no serialization, so a checkpoint cannot simply be
//! "loaded". Instead, a resumed campaign re-runs from generation 1 with
//! the WAL's cache entries preloaded into the engine
//! ([`tunio_tuner::EvalEngine::preload`]). Replayed generations are then
//! served from the cache with full miss bookkeeping in the original
//! serial order — identical costs, counters and profile accumulator, and
//! **no simulator time** — while the per-generation RNG states stored
//! here let the resumed run prove it retraced the original trajectory
//! before extending the log. Evaluations that *failed* in the original
//! run were never journaled; the resumed run re-draws their faults
//! deterministically and fails them identically.

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write as IoWrite};
use std::path::{Path, PathBuf};
use tunio_iosim::Profile;
use tunio_tuner::{CacheEntry, IterationRecord};

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u64 = 1;

/// Identity of the campaign a checkpoint belongs to. A resume refuses to
/// run against a checkpoint whose header disagrees with the requested
/// spec — replaying another campaign's cache would silently corrupt the
/// results.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointHeader {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u64,
    /// Application name.
    pub app: String,
    /// Workload variant (`Full` / `Kernel` / `Reduced`).
    pub variant: String,
    /// Pipeline kind label.
    pub kind: String,
    /// Generation budget.
    pub max_iterations: u32,
    /// GA population size.
    pub population: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Cluster scale flag.
    pub large_scale: bool,
}

/// One completed generation in the write-ahead log.
#[derive(Debug, Clone)]
pub struct CheckpointGeneration {
    /// Generation number (1-based, contiguous from 1).
    pub iteration: u32,
    /// GA RNG state after this generation's breeding.
    pub rng_state: [u64; 4],
    /// The generation's trace record.
    pub record: IterationRecord,
    /// Genomes of the population evaluated this generation.
    pub population: Vec<Vec<usize>>,
    /// Best genome found so far.
    pub best_genes: Vec<usize>,
    /// True when this generation ended the campaign.
    pub stopped: bool,
    /// Memo-cache entries first charged during this generation.
    pub entries: Vec<CacheEntry>,
    /// Serialized search-strategy state after this generation, for
    /// campaigns run through the pluggable-strategy scheduler. `None`
    /// for classic GA campaigns — the field is omitted from their WAL
    /// lines, keeping the on-disk format byte-compatible.
    pub strategy_state: Option<String>,
}

/// Why a checkpoint could not be used.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem-level failure.
    Io(io::Error),
    /// The file is not a checkpoint (bad header / wrong version).
    BadHeader(String),
    /// The stored header disagrees with the campaign being resumed.
    SpecMismatch {
        /// Which header field disagreed.
        field: &'static str,
        /// The value stored in the checkpoint.
        stored: String,
        /// The value the resuming campaign expected.
        current: String,
    },
    /// A replayed generation did not retrace the recorded trajectory.
    Diverged {
        /// The generation at which replay and record disagree.
        iteration: u32,
        /// What disagreed.
        why: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadHeader(why) => write!(f, "not a usable checkpoint: {why}"),
            CheckpointError::SpecMismatch {
                field,
                stored,
                current,
            } => write!(
                f,
                "checkpoint belongs to a different campaign: {field} is {stored}, expected {current}"
            ),
            CheckpointError::Diverged { iteration, why } => write!(
                f,
                "resumed campaign diverged from checkpoint at generation {iteration}: {why}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

// ---------------------------------------------------------------------
// Value construction / extraction helpers. The WAL is built from manual
// `Value`s so the on-disk format is explicit and version-checkable, not
// an accident of derive layout.

fn uints(xs: impl IntoIterator<Item = u64>) -> Value {
    Value::Array(xs.into_iter().map(Value::UInt).collect())
}

fn genes_value(genes: &[usize]) -> Value {
    uints(genes.iter().map(|&g| g as u64))
}

fn get<'v>(v: &'v Value, key: &str, line: &str) -> Result<&'v Value, CheckpointError> {
    v.get(key)
        .ok_or_else(|| CheckpointError::BadHeader(format!("missing `{key}` in {line} line")))
}

fn get_u64(v: &Value, key: &str, line: &str) -> Result<u64, CheckpointError> {
    get(v, key, line)?
        .as_u64()
        .ok_or_else(|| CheckpointError::BadHeader(format!("`{key}` is not an integer")))
}

fn get_f64(v: &Value, key: &str, line: &str) -> Result<f64, CheckpointError> {
    get(v, key, line)?
        .as_f64()
        .ok_or_else(|| CheckpointError::BadHeader(format!("`{key}` is not a number")))
}

fn get_str<'v>(v: &'v Value, key: &str, line: &str) -> Result<&'v str, CheckpointError> {
    get(v, key, line)?
        .as_str()
        .ok_or_else(|| CheckpointError::BadHeader(format!("`{key}` is not a string")))
}

fn get_bool(v: &Value, key: &str, line: &str) -> Result<bool, CheckpointError> {
    match get(v, key, line)? {
        Value::Bool(b) => Ok(*b),
        _ => Err(CheckpointError::BadHeader(format!("`{key}` is not a bool"))),
    }
}

fn get_array<'v>(v: &'v Value, key: &str, line: &str) -> Result<&'v [Value], CheckpointError> {
    match get(v, key, line)? {
        Value::Array(items) => Ok(items),
        _ => Err(CheckpointError::BadHeader(format!(
            "`{key}` is not an array"
        ))),
    }
}

fn parse_genes(v: &Value) -> Result<Vec<usize>, CheckpointError> {
    match v {
        Value::Array(items) => items
            .iter()
            .map(|g| {
                g.as_u64()
                    .map(|g| g as usize)
                    .ok_or_else(|| CheckpointError::BadHeader("gene is not an integer".into()))
            })
            .collect(),
        _ => Err(CheckpointError::BadHeader("genome is not an array".into())),
    }
}

impl CheckpointHeader {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("version".into(), Value::UInt(self.version)),
            ("app".into(), Value::String(self.app.clone())),
            ("variant".into(), Value::String(self.variant.clone())),
            ("kind".into(), Value::String(self.kind.clone())),
            (
                "max_iterations".into(),
                Value::UInt(self.max_iterations as u64),
            ),
            ("population".into(), Value::UInt(self.population as u64)),
            ("seed".into(), Value::UInt(self.seed)),
            ("large_scale".into(), Value::Bool(self.large_scale)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, CheckpointError> {
        Ok(CheckpointHeader {
            version: get_u64(v, "version", "header")?,
            app: get_str(v, "app", "header")?.to_string(),
            variant: get_str(v, "variant", "header")?.to_string(),
            kind: get_str(v, "kind", "header")?.to_string(),
            max_iterations: get_u64(v, "max_iterations", "header")? as u32,
            population: get_u64(v, "population", "header")? as usize,
            seed: get_u64(v, "seed", "header")?,
            large_scale: get_bool(v, "large_scale", "header")?,
        })
    }

    /// Error unless `self` (stored) matches `other` (the resuming
    /// campaign) field-for-field.
    pub fn ensure_matches(&self, other: &CheckpointHeader) -> Result<(), CheckpointError> {
        let fields: [(&'static str, String, String); 8] = [
            (
                "version",
                self.version.to_string(),
                other.version.to_string(),
            ),
            ("app", self.app.clone(), other.app.clone()),
            ("variant", self.variant.clone(), other.variant.clone()),
            ("kind", self.kind.clone(), other.kind.clone()),
            (
                "max_iterations",
                self.max_iterations.to_string(),
                other.max_iterations.to_string(),
            ),
            (
                "population",
                self.population.to_string(),
                other.population.to_string(),
            ),
            ("seed", self.seed.to_string(), other.seed.to_string()),
            (
                "large_scale",
                self.large_scale.to_string(),
                other.large_scale.to_string(),
            ),
        ];
        for (field, stored, current) in fields {
            if stored != current {
                return Err(CheckpointError::SpecMismatch {
                    field,
                    stored,
                    current,
                });
            }
        }
        Ok(())
    }
}

fn record_value(r: &IterationRecord) -> Value {
    Value::Object(vec![
        ("iteration".into(), Value::UInt(r.iteration as u64)),
        ("best_perf".into(), Value::Float(r.best_perf)),
        (
            "generation_best_perf".into(),
            Value::Float(r.generation_best_perf),
        ),
        ("cost_s".into(), Value::Float(r.cost_s)),
        (
            "cumulative_cost_s".into(),
            Value::Float(r.cumulative_cost_s),
        ),
        ("subset_size".into(), Value::UInt(r.subset_size as u64)),
    ])
}

fn record_from_value(v: &Value) -> Result<IterationRecord, CheckpointError> {
    Ok(IterationRecord {
        iteration: get_u64(v, "iteration", "record")? as u32,
        best_perf: get_f64(v, "best_perf", "record")?,
        generation_best_perf: get_f64(v, "generation_best_perf", "record")?,
        cost_s: get_f64(v, "cost_s", "record")?,
        cumulative_cost_s: get_f64(v, "cumulative_cost_s", "record")?,
        subset_size: get_u64(v, "subset_size", "record")? as usize,
    })
}

fn entry_value(e: &CacheEntry) -> Result<Value, CheckpointError> {
    // Profile serializes through its canonical JSON form; floats use
    // shortest-round-trip formatting, so the replay is bitwise exact.
    let profile: Value = serde_json::from_str(&e.profile.to_json())
        .map_err(|err| CheckpointError::BadHeader(format!("profile serialization: {err:?}")))?;
    let mut fields = vec![
        ("key".into(), genes_value(&e.key)),
        ("report".into(), e.report.to_value()),
        ("perf".into(), Value::Float(e.perf)),
        ("profile".into(), profile),
    ];
    // Racing moments travel with the entry: (sample count, Welford M2),
    // with the mean already stored as `perf`. Fixed-repeat entries omit
    // both fields, keeping their WAL lines byte-identical to before
    // racing existed (same pattern as `strategy_state`).
    if e.samples > 0 {
        fields.push(("samples".into(), Value::UInt(e.samples as u64)));
        fields.push(("m2".into(), Value::Float(e.m2)));
    }
    Ok(Value::Object(fields))
}

fn entry_from_value(v: &Value) -> Result<CacheEntry, CheckpointError> {
    let report = Deserialize::from_value(get(v, "report", "entry")?)
        .map_err(|e| CheckpointError::BadHeader(format!("bad report in entry: {e}")))?;
    let profile_text = serde_json::to_string(get(v, "profile", "entry")?)
        .map_err(|e| CheckpointError::BadHeader(format!("profile in entry: {e:?}")))?;
    let profile = Profile::from_json(&profile_text).map_err(CheckpointError::BadHeader)?;
    let samples = match v.get("samples") {
        None => 0,
        Some(s) => s
            .as_u64()
            .ok_or_else(|| CheckpointError::BadHeader("`samples` is not an integer".into()))?
            as u32,
    };
    let m2 = if samples > 0 {
        get_f64(v, "m2", "entry")?
    } else {
        0.0
    };
    Ok(CacheEntry {
        key: parse_genes(get(v, "key", "entry")?)?,
        report,
        perf: get_f64(v, "perf", "entry")?,
        profile,
        samples,
        m2,
    })
}

impl CheckpointGeneration {
    fn to_value(&self) -> Result<Value, CheckpointError> {
        let entries = self
            .entries
            .iter()
            .map(entry_value)
            .collect::<Result<Vec<Value>, _>>()?;
        let mut fields = vec![
            ("iteration".into(), Value::UInt(self.iteration as u64)),
            ("rng_state".into(), uints(self.rng_state)),
            ("record".into(), record_value(&self.record)),
            (
                "population".into(),
                Value::Array(self.population.iter().map(|g| genes_value(g)).collect()),
            ),
            ("best_genes".into(), genes_value(&self.best_genes)),
            ("stopped".into(), Value::Bool(self.stopped)),
            ("entries".into(), Value::Array(entries)),
        ];
        if let Some(state) = &self.strategy_state {
            fields.push(("strategy_state".into(), Value::String(state.clone())));
        }
        Ok(Value::Object(fields))
    }

    fn from_value(v: &Value) -> Result<Self, CheckpointError> {
        let state = get_array(v, "rng_state", "generation")?;
        if state.len() != 4 {
            return Err(CheckpointError::BadHeader(
                "rng_state must have 4 words".into(),
            ));
        }
        let mut rng_state = [0u64; 4];
        for (slot, word) in rng_state.iter_mut().zip(state) {
            *slot = word
                .as_u64()
                .ok_or_else(|| CheckpointError::BadHeader("rng word is not an integer".into()))?;
        }
        Ok(CheckpointGeneration {
            iteration: get_u64(v, "iteration", "generation")? as u32,
            rng_state,
            record: record_from_value(get(v, "record", "generation")?)?,
            population: get_array(v, "population", "generation")?
                .iter()
                .map(parse_genes)
                .collect::<Result<_, _>>()?,
            best_genes: parse_genes(get(v, "best_genes", "generation")?)?,
            stopped: get_bool(v, "stopped", "generation")?,
            entries: get_array(v, "entries", "generation")?
                .iter()
                .map(entry_from_value)
                .collect::<Result<_, _>>()?,
            strategy_state: match v.get("strategy_state") {
                None => None,
                Some(s) => Some(
                    s.as_str()
                        .ok_or_else(|| {
                            CheckpointError::BadHeader("`strategy_state` is not a string".into())
                        })?
                        .to_string(),
                ),
            },
        })
    }
}

/// Append-only writer for the campaign WAL.
#[derive(Debug)]
pub struct CheckpointWriter {
    file: File,
}

impl CheckpointWriter {
    /// Start a fresh checkpoint: truncate `path` and write the header.
    pub fn create(path: &Path, header: &CheckpointHeader) -> Result<Self, CheckpointError> {
        let mut file = File::create(path)?;
        let line = serde_json::to_string(&header.to_value())
            .map_err(|e| CheckpointError::BadHeader(format!("{e:?}")))?;
        writeln!(file, "{line}")?;
        file.flush()?;
        Ok(CheckpointWriter { file })
    }

    /// Reopen an existing checkpoint for appending (after a resume has
    /// verified the stored prefix).
    pub fn append(path: &Path) -> Result<Self, CheckpointError> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(CheckpointWriter { file })
    }

    /// Rewrite a checkpoint to exactly `header` + `generations` and keep
    /// it open for appending. This is how a resume heals a WAL whose
    /// tail is a torn line: appending directly after a line with no
    /// trailing newline would merge the next generation into the
    /// garbage. The rewrite goes through a temp file renamed over the
    /// original, so a crash mid-heal loses nothing.
    pub fn rewrite(
        path: &Path,
        header: &CheckpointHeader,
        generations: &[CheckpointGeneration],
    ) -> Result<Self, CheckpointError> {
        let tmp = path.with_extension("jsonl.tmp");
        let mut writer = Self::create(&tmp, header)?;
        for g in generations {
            writer.write_generation(g)?;
        }
        std::fs::rename(&tmp, path)?;
        // The open handle follows the rename (same inode), so subsequent
        // appends land in the healed file.
        Ok(writer)
    }

    /// Append one completed generation and flush it to the OS before
    /// returning, so the campaign never outruns its log.
    pub fn write_generation(
        &mut self,
        generation: &CheckpointGeneration,
    ) -> Result<(), CheckpointError> {
        let line = serde_json::to_string(&generation.to_value()?)
            .map_err(|e| CheckpointError::BadHeader(format!("{e:?}")))?;
        writeln!(self.file, "{line}")?;
        self.file.flush()?;
        Ok(())
    }
}

/// Load a checkpoint: the header plus every intact generation line.
///
/// The last line is allowed to be torn (the process died mid-write); it
/// and anything after a gap in the iteration sequence are dropped, never
/// trusted. An unreadable *header* is an error — that file is not a
/// checkpoint.
pub fn load(path: &Path) -> Result<(CheckpointHeader, Vec<CheckpointGeneration>), CheckpointError> {
    let reader = BufReader::new(File::open(path)?);
    let mut lines = reader.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| CheckpointError::BadHeader("empty file".into()))??;
    let header_value: Value = serde_json::from_str(&header_line)
        .map_err(|e| CheckpointError::BadHeader(format!("unparseable header: {e:?}")))?;
    let header = CheckpointHeader::from_value(&header_value)?;
    if header.version != CHECKPOINT_VERSION {
        return Err(CheckpointError::BadHeader(format!(
            "version {} (this build reads {})",
            header.version, CHECKPOINT_VERSION
        )));
    }

    let mut generations: Vec<CheckpointGeneration> = Vec::new();
    for line in lines {
        let line = line?;
        // A torn or otherwise damaged line ends the trusted prefix: every
        // generation after it was logged later and cannot be validated.
        let Ok(value) = serde_json::from_str::<Value>(&line) else {
            break;
        };
        let Ok(generation) = CheckpointGeneration::from_value(&value) else {
            break;
        };
        if generation.iteration != generations.len() as u32 + 1 {
            break;
        }
        generations.push(generation);
    }
    Ok((header, generations))
}

/// One WAL in a scanned directory that this process can resume.
#[derive(Debug)]
pub struct ScannedWal {
    /// Path of the `.jsonl` file.
    pub path: PathBuf,
    /// Its validated header.
    pub header: CheckpointHeader,
    /// Intact generations in the trusted prefix (a torn tail has
    /// already been dropped by [`load`]).
    pub generations: usize,
    /// Whether the last trusted generation ended the campaign.
    pub finished: bool,
}

/// One WAL that must not be resumed, and why.
#[derive(Debug)]
pub struct QuarantinedWal {
    /// Path of the offending file.
    pub path: PathBuf,
    /// Human-readable reason (unreadable, corrupt header, a campaign
    /// this build cannot host, ...).
    pub reason: String,
}

/// Result of [`scan_dir`]: the partition of a WAL directory into
/// checkpoints a restarted service resumes and checkpoints it must set
/// aside.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Resumable checkpoints, sorted by file name.
    pub resumable: Vec<ScannedWal>,
    /// Everything else, sorted by file name, each with its reason.
    pub quarantined: Vec<QuarantinedWal>,
}

/// Scan a directory of campaign WALs, partitioning them into resumable
/// and quarantined. Startup recovery must never refuse to boot over one
/// bad file: a corrupt header, an unreadable file, or a checkpoint
/// written by a campaign this build cannot host (`validate` errs — e.g.
/// an unknown strategy label) quarantines that WAL and the scan moves
/// on. Only `.jsonl` files are considered; a torn *tail* is not grounds
/// for quarantine (it heals on resume, [`CheckpointWriter::rewrite`]).
///
/// `validate` receives each parsed header and errs with a reason when
/// the campaign it names cannot run here.
pub fn scan_dir(
    dir: &Path,
    validate: impl Fn(&CheckpointHeader) -> Result<(), String>,
) -> io::Result<WalScan> {
    let mut names: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
        .collect();
    names.sort();
    let mut scan = WalScan::default();
    for path in names {
        match load(&path) {
            Ok((header, generations)) => match validate(&header) {
                Ok(()) => scan.resumable.push(ScannedWal {
                    path,
                    finished: generations.last().is_some_and(|g| g.stopped),
                    generations: generations.len(),
                    header,
                }),
                Err(reason) => scan.quarantined.push(QuarantinedWal { path, reason }),
            },
            Err(e) => scan.quarantined.push(QuarantinedWal {
                path,
                reason: e.to_string(),
            }),
        }
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tunio_iosim::RunReport;

    fn header() -> CheckpointHeader {
        CheckpointHeader {
            version: CHECKPOINT_VERSION,
            app: "hacc".into(),
            variant: "Kernel".into(),
            kind: "TunIO".into(),
            max_iterations: 10,
            population: 6,
            seed: 42,
            large_scale: false,
        }
    }

    fn generation(iteration: u32) -> CheckpointGeneration {
        let mut profile = Profile::new();
        profile.add(tunio_iosim::Layer::LustreData, 0.125, 1e9, 3.0);
        CheckpointGeneration {
            iteration,
            rng_state: [u64::MAX, 1, 2, 0xDEAD_BEEF_0BAD_F00D],
            record: IterationRecord {
                iteration,
                best_perf: 1.25e9 + 0.1,
                generation_best_perf: 1.1e9,
                cost_s: 12.625,
                cumulative_cost_s: 12.625 * iteration as f64,
                subset_size: 12,
            },
            population: vec![vec![0; 12], vec![1, 0, 3, 0, 0, 2, 0, 0, 1, 0, 0, 5]],
            best_genes: vec![1, 0, 3, 0, 0, 2, 0, 0, 1, 0, 0, 5],
            stopped: iteration == 3,
            entries: vec![CacheEntry {
                key: vec![1, 0, 3, 0, 0, 2, 0, 0, 1, 0, 0, 5],
                report: RunReport {
                    elapsed_s: 12.625,
                    io_time_s: 10.0,
                    bytes_written: 50e9,
                    write_ops: 128.0,
                    ..RunReport::default()
                },
                perf: 1.1e9,
                profile,
                // Odd generations carry racing moments, even ones are
                // fixed-repeat entries (samples/m2 omitted on disk).
                samples: if iteration % 2 == 1 { 5 } else { 0 },
                m2: if iteration % 2 == 1 { 3.25e16 } else { 0.0 },
            }],
            strategy_state: if iteration == 2 {
                Some("{\"rng\":[1,2,3,4]}".into())
            } else {
                None
            },
        }
    }

    #[test]
    fn round_trips_bitwise() {
        let dir = std::env::temp_dir().join("tunio-ckpt-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.jsonl");
        let mut w = CheckpointWriter::create(&path, &header()).unwrap();
        for i in 1..=3 {
            w.write_generation(&generation(i)).unwrap();
        }
        drop(w);

        let (h, gens) = load(&path).unwrap();
        assert_eq!(h, header());
        assert_eq!(gens.len(), 3);
        for (i, g) in gens.iter().enumerate() {
            let want = generation(i as u32 + 1);
            assert_eq!(g.rng_state, want.rng_state);
            assert_eq!(g.record.best_perf, want.record.best_perf);
            assert_eq!(g.record.cost_s, want.record.cost_s);
            assert_eq!(g.population, want.population);
            assert_eq!(g.best_genes, want.best_genes);
            assert_eq!(g.stopped, want.stopped);
            assert_eq!(g.entries.len(), 1);
            assert_eq!(g.entries[0].key, want.entries[0].key);
            assert_eq!(g.entries[0].report, want.entries[0].report);
            assert_eq!(g.entries[0].perf, want.entries[0].perf);
            assert_eq!(g.entries[0].profile, want.entries[0].profile);
            assert_eq!(
                (g.entries[0].samples, g.entries[0].m2),
                (want.entries[0].samples, want.entries[0].m2),
                "racing moments must round-trip (and read 0 when omitted)"
            );
            assert_eq!(
                g.strategy_state, want.strategy_state,
                "strategy state must round-trip (and stay absent when None)"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn racing_free_entries_omit_the_moment_fields() {
        // Byte-compat: a fixed-repeat entry's WAL line must not mention
        // the racing fields at all — old logs and new logs of racing-free
        // campaigns are byte-identical.
        let plain = entry_value(&generation(2).entries[0]).unwrap();
        let line = serde_json::to_string(&plain).unwrap();
        assert!(!line.contains("samples"), "{line}");
        assert!(!line.contains("\"m2\""), "{line}");
        let raced = entry_value(&generation(1).entries[0]).unwrap();
        let line = serde_json::to_string(&raced).unwrap();
        assert!(line.contains("\"samples\":5"), "{line}");
        assert!(line.contains("\"m2\""), "{line}");
    }

    #[test]
    fn torn_final_line_is_dropped() {
        let dir = std::env::temp_dir().join("tunio-ckpt-torn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.jsonl");
        let mut w = CheckpointWriter::create(&path, &header()).unwrap();
        w.write_generation(&generation(1)).unwrap();
        w.write_generation(&generation(2)).unwrap();
        drop(w);
        // Simulate a process killed mid-append.
        let mut raw = std::fs::read_to_string(&path).unwrap();
        raw.push_str("{\"iteration\":3,\"rng_state\":[1,2");
        std::fs::write(&path, raw).unwrap();

        let (_, gens) = load(&path).unwrap();
        assert_eq!(gens.len(), 2, "the torn line must not be trusted");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn iteration_gap_ends_the_trusted_prefix() {
        let dir = std::env::temp_dir().join("tunio-ckpt-gap");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.jsonl");
        let mut w = CheckpointWriter::create(&path, &header()).unwrap();
        w.write_generation(&generation(1)).unwrap();
        w.write_generation(&generation(3)).unwrap(); // gap: no gen 2
        drop(w);
        let (_, gens) = load(&path).unwrap();
        assert_eq!(gens.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_mismatch_is_detected() {
        let stored = header();
        let mut other = header();
        other.seed = 43;
        let err = stored.ensure_matches(&other).unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::SpecMismatch { field: "seed", .. }
        ));
        assert!(stored.ensure_matches(&header()).is_ok());
    }

    /// ISSUE 8 satellite: startup recovery over a directory holding one
    /// good WAL, one with a torn tail, one corrupt beyond the header,
    /// and one from a strategy this "build" refuses — the scan must
    /// partition instead of refusing to boot.
    #[test]
    fn scan_dir_partitions_resumable_vs_quarantined() {
        let dir = std::env::temp_dir().join("tunio-ckpt-scan");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();

        // Good: header + 2 intact generations.
        let mut w = CheckpointWriter::create(&dir.join("a-good.jsonl"), &header()).unwrap();
        w.write_generation(&generation(1)).unwrap();
        w.write_generation(&generation(2)).unwrap();
        drop(w);

        // Torn tail: still resumable (heals on resume), one trusted gen.
        let torn = dir.join("b-torn.jsonl");
        let mut w = CheckpointWriter::create(&torn, &header()).unwrap();
        w.write_generation(&generation(1)).unwrap();
        drop(w);
        let mut raw = std::fs::read_to_string(&torn).unwrap();
        raw.push_str("{\"iteration\":2,\"rng_state\":[9,9");
        std::fs::write(&torn, raw).unwrap();

        // Corrupt: not a checkpoint at all.
        std::fs::write(dir.join("c-garbage.jsonl"), "not json at all\n").unwrap();

        // Wrong strategy: valid file, campaign this host rejects.
        let mut alien = header();
        alien.kind = "TunIO [strategy=alien]".into();
        drop(CheckpointWriter::create(&dir.join("d-alien.jsonl"), &alien).unwrap());

        // A non-jsonl bystander must be ignored entirely.
        std::fs::write(dir.join("notes.txt"), "hello\n").unwrap();

        let scan = scan_dir(&dir, |h| {
            if h.kind.contains("strategy=alien") {
                Err("unknown strategy `alien`".into())
            } else {
                Ok(())
            }
        })
        .unwrap();

        assert_eq!(scan.resumable.len(), 2, "{scan:?}");
        assert!(scan.resumable[0].path.ends_with("a-good.jsonl"));
        assert_eq!(scan.resumable[0].generations, 2);
        assert!(scan.resumable[1].path.ends_with("b-torn.jsonl"));
        assert_eq!(
            scan.resumable[1].generations, 1,
            "the torn tail is dropped, not quarantined"
        );
        assert_eq!(scan.quarantined.len(), 2, "{scan:?}");
        assert!(scan.quarantined[0].path.ends_with("c-garbage.jsonl"));
        assert!(scan.quarantined[0]
            .reason
            .contains("not a usable checkpoint"));
        assert!(scan.quarantined[1].path.ends_with("d-alien.jsonl"));
        assert!(scan.quarantined[1].reason.contains("alien"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_checkpoint_file_is_rejected() {
        let dir = std::env::temp_dir().join("tunio-ckpt-notckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("not_a_checkpoint.txt");
        std::fs::write(&path, "hello world\n").unwrap();
        assert!(matches!(load(&path), Err(CheckpointError::BadHeader(_))));
        std::fs::remove_file(&path).ok();
    }
}
