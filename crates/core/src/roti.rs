//! Return on Tuning Investment (RoTI).
//!
//! §IV Metrics: `RoTI(t) = (perf_achieved(t) − perf_achieved(0)) / t`,
//! where perf is in MB/s and `t` is minutes spent tuning — "an RoTI of
//! 40 MB/s per minute spent tuning would represent an increase in
//! bandwidth of 40 MB/s for each minute of tuning overhead".

use serde::Serialize;
use tunio_tuner::TuningTrace;

/// Bytes per megabyte (the paper reports MB/s).
const MB: f64 = 1_000_000.0;

/// One point of an RoTI curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RotiPoint {
    /// Generation number (1-based).
    pub iteration: u32,
    /// Cumulative tuning time, minutes.
    pub minutes: f64,
    /// Best perf so far, MB/s.
    pub perf_mbs: f64,
    /// RoTI at this point, MB/s per minute.
    pub roti: f64,
}

/// Compute RoTI at a single point.
///
/// ```
/// // Gaining 400 MB/s over ten minutes of tuning = 40 MB/s per minute.
/// assert_eq!(tunio::roti::roti(500e6, 100e6, 10.0), 40.0);
/// ```
pub fn roti(perf_now: f64, perf_initial: f64, minutes: f64) -> f64 {
    if minutes <= 0.0 {
        return 0.0;
    }
    ((perf_now - perf_initial) / MB) / minutes
}

/// RoTI curve of a tuning trace.
pub fn roti_curve(trace: &TuningTrace) -> Vec<RotiPoint> {
    trace
        .records
        .iter()
        .map(|r| {
            let minutes = r.cumulative_cost_s / 60.0;
            RotiPoint {
                iteration: r.iteration,
                minutes,
                perf_mbs: r.best_perf / MB,
                roti: roti(r.best_perf, trace.default_perf, minutes),
            }
        })
        .collect()
}

/// Peak RoTI over a trace and when it occurred. NaN-safe: points with a
/// non-finite RoTI (a corrupt trace record) are skipped, so a poisoned
/// generation can never be reported as the peak — `total_cmp` would
/// otherwise order NaN above every finite RoTI. Returns the first point
/// only when every point is non-finite.
pub fn peak_roti(trace: &TuningTrace) -> Option<RotiPoint> {
    let curve = roti_curve(trace);
    let finite = curve
        .iter()
        .filter(|p| p.roti.is_finite())
        .max_by(|a, b| a.roti.total_cmp(&b.roti))
        .cloned();
    finite.or_else(|| curve.into_iter().next())
}

/// Final RoTI (at campaign end).
pub fn final_roti(trace: &TuningTrace) -> f64 {
    roti_curve(trace).last().map(|p| p.roti).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tunio_params::ParameterSpace;
    use tunio_tuner::IterationRecord;

    fn fake_trace(perfs: &[f64], minutes_per_iter: f64) -> TuningTrace {
        let space = ParameterSpace::tunio_default();
        let records = perfs
            .iter()
            .enumerate()
            .map(|(i, &p)| IterationRecord {
                iteration: i as u32 + 1,
                best_perf: p,
                generation_best_perf: p,
                cost_s: minutes_per_iter * 60.0,
                cumulative_cost_s: minutes_per_iter * 60.0 * (i as f64 + 1.0),
                subset_size: 12,
            })
            .collect();
        TuningTrace {
            records,
            best_config: space.default_config(),
            best_perf: *perfs.last().unwrap(),
            default_perf: perfs[0],
            stopped_early: false,
            stopper_name: "test".into(),
        }
    }

    #[test]
    fn roti_formula_matches_definition() {
        // Gain of 400 MB/s over 10 minutes = 40 MB/s/min.
        assert!((roti(500e6, 100e6, 10.0) - 40.0).abs() < 1e-9);
        assert_eq!(roti(500e6, 100e6, 0.0), 0.0);
    }

    #[test]
    fn curve_has_one_point_per_iteration() {
        let t = fake_trace(&[1e8, 2e8, 3e8], 5.0);
        let c = roti_curve(&t);
        assert_eq!(c.len(), 3);
        assert_eq!(c[0].iteration, 1);
        assert!((c[2].minutes - 15.0).abs() < 1e-9);
    }

    #[test]
    fn log_shaped_curves_peak_then_decline() {
        // Perf saturates → RoTI rises then falls as minutes accumulate.
        let perfs: Vec<f64> = (1..=30)
            .map(|i| 1e8 + 1e9 * ((1.0 + i as f64).ln() / 31f64.ln()))
            .collect();
        let t = fake_trace(&perfs, 10.0);
        let c = roti_curve(&t);
        let peak = peak_roti(&t).unwrap();
        assert!(peak.iteration < 30, "peak at {}", peak.iteration);
        assert!(final_roti(&t) < peak.roti);
        assert!(c.iter().all(|p| p.roti >= 0.0));
    }

    /// Regression tests: `peak_roti` used `partial_cmp().unwrap()` and
    /// panicked on NaN perf; its `total_cmp` replacement then reported
    /// the NaN point as the peak (NaN sorts above every finite value).
    /// A corrupt record must never be the peak.
    #[test]
    fn peak_roti_skips_corrupt_records() {
        let t = fake_trace(&[1e8, f64::NAN, 3e8], 5.0);
        let peak = peak_roti(&t).expect("non-empty trace has a peak"); // panicked pre-fix
        assert_eq!(roti_curve(&t).len(), 3);
        assert!(peak.roti.is_finite(), "NaN record won the peak: {peak:?}");
        assert_eq!(peak.iteration, 3, "peak must be the best finite point");
    }

    #[test]
    fn all_corrupt_trace_still_reports_a_peak() {
        let t = fake_trace(&[f64::NAN, f64::NAN], 5.0);
        // Degenerate traces return the first point instead of None, so
        // report plumbing never loses the campaign.
        assert!(peak_roti(&t).is_some());
    }

    #[test]
    fn faster_tuning_gives_higher_roti_for_same_gain() {
        let fast = fake_trace(&[1e8, 5e8], 2.0);
        let slow = fake_trace(&[1e8, 5e8], 10.0);
        assert!(final_roti(&fast) > final_roti(&slow));
    }
}
