//! The tuning objective and its normalization.
//!
//! §III-C: `perf = (1-α)·BW_r + α·BW_w` where α is the fraction of bytes
//! written (computed by [`tunio_iosim::RunReport::perf`]); the RL reward
//! normalizes perf by `1 / (BW_single × num_nodes)` — the bandwidth one
//! node could achieve alone times the node count — so rewards are
//! machine-scale-free.

use tunio_iosim::ClusterSpec;

/// Normalizer for perf values: `1 / (BW_single × num_nodes)`.
///
/// `BW_single` is approximated by the per-node network injection
/// bandwidth, the ceiling on what a single node can push to storage.
pub fn perf_normalizer(cluster: &ClusterSpec) -> f64 {
    1.0 / (cluster.node_network_bw * cluster.nodes as f64)
}

/// Normalize a perf value to roughly `[0, 1]` for the given machine.
pub fn normalize_perf(perf: f64, cluster: &ClusterSpec) -> f64 {
    (perf * perf_normalizer(cluster)).clamp(0.0, 1.5)
}

/// The subset-picker reward (§III-C): normalized perf divided by the
/// normalized subset size, with both normalizations as in the paper —
/// rewarding configurations that achieve performance with *fewer* tuned
/// parameters.
pub fn subset_reward(
    perf: f64,
    cluster: &ClusterSpec,
    subset_len: usize,
    total_params: usize,
) -> f64 {
    let norm_perf = normalize_perf(perf, cluster);
    let norm_subset = subset_len.max(1) as f64 / total_params.max(1) as f64;
    norm_perf / norm_subset.max(1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizer_scales_with_machine() {
        let small = ClusterSpec::cori_4node();
        let big = ClusterSpec::cori_500node();
        assert!(perf_normalizer(&small) > perf_normalizer(&big));
    }

    #[test]
    fn normalized_perf_is_bounded() {
        let c = ClusterSpec::cori_4node();
        assert_eq!(normalize_perf(0.0, &c), 0.0);
        assert!(normalize_perf(1e15, &c) <= 1.5);
        let mid = normalize_perf(2.0 * 1024f64.powi(3), &c);
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn smaller_subsets_earn_higher_reward_for_same_perf() {
        let c = ClusterSpec::cori_4node();
        let perf = 2.0 * 1024f64.powi(3);
        let small = subset_reward(perf, &c, 3, 12);
        let large = subset_reward(perf, &c, 12, 12);
        assert!(small > large);
        assert!((small / large - 4.0).abs() < 1e-9);
    }
}
