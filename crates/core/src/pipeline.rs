//! End-to-end tuning campaigns (the pipelines compared in §IV).
//!
//! Campaigns run fault-free by default. [`CampaignOptions`] adds the
//! robustness machinery: a seeded [`FaultPlan`] for chaos runs, a
//! [`FailurePolicy`] governing retry/quarantine/penalty behaviour, and a
//! write-ahead-log checkpoint ([`crate::checkpoint`]) enabling
//! kill-and-resume with bitwise-identical outcomes.

use crate::checkpoint::{
    self, CheckpointError, CheckpointGeneration, CheckpointHeader, CheckpointWriter,
    CHECKPOINT_VERSION,
};
use crate::early_stop::EarlyStopAgent;
use crate::smart_config::SmartConfigAgent;
use serde::Serialize;
use std::path::{Path, PathBuf};
use tunio_iosim::{FaultPlan, Simulator};
use tunio_params::ParameterSpace;
use tunio_trace as trace;
use tunio_tuner::stoppers::NoStop;
use tunio_tuner::{
    AllParams, CampaignObserver, EvalEngine, FailurePolicy, GaConfig, GaTuner, GenerationSnapshot,
    HeuristicStop, ResilienceCounters, Stopper, SubsetProvider, TuningTrace,
};
use tunio_workloads::{AppSpec, Variant, Workload};

/// Which tuning pipeline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PipelineKind {
    /// HSTuner: all parameters, full budget (no early stop).
    HsTunerNoStop,
    /// HSTuner with the 5%/5-iteration heuristic stopper.
    HsTunerHeuristic,
    /// Full TunIO: Smart Configuration Generation + RL Early Stopping.
    TunIo,
    /// Ablation: Impact-First tuning only (no early stop) — Fig 9.
    ImpactFirstOnly,
    /// Ablation: RL Early Stopping only (all parameters) — Fig 10.
    RlStopOnly,
}

impl PipelineKind {
    /// Display name matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            PipelineKind::HsTunerNoStop => "HSTuner (No Stop)",
            PipelineKind::HsTunerHeuristic => "HSTuner (Heuristic Stop)",
            PipelineKind::TunIo => "TunIO",
            PipelineKind::ImpactFirstOnly => "Impact-First Tuning",
            PipelineKind::RlStopOnly => "TunIO Early Stopping",
        }
    }
}

/// A tuning campaign description.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Application under tuning.
    pub app: AppSpec,
    /// Full application, extracted kernel, or reduced kernel.
    pub variant: Variant,
    /// Pipeline to run.
    pub kind: PipelineKind,
    /// Generation budget.
    pub max_iterations: u32,
    /// GA population size.
    pub population: usize,
    /// Seed for everything (GA, agents, simulator noise).
    pub seed: u64,
    /// `false` = 4 nodes / 128 procs; `true` = 500 nodes / 1600 procs.
    pub large_scale: bool,
}

/// A completed campaign.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Pipeline that ran.
    pub kind: PipelineKind,
    /// The tuning trace (per-iteration perf and cost).
    pub trace: TuningTrace,
    /// Per-layer cost attribution pooled over every charged evaluation
    /// (see [`tunio_iosim::Profile`]).
    pub profile: tunio_iosim::Profile,
    /// What the failure machinery did: faults injected, retries,
    /// exhausted evaluations, quarantined keys, penalties served. All
    /// zero for a fault-free campaign.
    pub resilience: ResilienceCounters,
}

/// Robustness options for a campaign: fault injection, failure policy,
/// and checkpoint/resume. The default is a plain fault-free campaign
/// with no checkpoint — exactly the historical behaviour.
#[derive(Debug, Clone, Default)]
pub struct CampaignOptions {
    /// Write a JSONL write-ahead log of completed generations here.
    pub checkpoint: Option<PathBuf>,
    /// Resume from `checkpoint` if it already exists (a fresh file is
    /// started otherwise, so `resume: true` is always safe to pass).
    pub resume: bool,
    /// Attach a fault-injection plan to the simulator.
    pub fault_plan: Option<FaultPlan>,
    /// Override the engine's retry/quarantine/penalty policy.
    pub policy: Option<FailurePolicy>,
    /// Exit the process (status 0) once this generation's checkpoint
    /// line is durable — the kill switch for crash/resume testing.
    pub abort_after: Option<u32>,
}

/// Run one campaign with default options (fault-free, no checkpoint).
pub fn run_campaign(spec: &CampaignSpec) -> CampaignOutcome {
    run_campaign_opts(spec, &CampaignOptions::default())
        .expect("a campaign without a checkpoint has no failure path")
}

/// Run one campaign with explicit robustness options.
pub fn run_campaign_opts(
    spec: &CampaignSpec,
    opts: &CampaignOptions,
) -> Result<CampaignOutcome, CheckpointError> {
    let space = ParameterSpace::tunio_default();
    let mut sim = if spec.large_scale {
        Simulator::cori_500node(spec.seed)
    } else {
        Simulator::cori_4node(spec.seed)
    };
    if let Some(plan) = opts.fault_plan {
        sim = sim.with_fault_plan(plan);
    }
    let cluster = sim.cluster;
    let workload = Workload::new(spec.app.clone(), spec.variant);
    let mut engine = EvalEngine::new(sim, workload, space.clone(), 3);
    if let Some(policy) = opts.policy {
        engine = engine.with_policy(policy);
    }
    let mut tuner = GaTuner::new(GaConfig {
        population: spec.population,
        max_iterations: spec.max_iterations,
        seed: spec.seed,
        ..GaConfig::default()
    });

    let needs_smart = matches!(
        spec.kind,
        PipelineKind::TunIo | PipelineKind::ImpactFirstOnly
    );
    let needs_rl_stop = matches!(spec.kind, PipelineKind::TunIo | PipelineKind::RlStopOnly);

    let mut smart = if needs_smart {
        Some(SmartConfigAgent::pretrained(&space, cluster, spec.seed))
    } else {
        None
    };
    let mut all_params = AllParams;

    let mut stopper: Box<dyn Stopper> = if needs_rl_stop {
        let mut agent = EarlyStopAgent::pretrained(spec.max_iterations, spec.seed);
        agent.begin_campaign();
        Box::new(agent)
    } else {
        match spec.kind {
            PipelineKind::HsTunerHeuristic => Box::new(HeuristicStop::paper_default()),
            _ => Box::new(NoStop),
        }
    };

    let subsets: &mut dyn SubsetProvider = match &mut smart {
        Some(agent) => agent,
        None => &mut all_params,
    };

    let mut checkpointer = match &opts.checkpoint {
        Some(path) => Some(CheckpointObserver::open(
            path,
            opts.resume,
            &spec_header(spec),
            &engine,
            opts.abort_after,
        )?),
        None => None,
    };

    let span = campaign_span(spec);
    let trace = match checkpointer.as_mut() {
        Some(obs) => tuner.run_with_observer(&engine, stopper.as_mut(), subsets, obs),
        None => tuner.run(&engine, stopper.as_mut(), subsets),
    };
    if let Some(obs) = checkpointer {
        if let Some(e) = obs.error {
            return Err(e);
        }
    }
    finish_campaign(span, spec, &engine, &trace);
    Ok(CampaignOutcome {
        kind: spec.kind,
        trace,
        profile: engine.profile_snapshot(),
        resilience: engine.resilience(),
    })
}

/// The checkpoint header a spec binds to.
fn spec_header(spec: &CampaignSpec) -> CheckpointHeader {
    CheckpointHeader {
        version: CHECKPOINT_VERSION,
        app: spec.app.name.clone(),
        variant: format!("{:?}", spec.variant),
        kind: spec.kind.label().to_string(),
        max_iterations: spec.max_iterations,
        population: spec.population,
        seed: spec.seed,
        large_scale: spec.large_scale,
    }
}

/// What a resumed campaign must reproduce for one replayed generation
/// before it may extend the log.
struct ReplayCheck {
    rng_state: [u64; 4],
    best_perf: f64,
    cumulative_cost_s: f64,
    entry_keys: Vec<Vec<usize>>,
}

/// The write-ahead-log attachment: drains the engine's cache journal
/// after every generation, verifies replayed generations against the
/// stored trajectory, and appends new ones.
struct CheckpointObserver<'a> {
    engine: &'a EvalEngine,
    writer: CheckpointWriter,
    replay: Vec<ReplayCheck>,
    abort_after: Option<u32>,
    error: Option<CheckpointError>,
    written: trace::Counter,
}

impl<'a> CheckpointObserver<'a> {
    fn open(
        path: &Path,
        resume: bool,
        header: &CheckpointHeader,
        engine: &'a EvalEngine,
        abort_after: Option<u32>,
    ) -> Result<Self, CheckpointError> {
        engine.enable_journal();
        let (writer, replay) = if resume && path.exists() {
            let (stored, generations) = checkpoint::load(path)?;
            stored.ensure_matches(header)?;
            // Heal the file down to its trusted prefix (a kill mid-append
            // leaves a torn final line that must not be appended after).
            let writer = CheckpointWriter::rewrite(path, &stored, &generations)?;
            let mut replay = Vec::with_capacity(generations.len());
            for g in generations {
                replay.push(ReplayCheck {
                    rng_state: g.rng_state,
                    best_perf: g.record.best_perf,
                    cumulative_cost_s: g.record.cumulative_cost_s,
                    entry_keys: g.entries.iter().map(|e| e.key.clone()).collect(),
                });
                engine.preload(g.entries);
            }
            (writer, replay)
        } else {
            (CheckpointWriter::create(path, header)?, Vec::new())
        };
        Ok(CheckpointObserver {
            engine,
            writer,
            replay,
            abort_after,
            error: None,
            written: trace::counter("tunio.checkpoint.written"),
        })
    }

    /// The recorded trajectory vs what the replay actually did. `None`
    /// means this generation retraced faithfully.
    fn divergence(
        &self,
        snap: &GenerationSnapshot<'_>,
        entries_keys: &[&[usize]],
    ) -> Option<String> {
        let want = &self.replay[snap.iteration as usize - 1];
        if snap.rng_state != want.rng_state {
            return Some(format!(
                "rng state {:?} != recorded {:?}",
                snap.rng_state, want.rng_state
            ));
        }
        if snap.record.best_perf != want.best_perf {
            return Some(format!(
                "best perf {} != recorded {}",
                snap.record.best_perf, want.best_perf
            ));
        }
        if snap.record.cumulative_cost_s != want.cumulative_cost_s {
            return Some(format!(
                "cumulative cost {} != recorded {}",
                snap.record.cumulative_cost_s, want.cumulative_cost_s
            ));
        }
        if entries_keys.len() != want.entry_keys.len()
            || entries_keys
                .iter()
                .zip(&want.entry_keys)
                .any(|(got, want)| *got != want.as_slice())
        {
            return Some(format!(
                "{} cache entries charged, recorded {}",
                entries_keys.len(),
                want.entry_keys.len()
            ));
        }
        None
    }
}

impl CampaignObserver for CheckpointObserver<'_> {
    fn on_generation(&mut self, snap: &GenerationSnapshot<'_>) {
        if self.error.is_some() {
            return; // already failed; surfaced after the run
        }
        let entries = self.engine.drain_journal();
        if (snap.iteration as usize) <= self.replay.len() {
            // Replayed generation: already durable in the log. Verify the
            // resumed run retraced it instead of silently forking history.
            let keys: Vec<&[usize]> = entries.iter().map(|e| e.key.as_slice()).collect();
            if let Some(why) = self.divergence(snap, &keys) {
                self.error = Some(CheckpointError::Diverged {
                    iteration: snap.iteration,
                    why,
                });
            }
        } else {
            let generation = CheckpointGeneration {
                iteration: snap.iteration,
                rng_state: snap.rng_state,
                record: snap.record.clone(),
                population: snap.population.iter().map(|c| c.genes().to_vec()).collect(),
                best_genes: snap.best_config.genes().to_vec(),
                stopped: snap.stopped,
                entries,
            };
            match self.writer.write_generation(&generation) {
                Ok(()) => {
                    self.written.inc(1);
                    trace::event(
                        "checkpoint.written",
                        vec![
                            ("iteration", snap.iteration.into()),
                            ("entries", generation.entries.len().into()),
                            ("stopped", snap.stopped.into()),
                        ],
                    );
                }
                Err(e) => {
                    self.error = Some(e);
                    return;
                }
            }
        }
        if self.abort_after == Some(snap.iteration) {
            // Crash/resume test hook: this generation is durable; die the
            // way a preempted job does (no destructors, no final trace).
            eprintln!("aborting after generation {} (abort_after)", snap.iteration);
            std::process::exit(0);
        }
    }
}

/// Open the top-level `campaign` span carrying the campaign's identity.
fn campaign_span(spec: &CampaignSpec) -> trace::SpanGuard {
    trace::span(
        "campaign",
        vec![
            ("kind", spec.kind.label().into()),
            ("app", spec.app.name.as_str().into()),
            ("variant", format!("{:?}", spec.variant).into()),
            ("large_scale", spec.large_scale.into()),
            ("seed", spec.seed.into()),
        ],
    )
}

/// Close a campaign: emit the `campaign.done` summary event, flush the
/// metric registry into the trace, and drop the campaign span (which
/// records total wall time).
fn finish_campaign(
    span: trace::SpanGuard,
    spec: &CampaignSpec,
    engine: &EvalEngine,
    outcome: &TuningTrace,
) {
    if trace::enabled() {
        let minutes = outcome.total_cost_s() / 60.0;
        let resilience = engine.resilience();
        trace::event(
            "campaign.done",
            vec![
                ("kind", spec.kind.label().into()),
                ("app", spec.app.name.as_str().into()),
                ("best_perf", outcome.best_perf.into()),
                ("default_perf", outcome.default_perf.into()),
                ("iterations", outcome.iterations().into()),
                ("stopped_early", outcome.stopped_early.into()),
                ("stopper_name", outcome.stopper_name.as_str().into()),
                ("evaluations", engine.evaluations().into()),
                ("cache_hits", engine.cache_hits().into()),
                ("faults_injected", resilience.faults_injected.into()),
                ("retries", resilience.retries.into()),
                ("failed_evaluations", resilience.failed_evaluations.into()),
                ("quarantined_keys", resilience.quarantined_keys.into()),
                ("penalties_served", resilience.penalties_served.into()),
                ("total_cost_s", outcome.total_cost_s().into()),
                (
                    "final_roti",
                    crate::roti::roti(outcome.best_perf, outcome.default_perf, minutes).into(),
                ),
                (
                    "peak_roti",
                    crate::roti::peak_roti(outcome)
                        .map(|p| p.roti)
                        .unwrap_or(0.0)
                        .into(),
                ),
            ],
        );
        trace::flush_metrics();
    }
    drop(span);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tunio_workloads::hacc;

    fn spec(kind: PipelineKind, iters: u32) -> CampaignSpec {
        CampaignSpec {
            app: hacc(),
            variant: Variant::Kernel,
            kind,
            max_iterations: iters,
            population: 6,
            seed: 9,
            large_scale: false,
        }
    }

    #[test]
    fn hstuner_no_stop_uses_full_budget() {
        let out = run_campaign(&spec(PipelineKind::HsTunerNoStop, 8));
        assert_eq!(out.trace.iterations(), 8);
        assert!(!out.trace.stopped_early);
    }

    #[test]
    fn tunio_pipeline_improves_and_usually_stops_early() {
        let out = run_campaign(&spec(PipelineKind::TunIo, 30));
        assert!(out.trace.best_perf > out.trace.default_perf);
        assert!(out.trace.iterations() <= 30);
        assert_eq!(out.trace.stopper_name, "tunio-rl-early-stop");
    }

    #[test]
    fn impact_first_converges_in_fewer_iterations() {
        // Fig 9's headline: Impact-First tuning reaches the target
        // bandwidth in fewer iterations than tuning everything. Averaged
        // over seeds to smooth GA luck.
        let mut smart_total = 0u32;
        let mut plain_total = 0u32;
        for seed in [5, 21, 33] {
            let mut s = spec(PipelineKind::ImpactFirstOnly, 25);
            s.seed = seed;
            let mut p = spec(PipelineKind::HsTunerNoStop, 25);
            p.seed = seed;
            let smart = run_campaign(&s);
            let plain = run_campaign(&p);
            let target = 0.9 * plain.trace.best_perf.min(smart.trace.best_perf);
            let first_hit = |t: &TuningTrace| {
                t.records
                    .iter()
                    .find(|r| r.best_perf >= target)
                    .map(|r| r.iteration)
                    .unwrap_or(26)
            };
            smart_total += first_hit(&smart.trace);
            plain_total += first_hit(&plain.trace);
        }
        assert!(
            smart_total <= plain_total,
            "impact-first mean hit {smart_total}/3, plain {plain_total}/3"
        );
    }

    #[test]
    fn kernel_campaign_is_cheaper_than_full_app() {
        let mut k = spec(PipelineKind::HsTunerNoStop, 6);
        k.variant = Variant::Kernel;
        let mut f = spec(PipelineKind::HsTunerNoStop, 6);
        f.variant = Variant::Full;
        let kernel = run_campaign(&k);
        let full = run_campaign(&f);
        assert!(
            kernel.trace.total_cost_s() < full.trace.total_cost_s(),
            "kernel {} vs full {}",
            kernel.trace.total_cost_s(),
            full.trace.total_cost_s()
        );
    }

    #[test]
    fn campaign_outcome_carries_attribution_profile() {
        let out = run_campaign(&spec(PipelineKind::HsTunerNoStop, 5));
        let p = &out.profile;
        let total = p.total_time_s();
        assert!(total > 0.0, "campaign must charge some simulated time");
        // The layer partition is exact: io + compute + mds == total.
        let compute = p.get(tunio_iosim::Layer::Compute).self_s;
        let mds = p.get(tunio_iosim::Layer::Mds).self_s;
        let parts = p.io_time_s() + compute + mds;
        assert!(
            (parts - total).abs() < 1e-9 * total,
            "partition {parts} vs total {total}"
        );
        // A HACC checkpoint campaign spends real time in the data path.
        // (The kernel variant has no compute phases, so only I/O is required.)
        assert!(p.io_time_s() > 0.0);
    }

    #[test]
    fn labels_are_distinct() {
        let kinds = [
            PipelineKind::HsTunerNoStop,
            PipelineKind::HsTunerHeuristic,
            PipelineKind::TunIo,
            PipelineKind::ImpactFirstOnly,
            PipelineKind::RlStopOnly,
        ];
        let mut labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), kinds.len());
    }
}

/// Run a campaign with an existing, pre-trained [`crate::TunIo`] instance
/// whose agents carry their learning across campaigns — the paper's
/// "when the component is exposed to new applications, it can learn from
/// the new trends it sees" (§V-C). The early stopper's campaign-local
/// history is reset; everything learned (Q-networks, observer, impact
/// ranking) persists.
pub fn run_campaign_with(tunio: &mut crate::TunIo, spec: &CampaignSpec) -> CampaignOutcome {
    let space = ParameterSpace::tunio_default();
    let sim = if spec.large_scale {
        Simulator::cori_500node(spec.seed)
    } else {
        Simulator::cori_4node(spec.seed)
    };
    let workload = Workload::new(spec.app.clone(), spec.variant);
    let engine = EvalEngine::new(sim, workload, space, 3);
    let mut tuner = GaTuner::new(GaConfig {
        population: spec.population,
        max_iterations: spec.max_iterations,
        seed: spec.seed,
        ..GaConfig::default()
    });
    tunio.early_stop.max_iterations = spec.max_iterations;
    tunio.early_stop.begin_campaign();
    let crate::TunIo {
        smart_config,
        early_stop,
        ..
    } = tunio;
    let span = campaign_span(spec);
    let trace = tuner.run(&engine, early_stop, smart_config);
    finish_campaign(span, spec, &engine, &trace);
    CampaignOutcome {
        kind: PipelineKind::TunIo,
        trace,
        profile: engine.profile_snapshot(),
        resilience: engine.resilience(),
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;
    use tunio_workloads::hacc;

    fn spec(kind: PipelineKind, iters: u32, seed: u64) -> CampaignSpec {
        CampaignSpec {
            app: hacc(),
            variant: Variant::Kernel,
            kind,
            max_iterations: iters,
            population: 6,
            seed,
            large_scale: false,
        }
    }

    fn wal_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("tunio-pipeline-ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn assert_outcomes_identical(a: &CampaignOutcome, b: &CampaignOutcome) {
        assert_eq!(a.trace.records.len(), b.trace.records.len());
        for (x, y) in a.trace.records.iter().zip(&b.trace.records) {
            assert_eq!(x.best_perf, y.best_perf, "gen {}", x.iteration);
            assert_eq!(x.generation_best_perf, y.generation_best_perf);
            assert_eq!(x.cost_s, y.cost_s, "gen {}", x.iteration);
            assert_eq!(x.cumulative_cost_s, y.cumulative_cost_s);
            assert_eq!(x.subset_size, y.subset_size);
        }
        assert_eq!(a.trace.best_perf, b.trace.best_perf);
        assert_eq!(a.trace.default_perf, b.trace.default_perf);
        assert_eq!(
            a.trace.best_config.genes(),
            b.trace.best_config.genes(),
            "best configuration must be identical"
        );
        assert_eq!(a.trace.stopped_early, b.trace.stopped_early);
        assert_eq!(a.profile, b.profile, "profile accumulator must match");
    }

    /// Keep the header plus the first `k` generation lines, then append a
    /// torn partial line — exactly what a `kill -9` mid-append leaves.
    fn truncate_wal(path: &Path, k: usize) {
        let raw = std::fs::read_to_string(path).unwrap();
        let mut kept: Vec<&str> = raw.lines().take(1 + k).collect();
        assert_eq!(kept.len(), 1 + k, "WAL shorter than the kill point");
        let torn = "{\"iteration\":99,\"rng_state\":[123,45";
        kept.push(torn);
        std::fs::write(path, kept.join("\n")).unwrap();
    }

    #[test]
    fn checkpointed_campaign_is_bitwise_identical_to_plain() {
        let s = spec(PipelineKind::HsTunerNoStop, 6, 17);
        let plain = run_campaign(&s);
        let path = wal_path("plain-vs-ckpt.jsonl");
        let opts = CampaignOptions {
            checkpoint: Some(path.clone()),
            ..CampaignOptions::default()
        };
        let ckpt = run_campaign_opts(&s, &opts).unwrap();
        assert_outcomes_identical(&plain, &ckpt);
        assert_eq!(ckpt.resilience, ResilienceCounters::default());
        let (_, gens) = checkpoint::load(&path).unwrap();
        assert_eq!(gens.len(), 6, "one WAL line per generation");
        assert!(gens.last().unwrap().stopped);
        std::fs::remove_file(&path).ok();
    }

    /// The acceptance scenario: kill a campaign mid-run (simulated by
    /// truncating its WAL to the first k generations plus a torn line),
    /// resume it, and require the outcome to be identical to the
    /// uninterrupted run — including with the RL stopper and smart
    /// subset agents in the loop, whose state is rebuilt by replay.
    #[test]
    fn kill_mid_campaign_and_resume_reproduces_the_outcome() {
        let s = spec(PipelineKind::TunIo, 10, 23);
        let path = wal_path("kill-resume.jsonl");
        let opts = CampaignOptions {
            checkpoint: Some(path.clone()),
            ..CampaignOptions::default()
        };
        let uninterrupted = run_campaign_opts(&s, &opts).unwrap();
        let total = uninterrupted.trace.records.len();
        assert!(total >= 3, "need enough generations to kill mid-way");

        truncate_wal(&path, 2);
        let resumed = run_campaign_opts(
            &s,
            &CampaignOptions {
                checkpoint: Some(path.clone()),
                resume: true,
                ..CampaignOptions::default()
            },
        )
        .unwrap();
        assert_outcomes_identical(&uninterrupted, &resumed);
        assert_eq!(resumed.resilience, uninterrupted.resilience);

        // The resumed run must have healed the WAL back to full length.
        let (_, gens) = checkpoint::load(&path).unwrap();
        assert_eq!(gens.len(), total);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_is_a_noop_replay_when_the_campaign_already_finished() {
        let s = spec(PipelineKind::HsTunerHeuristic, 12, 29);
        let path = wal_path("finished-resume.jsonl");
        let opts = CampaignOptions {
            checkpoint: Some(path.clone()),
            resume: true,
            ..CampaignOptions::default()
        };
        let first = run_campaign_opts(&s, &opts).unwrap();
        let second = run_campaign_opts(&s, &opts).unwrap();
        assert_outcomes_identical(&first, &second);
        // A full replay never touches the simulator.
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_a_checkpoint_from_a_different_campaign() {
        let path = wal_path("mismatch.jsonl");
        let opts = |resume| CampaignOptions {
            checkpoint: Some(path.clone()),
            resume,
            ..CampaignOptions::default()
        };
        run_campaign_opts(&spec(PipelineKind::HsTunerNoStop, 3, 31), &opts(false)).unwrap();
        let err =
            run_campaign_opts(&spec(PipelineKind::HsTunerNoStop, 3, 32), &opts(true)).unwrap_err();
        assert!(
            matches!(err, CheckpointError::SpecMismatch { field: "seed", .. }),
            "got {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    /// Chaos + kill + resume: with a seeded fault plan active, the
    /// resumed campaign still reproduces the uninterrupted trace bitwise
    /// (failed evaluations re-draw identical faults; successful ones are
    /// replayed from the WAL).
    #[test]
    fn chaos_campaign_survives_kill_and_resume() {
        let s = spec(PipelineKind::HsTunerNoStop, 8, 37);
        let path = wal_path("chaos-resume.jsonl");
        let chaos = |resume| CampaignOptions {
            checkpoint: Some(path.clone()),
            resume,
            fault_plan: Some(FaultPlan::chaos(37, 0.15)),
            policy: Some(FailurePolicy {
                max_retries: 3,
                ..FailurePolicy::default()
            }),
            ..CampaignOptions::default()
        };
        let uninterrupted = run_campaign_opts(&s, &chaos(false)).unwrap();
        assert!(
            uninterrupted.resilience.faults_injected > 0,
            "the chaos plan must actually fire"
        );
        assert!(
            uninterrupted.trace.best_perf > 0.0,
            "campaign must converge to a real configuration under faults"
        );

        truncate_wal(&path, 3);
        let resumed = run_campaign_opts(&s, &chaos(true)).unwrap();
        // Resilience counters legitimately differ (replayed successes do
        // not re-run the simulator, so their fault draws never happen);
        // the campaign outcome itself must not.
        assert_outcomes_identical(&uninterrupted, &resumed);
        std::fs::remove_file(&path).ok();
    }
}

#[cfg(test)]
mod reuse_tests {
    use super::*;
    use crate::TunIo;
    use tunio_iosim::ClusterSpec;
    use tunio_workloads::{flash, hacc};

    #[test]
    fn one_tunio_instance_tunes_multiple_applications() {
        let space = ParameterSpace::tunio_default();
        let mut tunio = TunIo::pretrained(&space, ClusterSpec::cori_4node(), 15, 31);

        let mut spec = CampaignSpec {
            app: hacc(),
            variant: Variant::Kernel,
            kind: PipelineKind::TunIo,
            max_iterations: 15,
            population: 6,
            seed: 31,
            large_scale: false,
        };
        let first = run_campaign_with(&mut tunio, &spec);
        assert!(first.trace.best_perf > first.trace.default_perf);

        // Same agents, new application: learning carries over, history
        // does not.
        spec.app = flash();
        let second = run_campaign_with(&mut tunio, &spec);
        assert!(second.trace.best_perf > second.trace.default_perf);
        assert!(second.trace.iterations() <= 15);
    }
}
