//! End-to-end tuning campaigns (the pipelines compared in §IV).
//!
//! Campaigns run fault-free by default. [`CampaignOptions`] adds the
//! robustness machinery: a seeded [`FaultPlan`] for chaos runs, a
//! [`FailurePolicy`] governing retry/quarantine/penalty behaviour, and a
//! write-ahead-log checkpoint ([`crate::checkpoint`]) enabling
//! kill-and-resume with bitwise-identical outcomes.

use crate::checkpoint::{
    self, CheckpointError, CheckpointGeneration, CheckpointHeader, CheckpointWriter,
    CHECKPOINT_VERSION,
};
use crate::early_stop::EarlyStopAgent;
use crate::smart_config::{warm_seed_configs, SmartConfigAgent};
use serde::Serialize;
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use tunio_iosim::{FaultPlan, InterferenceModel, NoiseProfile, Simulator};
use tunio_params::ParameterSpace;
use tunio_trace as trace;
use tunio_tuner::stoppers::NoStop;
use tunio_tuner::{
    AllParams, BoConfig, BoStrategy, CacheEntry, CampaignObserver, EvalCounters, EvalEngine,
    FailurePolicy, GaConfig, GaStrategy, GaTuner, GenerationSnapshot, HeuristicStop, LhsStrategy,
    NoObserver, RacingConfig, RacingCounters, RandomStrategy, ResilienceCounters, SchedulerStats,
    SearchStrategy, Stopper, SubsetProvider, TuningTrace,
};
use tunio_workloads::{AppSpec, Variant, Workload, WorkloadFeatures};

/// Which tuning pipeline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PipelineKind {
    /// HSTuner: all parameters, full budget (no early stop).
    HsTunerNoStop,
    /// HSTuner with the 5%/5-iteration heuristic stopper.
    HsTunerHeuristic,
    /// Full TunIO: Smart Configuration Generation + RL Early Stopping.
    TunIo,
    /// Ablation: Impact-First tuning only (no early stop) — Fig 9.
    ImpactFirstOnly,
    /// Ablation: RL Early Stopping only (all parameters) — Fig 10.
    RlStopOnly,
}

impl PipelineKind {
    /// Every pipeline, in figure order.
    pub const ALL: [PipelineKind; 5] = [
        PipelineKind::HsTunerNoStop,
        PipelineKind::HsTunerHeuristic,
        PipelineKind::TunIo,
        PipelineKind::ImpactFirstOnly,
        PipelineKind::RlStopOnly,
    ];

    /// Display name matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            PipelineKind::HsTunerNoStop => "HSTuner (No Stop)",
            PipelineKind::HsTunerHeuristic => "HSTuner (Heuristic Stop)",
            PipelineKind::TunIo => "TunIO",
            PipelineKind::ImpactFirstOnly => "Impact-First Tuning",
            PipelineKind::RlStopOnly => "TunIO Early Stopping",
        }
    }

    /// Reverse of [`PipelineKind::label`] — how WAL headers name the
    /// pipeline they belong to.
    pub fn from_label(label: &str) -> Option<PipelineKind> {
        PipelineKind::ALL.into_iter().find(|k| k.label() == label)
    }
}

/// Why a campaign could not produce an outcome. This is the per-campaign
/// failure boundary: a library caller (the CLI, the `tunio-serve` daemon)
/// decides what one campaign's failure means — the process itself never
/// dies for it.
#[derive(Debug)]
pub enum CampaignError {
    /// The write-ahead log could not be used: I/O failure, header
    /// mismatch, or a resumed replay diverging from the recorded
    /// trajectory.
    Checkpoint(CheckpointError),
    /// Every evaluation the campaign attempted failed (fault injection
    /// with no surviving attempt), so there is no real result to report
    /// — only penalty values. Callers must treat the campaign as failed
    /// rather than trust a trace of zeros.
    NoViableEvaluations {
        /// Whole evaluations that exhausted their retries.
        failed_evaluations: u64,
        /// Faults the simulator injected while trying.
        faults_injected: u64,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Checkpoint(e) => write!(f, "{e}"),
            CampaignError::NoViableEvaluations {
                failed_evaluations,
                faults_injected,
            } => write!(
                f,
                "no evaluation survived: {failed_evaluations} evaluations failed \
                 ({faults_injected} faults injected) and none succeeded"
            ),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Checkpoint(e) => Some(e),
            CampaignError::NoViableEvaluations { .. } => None,
        }
    }
}

impl From<CheckpointError> for CampaignError {
    fn from(e: CheckpointError) -> Self {
        CampaignError::Checkpoint(e)
    }
}

/// The all-failed check shared by both campaign drivers: a campaign in
/// which not a single evaluation succeeded has nothing trustworthy to
/// report.
fn ensure_viable(engine: &EvalEngine) -> Result<(), CampaignError> {
    let resilience = engine.resilience();
    if engine.evaluations() == 0 && resilience.failed_evaluations > 0 {
        return Err(CampaignError::NoViableEvaluations {
            failed_evaluations: resilience.failed_evaluations,
            faults_injected: resilience.faults_injected,
        });
    }
    Ok(())
}

/// A tuning campaign description.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Application under tuning.
    pub app: AppSpec,
    /// Full application, extracted kernel, or reduced kernel.
    pub variant: Variant,
    /// Pipeline to run.
    pub kind: PipelineKind,
    /// Generation budget.
    pub max_iterations: u32,
    /// GA population size.
    pub population: usize,
    /// Seed for everything (GA, agents, simulator noise).
    pub seed: u64,
    /// `false` = 4 nodes / 128 procs; `true` = 500 nodes / 1600 procs.
    pub large_scale: bool,
}

/// A completed campaign.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Pipeline that ran.
    pub kind: PipelineKind,
    /// The tuning trace (per-iteration perf and cost).
    pub trace: TuningTrace,
    /// Per-layer cost attribution pooled over every charged evaluation
    /// (see [`tunio_iosim::Profile`]).
    pub profile: tunio_iosim::Profile,
    /// What the failure machinery did: faults injected, retries,
    /// exhausted evaluations, quarantined keys, penalties served. All
    /// zero for a fault-free campaign.
    pub resilience: ResilienceCounters,
    /// Async-scheduler counters (proposals, aliases, barrier stalls) for
    /// campaigns run through [`run_strategy_campaign_opts`]; `None` for
    /// the classic `GaTuner` loop.
    pub scheduler: Option<SchedulerStats>,
    /// Racing-evaluation counters (samples, settles, top-ups, early
    /// discards). All zero unless [`CampaignOptions::racing`] was set.
    /// Excluded from [`outcome_json`]: a resumed campaign replays
    /// settled keys from the WAL instead of re-racing them, so these
    /// counters depend on where the kill landed even though the trace
    /// does not.
    pub racing: RacingCounters,
    /// Engine work counters. `counters.sim_wall_s == 0.0` means the
    /// campaign never touched the simulator — every evaluation was
    /// served from preloaded or replayed cache entries. The serve layer
    /// uses this to prove per-tenant cache namespacing. Excluded from
    /// [`outcome_json`] (wall-clock is not deterministic).
    pub counters: EvalCounters,
    /// Exclusive wall-clock breakdown of the campaign (queue wait,
    /// propose, simulation, surrogate, WAL, trace overhead, scheduler
    /// stall) plus its critical path, reconstructed from the campaign's
    /// span DAG. `None` when tracing is disabled. Excluded from
    /// [`outcome_json`] — wall-clock is not deterministic.
    pub wall_breakdown: Option<trace::Timeline>,
}

/// Robustness options for a campaign: fault injection, failure policy,
/// and checkpoint/resume. The default is a plain fault-free campaign
/// with no checkpoint — exactly the historical behaviour.
#[derive(Debug, Clone, Default)]
pub struct CampaignOptions {
    /// Write a JSONL write-ahead log of completed generations here.
    pub checkpoint: Option<PathBuf>,
    /// Resume from `checkpoint` if it already exists (a fresh file is
    /// started otherwise, so `resume: true` is always safe to pass).
    pub resume: bool,
    /// Attach a fault-injection plan to the simulator.
    pub fault_plan: Option<FaultPlan>,
    /// Override the engine's retry/quarantine/penalty policy.
    pub policy: Option<FailurePolicy>,
    /// Exit the process (status 0) once this generation's checkpoint
    /// line is durable — the kill switch for crash/resume testing.
    pub abort_after: Option<u32>,
    /// Parallel evaluator slots for strategy campaigns (`None` = one per
    /// host core, capped at 8). The trace is bitwise identical for every
    /// value; only wall-clock time changes. Ignored by the classic
    /// `GaTuner` path, which parallelizes inside `evaluate_batch`.
    pub threads: Option<usize>,
    /// Statically inferred workload features to warm-start the search
    /// from (see `tunio_discovery::infer`). When set, the smart subset
    /// agent derives its impact ranking from the features instead of the
    /// offline simulator sweep, and strategy backends are handed
    /// feature-guided seed configurations before their first proposal.
    /// Like `fault_plan`, this is not recorded in checkpoints — resumed
    /// campaigns must pass the same value (a restored strategy ignores
    /// seeds anyway, so a mismatch cannot fork a resumed trace).
    pub warm_start: Option<WorkloadFeatures>,
    /// Cache entries to seed the engine's memo cache with before the
    /// campaign starts (e.g. a tenant's prior results for the identical
    /// simulator/workload/seed). Entries already present in a resumed
    /// WAL win — the WAL is preloaded first. Preloaded entries replay
    /// deterministically, exactly like WAL entries, so they cannot fork
    /// a trace; entries from a *different* simulator seed would, which
    /// is why callers must namespace them by campaign fingerprint.
    pub preload: Vec<CacheEntry>,
    /// Attach a heteroscedastic interference model to the simulator
    /// (noisy-shared-machine realism — see `tunio_iosim::interference`).
    /// Like `fault_plan`, the profile is not recorded in checkpoints:
    /// resumed campaigns must pass the same profile and seed, or replay
    /// verification will catch the fork and refuse to extend the WAL.
    pub noise_profile: Option<NoiseProfile>,
    /// Interference seed; defaults to the campaign seed when a profile
    /// is set.
    pub noise_seed: Option<u64>,
    /// Noise-robust racing evaluation for strategy campaigns: adaptive
    /// repeat-sampling against the commit-frontier incumbent instead of
    /// fixed-repeat averaging. Ignored by the classic `GaTuner` path.
    /// Racing state (per-key sample counts + moments) persists in the
    /// WAL, so kill/resume stays bitwise — but like the noise flags, a
    /// resumed campaign must pass the same racing policy.
    pub racing: Option<RacingConfig>,
}

/// Attach the options' interference model (if any) to a fresh simulator
/// and record the active profile as a labeled metric.
fn apply_noise(sim: Simulator, spec: &CampaignSpec, opts: &CampaignOptions) -> Simulator {
    match opts.noise_profile {
        Some(profile) => {
            let seed = opts.noise_seed.unwrap_or(spec.seed);
            trace::labeled_gauge("tunio.noise.profile", &[("profile", profile.as_str())]).set(1.0);
            sim.with_interference(InterferenceModel::new(profile, seed))
        }
        None => sim,
    }
}

/// Run one campaign with default options (fault-free, no checkpoint).
///
/// Even this path is fallible: a campaign is a unit of work that can
/// fail on its own (fault injection leaving no viable evaluation, a
/// checkpoint that cannot be written) without that being fatal to the
/// process hosting it.
pub fn run_campaign(spec: &CampaignSpec) -> Result<CampaignOutcome, CampaignError> {
    run_campaign_opts(spec, &CampaignOptions::default())
}

/// Run one campaign with explicit robustness options.
pub fn run_campaign_opts(
    spec: &CampaignSpec,
    opts: &CampaignOptions,
) -> Result<CampaignOutcome, CampaignError> {
    let space = ParameterSpace::tunio_default();
    let mut sim = if spec.large_scale {
        Simulator::cori_500node(spec.seed)
    } else {
        Simulator::cori_4node(spec.seed)
    };
    if let Some(plan) = opts.fault_plan {
        sim = sim.with_fault_plan(plan);
    }
    sim = apply_noise(sim, spec, opts);
    let cluster = sim.cluster;
    let workload = Workload::new(spec.app.clone(), spec.variant);
    let mut engine = EvalEngine::new(sim, workload, space.clone(), 3);
    if let Some(policy) = opts.policy {
        engine = engine.with_policy(policy);
    }
    let mut tuner = GaTuner::new(GaConfig {
        population: spec.population,
        max_iterations: spec.max_iterations,
        seed: spec.seed,
        ..GaConfig::default()
    });

    // Open the campaign span before the agents are built: pretraining
    // (SmartConfigAgent, EarlyStopAgent) runs real simulations, and those
    // spans must join the campaign's trace rather than each minting a
    // root of their own.
    let span = campaign_span(spec);

    let needs_smart = matches!(
        spec.kind,
        PipelineKind::TunIo | PipelineKind::ImpactFirstOnly
    );
    let needs_rl_stop = matches!(spec.kind, PipelineKind::TunIo | PipelineKind::RlStopOnly);

    let mut smart = if needs_smart {
        Some(match &opts.warm_start {
            Some(features) => SmartConfigAgent::from_features(features, &space, cluster, spec.seed),
            None => SmartConfigAgent::pretrained(&space, cluster, spec.seed),
        })
    } else {
        None
    };
    let mut all_params = AllParams;

    let mut stopper: Box<dyn Stopper> = if needs_rl_stop {
        let mut agent = EarlyStopAgent::pretrained(spec.max_iterations, spec.seed);
        agent.begin_campaign();
        Box::new(agent)
    } else {
        match spec.kind {
            PipelineKind::HsTunerHeuristic => Box::new(HeuristicStop::paper_default()),
            _ => Box::new(NoStop),
        }
    };

    let subsets: &mut dyn SubsetProvider = match &mut smart {
        Some(agent) => agent,
        None => &mut all_params,
    };

    let mut checkpointer = match &opts.checkpoint {
        Some(path) => Some(CheckpointObserver::open(
            path,
            opts.resume,
            &spec_header(spec),
            &engine,
            opts.abort_after,
        )?),
        None => None,
    };
    if !opts.preload.is_empty() {
        engine.preload(opts.preload.clone());
    }

    let trace = match checkpointer.as_mut() {
        Some(obs) => tuner.run_with_observer(&engine, stopper.as_mut(), subsets, obs),
        None => tuner.run(&engine, stopper.as_mut(), subsets),
    };
    if let Some(obs) = checkpointer {
        if let Some(e) = obs.error {
            return Err(e.into());
        }
    }
    ensure_viable(&engine)?;
    let wall_breakdown = finish_campaign(span, spec, &engine, &trace);
    Ok(CampaignOutcome {
        kind: spec.kind,
        trace,
        profile: engine.profile_snapshot(),
        resilience: engine.resilience(),
        scheduler: None,
        racing: RacingCounters::default(),
        counters: engine.counters(),
        wall_breakdown,
    })
}

/// The checkpoint header a spec binds to.
fn spec_header(spec: &CampaignSpec) -> CheckpointHeader {
    CheckpointHeader {
        version: CHECKPOINT_VERSION,
        app: spec.app.name.clone(),
        variant: format!("{:?}", spec.variant),
        kind: spec.kind.label().to_string(),
        max_iterations: spec.max_iterations,
        population: spec.population,
        seed: spec.seed,
        large_scale: spec.large_scale,
    }
}

/// Parse a [`Variant`] back from the `{:?}` string WAL headers store.
fn variant_from_str(s: &str) -> Option<Variant> {
    match s {
        "Full" => Some(Variant::Full),
        "Kernel" => Some(Variant::Kernel),
        _ => {
            let frac = s
                .strip_prefix("ReducedKernel { keep_fraction: ")?
                .strip_suffix(" }")?;
            Some(Variant::ReducedKernel {
                keep_fraction: frac.parse().ok()?,
            })
        }
    }
}

/// Reconstruct the campaign a WAL header describes — the inverse of
/// [`spec_header`] / [`strategy_header`]. This is what lets a restarted
/// daemon resume every in-flight campaign from nothing but its WAL
/// directory. Returns the spec plus the strategy backend (`None` = the
/// classic `GaTuner` loop). Errs with a human-readable reason when this
/// build cannot host the campaign (unknown app, variant, pipeline, or
/// strategy) — callers quarantine such WALs instead of refusing to boot.
pub fn spec_from_header(
    header: &CheckpointHeader,
) -> Result<(CampaignSpec, Option<StrategyKind>), String> {
    if header.version != CHECKPOINT_VERSION {
        return Err(format!(
            "checkpoint version {} (this build writes {})",
            header.version, CHECKPOINT_VERSION
        ));
    }
    let app = tunio_workloads::all_apps()
        .into_iter()
        .find(|a| a.name == header.app)
        .ok_or_else(|| format!("unknown application `{}`", header.app))?;
    let variant = variant_from_str(&header.variant)
        .ok_or_else(|| format!("unknown variant `{}`", header.variant))?;
    let (kind_label, strategy) = match header.kind.split_once(" [strategy=") {
        Some((label, rest)) => {
            let s = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("malformed kind `{}`", header.kind))?;
            let strategy =
                StrategyKind::parse(s).ok_or_else(|| format!("unknown strategy `{s}`"))?;
            (label, Some(strategy))
        }
        None => (header.kind.as_str(), None),
    };
    let kind = PipelineKind::from_label(kind_label)
        .ok_or_else(|| format!("unknown pipeline `{kind_label}`"))?;
    Ok((
        CampaignSpec {
            app,
            variant,
            kind,
            max_iterations: header.max_iterations,
            population: header.population,
            seed: header.seed,
            large_scale: header.large_scale,
        },
        strategy,
    ))
}

/// Which search backend drives a strategy campaign (see
/// [`run_strategy_campaign_opts`]). All four run through the
/// asynchronous scheduler and share the stopper / subset-provider /
/// checkpoint toolchain; they differ only in how the next configuration
/// is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum StrategyKind {
    /// The genetic algorithm, ported onto the strategy trait. Keeps its
    /// generation barrier (population breeds only when fully scored).
    Ga,
    /// Uniform random search over the active subset — fully async.
    Random,
    /// Latin-hypercube sampling: each round of proposals stratifies
    /// every active parameter's range — fully async.
    Lhs,
    /// Bayesian optimization: a neural-surrogate ensemble ranks
    /// candidates by expected improvement — fully async.
    Bo,
}

impl StrategyKind {
    /// Every backend, in CLI/report order.
    pub const ALL: [StrategyKind; 4] = [
        StrategyKind::Ga,
        StrategyKind::Random,
        StrategyKind::Lhs,
        StrategyKind::Bo,
    ];

    /// The CLI flag value (`--strategy <label>`).
    pub fn label(&self) -> &'static str {
        match self {
            StrategyKind::Ga => "ga",
            StrategyKind::Random => "random",
            StrategyKind::Lhs => "lhs",
            StrategyKind::Bo => "bo",
        }
    }

    /// Parse a CLI flag value.
    pub fn parse(s: &str) -> Option<StrategyKind> {
        StrategyKind::ALL.into_iter().find(|k| k.label() == s)
    }
}

/// Build the backend for a spec. The evaluation budget is
/// `max_iterations * population` — the same simulation count the GA
/// gets — and the record-window width is `population`, so traces from
/// different backends line up generation-for-generation.
fn build_strategy(
    kind: StrategyKind,
    spec: &CampaignSpec,
    space: &ParameterSpace,
) -> Box<dyn SearchStrategy> {
    let evals = spec.max_iterations as usize * spec.population.max(1);
    match kind {
        StrategyKind::Ga => Box::new(GaStrategy::new(
            GaConfig {
                population: spec.population,
                max_iterations: spec.max_iterations,
                seed: spec.seed,
                ..GaConfig::default()
            },
            space.clone(),
        )),
        StrategyKind::Random => Box::new(RandomStrategy::new(space.clone(), evals, spec.seed)),
        StrategyKind::Lhs => Box::new(LhsStrategy::new(
            space.clone(),
            evals,
            spec.population.max(1),
            spec.seed,
        )),
        StrategyKind::Bo => Box::new(BoStrategy::new(
            BoConfig::for_budget(evals, spec.population.max(1), spec.seed),
            space.clone(),
        )),
    }
}

/// The checkpoint header a strategy campaign binds to: the pipeline
/// label is extended with the backend so a WAL written by one strategy
/// can never silently resume under another (or under the classic
/// `GaTuner` loop).
fn strategy_header(spec: &CampaignSpec, kind: StrategyKind) -> CheckpointHeader {
    let mut header = spec_header(spec);
    header.kind = format!("{} [strategy={}]", spec.kind.label(), kind.label());
    header
}

/// Default evaluator-slot count for strategy campaigns: one per host
/// core, capped at 8 (the simulator is CPU-bound; more slots just adds
/// scheduling noise).
fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Run one strategy campaign with default options.
pub fn run_strategy_campaign(
    spec: &CampaignSpec,
    strategy: StrategyKind,
) -> Result<CampaignOutcome, CampaignError> {
    run_strategy_campaign_opts(spec, strategy, &CampaignOptions::default())
}

/// Run one campaign through the asynchronous strategy scheduler.
///
/// Mirrors [`run_campaign_opts`] — same engine, same stopper and smart
/// subset wiring per [`PipelineKind`], same checkpoint/resume WAL — but
/// the search is driven by the chosen [`StrategyKind`] with
/// `opts.threads` parallel evaluator slots refilled as soon as a
/// simulation completes. The outcome (trace, checkpoint trajectory) is
/// bitwise identical for every thread count; only the `profile` field's
/// float accumulation order varies.
pub fn run_strategy_campaign_opts(
    spec: &CampaignSpec,
    strategy: StrategyKind,
    opts: &CampaignOptions,
) -> Result<CampaignOutcome, CampaignError> {
    let space = ParameterSpace::tunio_default();
    let mut sim = if spec.large_scale {
        Simulator::cori_500node(spec.seed)
    } else {
        Simulator::cori_4node(spec.seed)
    };
    if let Some(plan) = opts.fault_plan {
        sim = sim.with_fault_plan(plan);
    }
    sim = apply_noise(sim, spec, opts);
    let cluster = sim.cluster;
    let workload = Workload::new(spec.app.clone(), spec.variant);
    let mut engine = EvalEngine::new(sim, workload, space.clone(), 3);
    if let Some(policy) = opts.policy {
        engine = engine.with_policy(policy);
    }
    // Open the campaign span before warm-start seeding and agent
    // pretraining: both run real simulations, and those spans must join
    // the campaign's trace rather than each minting a root of their own.
    let span = campaign_span(spec);

    let mut backend = build_strategy(strategy, spec, &space);
    if let Some(features) = &opts.warm_start {
        let seeds = warm_seed_configs(features, &space);
        trace::event(
            "campaign.warm_start",
            vec![
                ("app", features.app.clone().into()),
                ("confidence", features.confidence.into()),
                ("seeds", seeds.len().into()),
            ],
        );
        backend.warm_start(&seeds);
    }

    let needs_smart = matches!(
        spec.kind,
        PipelineKind::TunIo | PipelineKind::ImpactFirstOnly
    );
    let needs_rl_stop = matches!(spec.kind, PipelineKind::TunIo | PipelineKind::RlStopOnly);

    let mut smart = if needs_smart {
        Some(match &opts.warm_start {
            Some(features) => SmartConfigAgent::from_features(features, &space, cluster, spec.seed),
            None => SmartConfigAgent::pretrained(&space, cluster, spec.seed),
        })
    } else {
        None
    };
    let mut all_params = AllParams;

    let mut stopper: Box<dyn Stopper> = if needs_rl_stop {
        let mut agent = EarlyStopAgent::pretrained(spec.max_iterations, spec.seed);
        agent.begin_campaign();
        Box::new(agent)
    } else {
        match spec.kind {
            PipelineKind::HsTunerHeuristic => Box::new(HeuristicStop::paper_default()),
            _ => Box::new(NoStop),
        }
    };

    let subsets: &mut dyn SubsetProvider = match &mut smart {
        Some(agent) => agent,
        None => &mut all_params,
    };

    let mut checkpointer = match &opts.checkpoint {
        Some(path) => Some(CheckpointObserver::open(
            path,
            opts.resume,
            &strategy_header(spec, strategy),
            &engine,
            opts.abort_after,
        )?),
        None => None,
    };
    if !opts.preload.is_empty() {
        engine.preload(opts.preload.clone());
    }

    let threads = opts.threads.unwrap_or_else(default_threads).max(1);
    let mut no_observer = NoObserver;
    let observer: &mut dyn CampaignObserver = match checkpointer.as_mut() {
        Some(obs) => obs,
        None => &mut no_observer,
    };
    let run = tunio_tuner::run_strategy_opts(
        &engine,
        backend,
        stopper.as_mut(),
        subsets,
        spec.population.max(1),
        threads,
        observer,
        opts.racing,
    );
    if let Some(obs) = checkpointer {
        if let Some(e) = obs.error {
            return Err(e.into());
        }
    }
    ensure_viable(&engine)?;
    let wall_breakdown = finish_campaign(span, spec, &engine, &run.trace);
    Ok(CampaignOutcome {
        kind: spec.kind,
        trace: run.trace,
        profile: engine.profile_snapshot(),
        resilience: engine.resilience(),
        scheduler: Some(run.stats),
        racing: engine.racing_counters(),
        counters: engine.counters(),
        wall_breakdown,
    })
}

/// Deterministic JSON dump of a campaign outcome. Floats use Rust's
/// shortest round-trip formatting, so two bitwise-identical outcomes
/// produce byte-identical files — the CI crash/resume jobs assert
/// equality with a plain `diff`. The volatile `profile` accumulator
/// (float fold order varies across thread counts) is deliberately
/// excluded.
pub fn outcome_json(outcome: &CampaignOutcome) -> String {
    let t = &outcome.trace;
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"pipeline\": \"{}\",\n", outcome.kind.label()));
    s.push_str("  \"records\": [\n");
    for (i, r) in t.records.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"iteration\": {}, \"best_perf\": {:?}, \"generation_best_perf\": {:?}, \
             \"cost_s\": {:?}, \"cumulative_cost_s\": {:?}, \"subset_size\": {}}}{}\n",
            r.iteration,
            r.best_perf,
            r.generation_best_perf,
            r.cost_s,
            r.cumulative_cost_s,
            r.subset_size,
            if i + 1 == t.records.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    let genes: Vec<String> = t
        .best_config
        .genes()
        .iter()
        .map(|g| g.to_string())
        .collect();
    s.push_str(&format!("  \"best_genes\": [{}],\n", genes.join(", ")));
    s.push_str(&format!("  \"best_perf\": {:?},\n", t.best_perf));
    s.push_str(&format!("  \"default_perf\": {:?},\n", t.default_perf));
    s.push_str(&format!("  \"stopped_early\": {},\n", t.stopped_early));
    s.push_str(&format!("  \"stopper\": \"{}\",\n", t.stopper_name));
    let res = &outcome.resilience;
    s.push_str(&format!(
        "  \"resilience\": {{\"faults_injected\": {}, \"retries\": {}, \
         \"failed_evaluations\": {}, \"quarantined_keys\": {}, \"penalties_served\": {}}}\n",
        res.faults_injected,
        res.retries,
        res.failed_evaluations,
        res.quarantined_keys,
        res.penalties_served
    ));
    s.push_str("}\n");
    s
}

/// What a resumed campaign must reproduce for one replayed generation
/// before it may extend the log.
struct ReplayCheck {
    rng_state: [u64; 4],
    best_perf: f64,
    cumulative_cost_s: f64,
    entry_keys: Vec<Vec<usize>>,
    strategy_state: Option<String>,
}

/// The write-ahead-log attachment: drains the engine's cache journal
/// after every generation, verifies replayed generations against the
/// stored trajectory, and appends new ones.
struct CheckpointObserver<'a> {
    engine: &'a EvalEngine,
    writer: CheckpointWriter,
    replay: Vec<ReplayCheck>,
    abort_after: Option<u32>,
    error: Option<CheckpointError>,
    written: trace::Counter,
    /// Drained-but-unattributed journal entries, keyed by gene key. Only
    /// used for strategy campaigns (snapshots carrying `charged`): under
    /// threaded evaluation an entry can be charged before its window
    /// closes *or* drain during a later window, so entries park here
    /// until the scheduler's charged-key list claims them.
    pool: HashMap<Vec<usize>, CacheEntry>,
}

impl<'a> CheckpointObserver<'a> {
    fn open(
        path: &Path,
        resume: bool,
        header: &CheckpointHeader,
        engine: &'a EvalEngine,
        abort_after: Option<u32>,
    ) -> Result<Self, CheckpointError> {
        engine.enable_journal();
        let (writer, replay) = if resume && path.exists() {
            let (stored, generations) = checkpoint::load(path)?;
            stored.ensure_matches(header)?;
            // Heal the file down to its trusted prefix (a kill mid-append
            // leaves a torn final line that must not be appended after).
            let writer = CheckpointWriter::rewrite(path, &stored, &generations)?;
            let mut replay = Vec::with_capacity(generations.len());
            for g in generations {
                replay.push(ReplayCheck {
                    rng_state: g.rng_state,
                    best_perf: g.record.best_perf,
                    cumulative_cost_s: g.record.cumulative_cost_s,
                    entry_keys: g.entries.iter().map(|e| e.key.clone()).collect(),
                    strategy_state: g.strategy_state.clone(),
                });
                engine.preload(g.entries);
            }
            (writer, replay)
        } else {
            (CheckpointWriter::create(path, header)?, Vec::new())
        };
        Ok(CheckpointObserver {
            engine,
            writer,
            replay,
            abort_after,
            error: None,
            written: trace::counter("tunio.checkpoint.written"),
            pool: HashMap::new(),
        })
    }

    /// The recorded trajectory vs what the replay actually did. `None`
    /// means this generation retraced faithfully.
    fn divergence(
        &self,
        snap: &GenerationSnapshot<'_>,
        entries_keys: &[&[usize]],
    ) -> Option<String> {
        let want = &self.replay[snap.iteration as usize - 1];
        if snap.rng_state != want.rng_state {
            return Some(format!(
                "rng state {:?} != recorded {:?}",
                snap.rng_state, want.rng_state
            ));
        }
        if snap.record.best_perf != want.best_perf {
            return Some(format!(
                "best perf {} != recorded {}",
                snap.record.best_perf, want.best_perf
            ));
        }
        if snap.record.cumulative_cost_s != want.cumulative_cost_s {
            return Some(format!(
                "cumulative cost {} != recorded {}",
                snap.record.cumulative_cost_s, want.cumulative_cost_s
            ));
        }
        if entries_keys.len() != want.entry_keys.len()
            || entries_keys
                .iter()
                .zip(&want.entry_keys)
                .any(|(got, want)| *got != want.as_slice())
        {
            return Some(format!(
                "{} cache entries charged, recorded {}",
                entries_keys.len(),
                want.entry_keys.len()
            ));
        }
        if want.strategy_state.is_some() && snap.strategy_state != want.strategy_state {
            return Some("strategy state diverged from the recorded snapshot".into());
        }
        None
    }
}

impl CampaignObserver for CheckpointObserver<'_> {
    fn on_generation(&mut self, snap: &GenerationSnapshot<'_>) {
        if self.error.is_some() {
            return; // already failed; surfaced after the run
        }
        let drained = self.engine.drain_journal();
        let entries: Vec<CacheEntry> = match &snap.charged {
            // Classic GA path: the batch evaluator is synchronous, so the
            // journal drains in a deterministic order that IS the
            // window's entry list.
            None => drained,
            // Strategy path: completions land in wall-clock order, so
            // attribute entries by the scheduler's commit-ordered charged
            // keys instead. Entries charged for not-yet-committed
            // proposals stay pooled for a later window; entries whose
            // proposal never commits (in flight at an early stop, or the
            // incumbent-default evaluation) are simply never written —
            // a resumed run re-simulates them deterministically.
            Some(charged) => {
                for e in drained {
                    self.pool.insert(e.key.clone(), e);
                }
                charged.iter().filter_map(|k| self.pool.remove(k)).collect()
            }
        };
        if (snap.iteration as usize) <= self.replay.len() {
            // Replayed generation: already durable in the log. Verify the
            // resumed run retraced it instead of silently forking history.
            let keys: Vec<&[usize]> = entries.iter().map(|e| e.key.as_slice()).collect();
            if let Some(why) = self.divergence(snap, &keys) {
                self.error = Some(CheckpointError::Diverged {
                    iteration: snap.iteration,
                    why,
                });
            }
        } else {
            let generation = CheckpointGeneration {
                iteration: snap.iteration,
                rng_state: snap.rng_state,
                record: snap.record.clone(),
                population: snap.population.iter().map(|c| c.genes().to_vec()).collect(),
                best_genes: snap.best_config.genes().to_vec(),
                stopped: snap.stopped,
                strategy_state: snap.strategy_state.clone(),
                entries,
            };
            // A span (not an event) so WAL append + flush time lands in
            // its own timeline segment.
            let wal_span = trace::span(
                "wal.append",
                vec![
                    ("iteration", snap.iteration.into()),
                    ("entries", generation.entries.len().into()),
                ],
            );
            let written = self.writer.write_generation(&generation);
            drop(wal_span);
            match written {
                Ok(()) => {
                    self.written.inc(1);
                    trace::event(
                        "checkpoint.written",
                        vec![
                            ("iteration", snap.iteration.into()),
                            ("entries", generation.entries.len().into()),
                            ("stopped", snap.stopped.into()),
                        ],
                    );
                }
                Err(e) => {
                    self.error = Some(e);
                    return;
                }
            }
        }
        if self.abort_after == Some(snap.iteration) {
            // Crash/resume test hook: this generation is durable; die the
            // way a preempted job does (no destructors, no final trace).
            eprintln!("aborting after generation {} (abort_after)", snap.iteration);
            std::process::exit(0);
        }
    }
}

/// Open the top-level `campaign` span carrying the campaign's identity.
fn campaign_span(spec: &CampaignSpec) -> trace::SpanGuard {
    trace::span(
        "campaign",
        vec![
            ("kind", spec.kind.label().into()),
            ("app", spec.app.name.as_str().into()),
            ("variant", format!("{:?}", spec.variant).into()),
            ("large_scale", spec.large_scale.into()),
            ("seed", spec.seed.into()),
        ],
    )
}

/// Close a campaign: emit the `campaign.done` summary event, flush the
/// metric registry into the trace, drop the campaign span (which records
/// total wall time), and fold the trace's span DAG into the returned
/// wall-clock breakdown (recording per-segment histograms as it goes).
fn finish_campaign(
    span: trace::SpanGuard,
    spec: &CampaignSpec,
    engine: &EvalEngine,
    outcome: &TuningTrace,
) -> Option<trace::Timeline> {
    if trace::enabled() {
        let minutes = outcome.total_cost_s() / 60.0;
        let resilience = engine.resilience();
        trace::event(
            "campaign.done",
            vec![
                ("kind", spec.kind.label().into()),
                ("app", spec.app.name.as_str().into()),
                ("best_perf", outcome.best_perf.into()),
                ("default_perf", outcome.default_perf.into()),
                ("iterations", outcome.iterations().into()),
                ("stopped_early", outcome.stopped_early.into()),
                ("stopper_name", outcome.stopper_name.as_str().into()),
                ("evaluations", engine.evaluations().into()),
                ("cache_hits", engine.cache_hits().into()),
                ("faults_injected", resilience.faults_injected.into()),
                ("retries", resilience.retries.into()),
                ("failed_evaluations", resilience.failed_evaluations.into()),
                ("quarantined_keys", resilience.quarantined_keys.into()),
                ("penalties_served", resilience.penalties_served.into()),
                ("total_cost_s", outcome.total_cost_s().into()),
                (
                    "final_roti",
                    crate::roti::roti(outcome.best_perf, outcome.default_perf, minutes).into(),
                ),
                (
                    "peak_roti",
                    crate::roti::peak_roti(outcome)
                        .map(|p| p.roti)
                        .unwrap_or(0.0)
                        .into(),
                ),
            ],
        );
        trace::flush_metrics();
    }
    let ctx = span.context();
    drop(span);
    let ctx = ctx?;
    // After the guard drops, the thread-local context is the campaign
    // span's parent: `None` means the campaign was its trace's root (a
    // CLI run), so nobody else will snapshot this trace and the live
    // store entry can be released once the breakdown is taken. Under
    // `tunio-serve` the enclosing serve root owns the trace's lifetime.
    let campaign_was_root = trace::current().is_none();
    let timeline = trace::timeline::snapshot(ctx.trace_id, trace::now_us());
    if let Some(t) = &timeline {
        record_segment_metrics(t);
    }
    if campaign_was_root {
        trace::timeline::forget(ctx.trace_id);
    }
    timeline
}

/// Record the breakdown into `/metrics`: one labeled histogram sample
/// per segment plus an exemplar series tying each segment to a concrete
/// trace id a human can grep out of the JSONL trace.
fn record_segment_metrics(t: &trace::Timeline) {
    trace::expose::describe(
        "tunio.timeline.segment_s",
        "Exclusive wall-clock attributed to each campaign timeline segment (seconds)",
    );
    trace::expose::describe(
        "tunio.timeline.exemplar",
        "Exemplar campaign for each timeline segment; value is that trace's segment seconds",
    );
    let tid = format!("{:016x}", t.trace_id);
    for (seg, us) in &t.segments {
        let secs = *us as f64 / 1e6;
        trace::labeled_histogram("tunio.timeline.segment_s", &[("segment", seg.name())])
            .record(secs);
        trace::labeled_gauge(
            "tunio.timeline.exemplar",
            &[("segment", seg.name()), ("trace_id", &tid)],
        )
        .set(secs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tunio_workloads::hacc;

    fn spec(kind: PipelineKind, iters: u32) -> CampaignSpec {
        CampaignSpec {
            app: hacc(),
            variant: Variant::Kernel,
            kind,
            max_iterations: iters,
            population: 6,
            seed: 9,
            large_scale: false,
        }
    }

    #[test]
    fn hstuner_no_stop_uses_full_budget() {
        let out = run_campaign(&spec(PipelineKind::HsTunerNoStop, 8)).unwrap();
        assert_eq!(out.trace.iterations(), 8);
        assert!(!out.trace.stopped_early);
    }

    #[test]
    fn tunio_pipeline_improves_and_usually_stops_early() {
        let out = run_campaign(&spec(PipelineKind::TunIo, 30)).unwrap();
        assert!(out.trace.best_perf > out.trace.default_perf);
        assert!(out.trace.iterations() <= 30);
        assert_eq!(out.trace.stopper_name, "tunio-rl-early-stop");
    }

    #[test]
    fn impact_first_converges_in_fewer_iterations() {
        // Fig 9's headline: Impact-First tuning reaches the target
        // bandwidth in fewer iterations than tuning everything. Averaged
        // over seeds to smooth GA luck.
        let mut smart_total = 0u32;
        let mut plain_total = 0u32;
        for seed in [5, 21, 33] {
            let mut s = spec(PipelineKind::ImpactFirstOnly, 25);
            s.seed = seed;
            let mut p = spec(PipelineKind::HsTunerNoStop, 25);
            p.seed = seed;
            let smart = run_campaign(&s).unwrap();
            let plain = run_campaign(&p).unwrap();
            let target = 0.9 * plain.trace.best_perf.min(smart.trace.best_perf);
            let first_hit = |t: &TuningTrace| {
                t.records
                    .iter()
                    .find(|r| r.best_perf >= target)
                    .map(|r| r.iteration)
                    .unwrap_or(26)
            };
            smart_total += first_hit(&smart.trace);
            plain_total += first_hit(&plain.trace);
        }
        assert!(
            smart_total <= plain_total,
            "impact-first mean hit {smart_total}/3, plain {plain_total}/3"
        );
    }

    #[test]
    fn kernel_campaign_is_cheaper_than_full_app() {
        let mut k = spec(PipelineKind::HsTunerNoStop, 6);
        k.variant = Variant::Kernel;
        let mut f = spec(PipelineKind::HsTunerNoStop, 6);
        f.variant = Variant::Full;
        let kernel = run_campaign(&k).unwrap();
        let full = run_campaign(&f).unwrap();
        assert!(
            kernel.trace.total_cost_s() < full.trace.total_cost_s(),
            "kernel {} vs full {}",
            kernel.trace.total_cost_s(),
            full.trace.total_cost_s()
        );
    }

    #[test]
    fn campaign_outcome_carries_attribution_profile() {
        let out = run_campaign(&spec(PipelineKind::HsTunerNoStop, 5)).unwrap();
        let p = &out.profile;
        let total = p.total_time_s();
        assert!(total > 0.0, "campaign must charge some simulated time");
        // The layer partition is exact: io + compute + mds == total.
        let compute = p.get(tunio_iosim::Layer::Compute).self_s;
        let mds = p.get(tunio_iosim::Layer::Mds).self_s;
        let parts = p.io_time_s() + compute + mds;
        assert!(
            (parts - total).abs() < 1e-9 * total,
            "partition {parts} vs total {total}"
        );
        // A HACC checkpoint campaign spends real time in the data path.
        // (The kernel variant has no compute phases, so only I/O is required.)
        assert!(p.io_time_s() > 0.0);
    }

    /// ISSUE 8 regression: a campaign whose every evaluation faults
    /// (fault-rate 1.0, zero retries) must return `Err` — not abort the
    /// process the way the old
    /// `.expect("a campaign without a checkpoint has no failure path")`
    /// did when the caller unwrapped a trace of pure penalty values.
    #[test]
    fn all_faulting_campaign_returns_err_instead_of_aborting() {
        let opts = CampaignOptions {
            fault_plan: Some(FaultPlan {
                transient_rate: 1.0,
                ..FaultPlan::disabled(11)
            }),
            policy: Some(FailurePolicy {
                max_retries: 0,
                ..FailurePolicy::default()
            }),
            ..CampaignOptions::default()
        };
        let s = spec(PipelineKind::HsTunerNoStop, 3);
        let err = run_campaign_opts(&s, &opts).unwrap_err();
        assert!(
            matches!(
                err,
                CampaignError::NoViableEvaluations {
                    failed_evaluations, ..
                } if failed_evaluations > 0
            ),
            "got {err}"
        );
        // The strategy scheduler path hits the same boundary.
        let err = run_strategy_campaign_opts(
            &s,
            StrategyKind::Random,
            &CampaignOptions {
                threads: Some(2),
                ..opts
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, CampaignError::NoViableEvaluations { .. }),
            "got {err}"
        );
    }

    #[test]
    fn spec_round_trips_through_its_wal_header() {
        let s = CampaignSpec {
            app: hacc(),
            variant: Variant::ReducedKernel {
                keep_fraction: 0.25,
            },
            kind: PipelineKind::TunIo,
            max_iterations: 12,
            population: 8,
            seed: 77,
            large_scale: true,
        };
        let (back, strategy) = spec_from_header(&spec_header(&s)).unwrap();
        assert_eq!(strategy, None);
        assert_eq!(back.app.name, s.app.name);
        assert_eq!(back.variant, s.variant);
        assert_eq!(back.kind, s.kind);
        assert_eq!(back.max_iterations, s.max_iterations);
        assert_eq!(back.population, s.population);
        assert_eq!(back.seed, s.seed);
        assert_eq!(back.large_scale, s.large_scale);

        let (back, strategy) = spec_from_header(&strategy_header(&s, StrategyKind::Bo)).unwrap();
        assert_eq!(strategy, Some(StrategyKind::Bo));
        assert_eq!(back.kind, s.kind);
    }

    #[test]
    fn spec_from_header_names_what_it_cannot_host() {
        let s = spec(PipelineKind::TunIo, 4);
        let mut h = spec_header(&s);
        h.kind = "TunIO [strategy=alien]".to_string();
        assert!(spec_from_header(&h).unwrap_err().contains("alien"));
        let mut h = spec_header(&s);
        h.app = "no-such-app".to_string();
        assert!(spec_from_header(&h).unwrap_err().contains("no-such-app"));
    }

    #[test]
    fn labels_are_distinct() {
        let kinds = [
            PipelineKind::HsTunerNoStop,
            PipelineKind::HsTunerHeuristic,
            PipelineKind::TunIo,
            PipelineKind::ImpactFirstOnly,
            PipelineKind::RlStopOnly,
        ];
        let mut labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), kinds.len());
    }
}

/// Run a campaign with an existing, pre-trained [`crate::TunIo`] instance
/// whose agents carry their learning across campaigns — the paper's
/// "when the component is exposed to new applications, it can learn from
/// the new trends it sees" (§V-C). The early stopper's campaign-local
/// history is reset; everything learned (Q-networks, observer, impact
/// ranking) persists.
pub fn run_campaign_with(tunio: &mut crate::TunIo, spec: &CampaignSpec) -> CampaignOutcome {
    let space = ParameterSpace::tunio_default();
    let sim = if spec.large_scale {
        Simulator::cori_500node(spec.seed)
    } else {
        Simulator::cori_4node(spec.seed)
    };
    let workload = Workload::new(spec.app.clone(), spec.variant);
    let engine = EvalEngine::new(sim, workload, space, 3);
    let mut tuner = GaTuner::new(GaConfig {
        population: spec.population,
        max_iterations: spec.max_iterations,
        seed: spec.seed,
        ..GaConfig::default()
    });
    tunio.early_stop.max_iterations = spec.max_iterations;
    tunio.early_stop.begin_campaign();
    let crate::TunIo {
        smart_config,
        early_stop,
        ..
    } = tunio;
    let span = campaign_span(spec);
    let trace = tuner.run(&engine, early_stop, smart_config);
    let wall_breakdown = finish_campaign(span, spec, &engine, &trace);
    CampaignOutcome {
        kind: PipelineKind::TunIo,
        trace,
        profile: engine.profile_snapshot(),
        resilience: engine.resilience(),
        scheduler: None,
        racing: RacingCounters::default(),
        counters: engine.counters(),
        wall_breakdown,
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;
    use tunio_workloads::hacc;

    fn spec(kind: PipelineKind, iters: u32, seed: u64) -> CampaignSpec {
        CampaignSpec {
            app: hacc(),
            variant: Variant::Kernel,
            kind,
            max_iterations: iters,
            population: 6,
            seed,
            large_scale: false,
        }
    }

    fn wal_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("tunio-pipeline-ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn assert_outcomes_identical(a: &CampaignOutcome, b: &CampaignOutcome) {
        assert_eq!(a.trace.records.len(), b.trace.records.len());
        for (x, y) in a.trace.records.iter().zip(&b.trace.records) {
            assert_eq!(x.best_perf, y.best_perf, "gen {}", x.iteration);
            assert_eq!(x.generation_best_perf, y.generation_best_perf);
            assert_eq!(x.cost_s, y.cost_s, "gen {}", x.iteration);
            assert_eq!(x.cumulative_cost_s, y.cumulative_cost_s);
            assert_eq!(x.subset_size, y.subset_size);
        }
        assert_eq!(a.trace.best_perf, b.trace.best_perf);
        assert_eq!(a.trace.default_perf, b.trace.default_perf);
        assert_eq!(
            a.trace.best_config.genes(),
            b.trace.best_config.genes(),
            "best configuration must be identical"
        );
        assert_eq!(a.trace.stopped_early, b.trace.stopped_early);
        assert_eq!(a.profile, b.profile, "profile accumulator must match");
    }

    /// Keep the header plus the first `k` generation lines, then append a
    /// torn partial line — exactly what a `kill -9` mid-append leaves.
    fn truncate_wal(path: &Path, k: usize) {
        let raw = std::fs::read_to_string(path).unwrap();
        let mut kept: Vec<&str> = raw.lines().take(1 + k).collect();
        assert_eq!(kept.len(), 1 + k, "WAL shorter than the kill point");
        let torn = "{\"iteration\":99,\"rng_state\":[123,45";
        kept.push(torn);
        std::fs::write(path, kept.join("\n")).unwrap();
    }

    #[test]
    fn checkpointed_campaign_is_bitwise_identical_to_plain() {
        let s = spec(PipelineKind::HsTunerNoStop, 6, 17);
        let plain = run_campaign(&s).unwrap();
        let path = wal_path("plain-vs-ckpt.jsonl");
        let opts = CampaignOptions {
            checkpoint: Some(path.clone()),
            ..CampaignOptions::default()
        };
        let ckpt = run_campaign_opts(&s, &opts).unwrap();
        assert_outcomes_identical(&plain, &ckpt);
        assert_eq!(ckpt.resilience, ResilienceCounters::default());
        let (_, gens) = checkpoint::load(&path).unwrap();
        assert_eq!(gens.len(), 6, "one WAL line per generation");
        assert!(gens.last().unwrap().stopped);
        std::fs::remove_file(&path).ok();
    }

    /// The acceptance scenario: kill a campaign mid-run (simulated by
    /// truncating its WAL to the first k generations plus a torn line),
    /// resume it, and require the outcome to be identical to the
    /// uninterrupted run — including with the RL stopper and smart
    /// subset agents in the loop, whose state is rebuilt by replay.
    #[test]
    fn kill_mid_campaign_and_resume_reproduces_the_outcome() {
        let s = spec(PipelineKind::TunIo, 10, 23);
        let path = wal_path("kill-resume.jsonl");
        let opts = CampaignOptions {
            checkpoint: Some(path.clone()),
            ..CampaignOptions::default()
        };
        let uninterrupted = run_campaign_opts(&s, &opts).unwrap();
        let total = uninterrupted.trace.records.len();
        assert!(total >= 3, "need enough generations to kill mid-way");

        truncate_wal(&path, 2);
        let resumed = run_campaign_opts(
            &s,
            &CampaignOptions {
                checkpoint: Some(path.clone()),
                resume: true,
                ..CampaignOptions::default()
            },
        )
        .unwrap();
        assert_outcomes_identical(&uninterrupted, &resumed);
        assert_eq!(resumed.resilience, uninterrupted.resilience);

        // The resumed run must have healed the WAL back to full length.
        let (_, gens) = checkpoint::load(&path).unwrap();
        assert_eq!(gens.len(), total);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_is_a_noop_replay_when_the_campaign_already_finished() {
        let s = spec(PipelineKind::HsTunerHeuristic, 12, 29);
        let path = wal_path("finished-resume.jsonl");
        let opts = CampaignOptions {
            checkpoint: Some(path.clone()),
            resume: true,
            ..CampaignOptions::default()
        };
        let first = run_campaign_opts(&s, &opts).unwrap();
        let second = run_campaign_opts(&s, &opts).unwrap();
        assert_outcomes_identical(&first, &second);
        // A full replay never touches the simulator.
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_a_checkpoint_from_a_different_campaign() {
        let path = wal_path("mismatch.jsonl");
        let opts = |resume| CampaignOptions {
            checkpoint: Some(path.clone()),
            resume,
            ..CampaignOptions::default()
        };
        run_campaign_opts(&spec(PipelineKind::HsTunerNoStop, 3, 31), &opts(false)).unwrap();
        let err =
            run_campaign_opts(&spec(PipelineKind::HsTunerNoStop, 3, 32), &opts(true)).unwrap_err();
        assert!(
            matches!(
                err,
                CampaignError::Checkpoint(CheckpointError::SpecMismatch { field: "seed", .. })
            ),
            "got {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    /// Trace equality without the profile accumulator: threaded strategy
    /// campaigns fold per-layer floats in completion order, so the
    /// profile is the one field two identical campaigns may not share
    /// bitwise.
    fn assert_traces_identical(a: &CampaignOutcome, b: &CampaignOutcome) {
        assert_eq!(a.trace.records.len(), b.trace.records.len());
        for (x, y) in a.trace.records.iter().zip(&b.trace.records) {
            assert_eq!(x.best_perf, y.best_perf, "gen {}", x.iteration);
            assert_eq!(x.generation_best_perf, y.generation_best_perf);
            assert_eq!(x.cost_s, y.cost_s, "gen {}", x.iteration);
            assert_eq!(x.cumulative_cost_s, y.cumulative_cost_s);
            assert_eq!(x.subset_size, y.subset_size);
        }
        assert_eq!(a.trace.best_perf, b.trace.best_perf);
        assert_eq!(a.trace.default_perf, b.trace.default_perf);
        assert_eq!(a.trace.best_config.genes(), b.trace.best_config.genes());
        assert_eq!(a.trace.stopped_early, b.trace.stopped_early);
    }

    /// The tentpole acceptance test: every strategy backend survives a
    /// kill after generation 3 (WAL truncated to three lines plus a torn
    /// tail) and resumes to the bitwise-identical outcome — with two
    /// async evaluator slots racing completions the whole time.
    #[test]
    fn every_strategy_backend_survives_kill_and_resume() {
        for strategy in StrategyKind::ALL {
            let s = spec(PipelineKind::HsTunerNoStop, 6, 41);
            let path = wal_path(&format!("strategy-resume-{}.jsonl", strategy.label()));
            std::fs::remove_file(&path).ok();
            let opts = |resume| CampaignOptions {
                checkpoint: Some(path.clone()),
                resume,
                threads: Some(2),
                ..CampaignOptions::default()
            };
            let uninterrupted = run_strategy_campaign_opts(&s, strategy, &opts(false)).unwrap();
            assert!(
                uninterrupted.trace.records.len() >= 4,
                "{}: need enough generations to kill mid-way",
                strategy.label()
            );

            truncate_wal(&path, 3);
            let resumed = run_strategy_campaign_opts(&s, strategy, &opts(true)).unwrap();
            assert_traces_identical(&uninterrupted, &resumed);
            assert_eq!(
                uninterrupted.scheduler,
                resumed.scheduler,
                "{}: scheduler counters must replay exactly",
                strategy.label()
            );

            let (_, gens) = checkpoint::load(&path).unwrap();
            assert_eq!(gens.len(), uninterrupted.trace.records.len());
            assert!(
                gens.iter().all(|g| g.strategy_state.is_some()),
                "{}: every WAL line must carry the strategy snapshot",
                strategy.label()
            );
            std::fs::remove_file(&path).ok();
        }
    }

    /// A WAL written by one backend must refuse to resume under another:
    /// the header's kind string binds the strategy identity.
    #[test]
    fn resume_rejects_a_checkpoint_from_a_different_strategy() {
        let s = spec(PipelineKind::HsTunerNoStop, 3, 43);
        let path = wal_path("strategy-mismatch.jsonl");
        std::fs::remove_file(&path).ok();
        let opts = |resume| CampaignOptions {
            checkpoint: Some(path.clone()),
            resume,
            threads: Some(1),
            ..CampaignOptions::default()
        };
        run_strategy_campaign_opts(&s, StrategyKind::Random, &opts(false)).unwrap();
        let err = run_strategy_campaign_opts(&s, StrategyKind::Lhs, &opts(true)).unwrap_err();
        assert!(
            matches!(
                err,
                CampaignError::Checkpoint(CheckpointError::SpecMismatch { field: "kind", .. })
            ),
            "got {err}"
        );
        // The classic GaTuner loop must refuse it too.
        let err = run_campaign_opts(&s, &opts(true)).unwrap_err();
        assert!(
            matches!(
                err,
                CampaignError::Checkpoint(CheckpointError::SpecMismatch { field: "kind", .. })
            ),
            "got {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    /// The full TunIO pipeline (smart subsets + RL stopper) rides the
    /// async scheduler and still checkpoints/resumes bitwise.
    #[test]
    fn bo_strategy_with_tunio_agents_survives_kill_and_resume() {
        let s = spec(PipelineKind::TunIo, 8, 47);
        let path = wal_path("bo-tunio-resume.jsonl");
        std::fs::remove_file(&path).ok();
        let opts = |resume| CampaignOptions {
            checkpoint: Some(path.clone()),
            resume,
            threads: Some(3),
            ..CampaignOptions::default()
        };
        let uninterrupted = run_strategy_campaign_opts(&s, StrategyKind::Bo, &opts(false)).unwrap();
        assert!(uninterrupted.trace.records.len() >= 3);
        truncate_wal(&path, 2);
        let resumed = run_strategy_campaign_opts(&s, StrategyKind::Bo, &opts(true)).unwrap();
        assert_traces_identical(&uninterrupted, &resumed);
        std::fs::remove_file(&path).ok();
    }

    /// The noisy-cluster acceptance scenario: a storm-profile racing
    /// campaign killed mid-run resumes to the bitwise-identical trace.
    /// Racing state (per-key sample counts + Welford moments) rides the
    /// WAL's cache entries, and replayed keys short-circuit the race
    /// entirely, so the resumed run re-races only the un-checkpointed
    /// tail — against the same commit-frontier incumbents.
    #[test]
    fn racing_storm_campaign_survives_kill_and_resume() {
        let s = spec(PipelineKind::HsTunerNoStop, 6, 53);
        let path = wal_path("racing-storm-resume.jsonl");
        std::fs::remove_file(&path).ok();
        let opts = |resume| CampaignOptions {
            checkpoint: Some(path.clone()),
            resume,
            threads: Some(2),
            noise_profile: Some(NoiseProfile::Storm),
            racing: Some(RacingConfig::default()),
            ..CampaignOptions::default()
        };
        let uninterrupted =
            run_strategy_campaign_opts(&s, StrategyKind::Random, &opts(false)).unwrap();
        assert!(uninterrupted.trace.records.len() >= 4);

        truncate_wal(&path, 3);
        let resumed = run_strategy_campaign_opts(&s, StrategyKind::Random, &opts(true)).unwrap();
        assert_traces_identical(&uninterrupted, &resumed);
        assert_eq!(uninterrupted.scheduler, resumed.scheduler);
        assert_eq!(
            outcome_json(&uninterrupted),
            outcome_json(&resumed),
            "racing outcome must replay byte-for-byte"
        );

        // The healed WAL carries the racing moments: at least one entry
        // records more than zero samples.
        let (_, gens) = checkpoint::load(&path).unwrap();
        let raced = gens
            .iter()
            .flat_map(|g| &g.entries)
            .filter(|e| e.samples > 0)
            .count();
        assert!(raced > 0, "WAL must persist per-key racing state");
        std::fs::remove_file(&path).ok();
    }

    /// A quiet-profile campaign without racing behaves exactly like a
    /// noise-free one at the accounting level (the quiet profile has no
    /// episodes), and the racing-free WAL stays free of moment fields.
    #[test]
    fn quiet_noise_without_racing_keeps_the_wal_moment_free() {
        let s = spec(PipelineKind::HsTunerNoStop, 3, 59);
        let path = wal_path("quiet-no-racing.jsonl");
        std::fs::remove_file(&path).ok();
        let opts = CampaignOptions {
            checkpoint: Some(path.clone()),
            threads: Some(1),
            noise_profile: Some(NoiseProfile::Quiet),
            ..CampaignOptions::default()
        };
        run_strategy_campaign_opts(&s, StrategyKind::Random, &opts).unwrap();
        let raw = std::fs::read_to_string(&path).unwrap();
        assert!(
            !raw.contains("\"samples\""),
            "fixed-repeat entries must not grow moment fields"
        );
        std::fs::remove_file(&path).ok();
    }

    /// Chaos + kill + resume: with a seeded fault plan active, the
    /// resumed campaign still reproduces the uninterrupted trace bitwise
    /// (failed evaluations re-draw identical faults; successful ones are
    /// replayed from the WAL).
    #[test]
    fn chaos_campaign_survives_kill_and_resume() {
        let s = spec(PipelineKind::HsTunerNoStop, 8, 37);
        let path = wal_path("chaos-resume.jsonl");
        let chaos = |resume| CampaignOptions {
            checkpoint: Some(path.clone()),
            resume,
            fault_plan: Some(FaultPlan::chaos(37, 0.15)),
            policy: Some(FailurePolicy {
                max_retries: 3,
                ..FailurePolicy::default()
            }),
            ..CampaignOptions::default()
        };
        let uninterrupted = run_campaign_opts(&s, &chaos(false)).unwrap();
        assert!(
            uninterrupted.resilience.faults_injected > 0,
            "the chaos plan must actually fire"
        );
        assert!(
            uninterrupted.trace.best_perf > 0.0,
            "campaign must converge to a real configuration under faults"
        );

        truncate_wal(&path, 3);
        let resumed = run_campaign_opts(&s, &chaos(true)).unwrap();
        // Resilience counters legitimately differ (replayed successes do
        // not re-run the simulator, so their fault draws never happen);
        // the campaign outcome itself must not.
        assert_outcomes_identical(&uninterrupted, &resumed);
        std::fs::remove_file(&path).ok();
    }
}

#[cfg(test)]
mod reuse_tests {
    use super::*;
    use crate::TunIo;
    use tunio_iosim::ClusterSpec;
    use tunio_workloads::{flash, hacc};

    #[test]
    fn one_tunio_instance_tunes_multiple_applications() {
        let space = ParameterSpace::tunio_default();
        let mut tunio = TunIo::pretrained(&space, ClusterSpec::cori_4node(), 15, 31);

        let mut spec = CampaignSpec {
            app: hacc(),
            variant: Variant::Kernel,
            kind: PipelineKind::TunIo,
            max_iterations: 15,
            population: 6,
            seed: 31,
            large_scale: false,
        };
        let first = run_campaign_with(&mut tunio, &spec);
        assert!(first.trace.best_perf > first.trace.default_perf);

        // Same agents, new application: learning carries over, history
        // does not.
        spec.app = flash();
        let second = run_campaign_with(&mut tunio, &spec);
        assert!(second.trace.best_perf > second.trace.default_perf);
        assert!(second.trace.iterations() <= 15);
    }
}
