//! End-to-end tuning campaigns (the pipelines compared in §IV).

use crate::early_stop::EarlyStopAgent;
use crate::smart_config::SmartConfigAgent;
use serde::Serialize;
use tunio_iosim::Simulator;
use tunio_params::ParameterSpace;
use tunio_trace as trace;
use tunio_tuner::stoppers::NoStop;
use tunio_tuner::{
    AllParams, EvalEngine, GaConfig, GaTuner, HeuristicStop, Stopper, SubsetProvider, TuningTrace,
};
use tunio_workloads::{AppSpec, Variant, Workload};

/// Which tuning pipeline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PipelineKind {
    /// HSTuner: all parameters, full budget (no early stop).
    HsTunerNoStop,
    /// HSTuner with the 5%/5-iteration heuristic stopper.
    HsTunerHeuristic,
    /// Full TunIO: Smart Configuration Generation + RL Early Stopping.
    TunIo,
    /// Ablation: Impact-First tuning only (no early stop) — Fig 9.
    ImpactFirstOnly,
    /// Ablation: RL Early Stopping only (all parameters) — Fig 10.
    RlStopOnly,
}

impl PipelineKind {
    /// Display name matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            PipelineKind::HsTunerNoStop => "HSTuner (No Stop)",
            PipelineKind::HsTunerHeuristic => "HSTuner (Heuristic Stop)",
            PipelineKind::TunIo => "TunIO",
            PipelineKind::ImpactFirstOnly => "Impact-First Tuning",
            PipelineKind::RlStopOnly => "TunIO Early Stopping",
        }
    }
}

/// A tuning campaign description.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Application under tuning.
    pub app: AppSpec,
    /// Full application, extracted kernel, or reduced kernel.
    pub variant: Variant,
    /// Pipeline to run.
    pub kind: PipelineKind,
    /// Generation budget.
    pub max_iterations: u32,
    /// GA population size.
    pub population: usize,
    /// Seed for everything (GA, agents, simulator noise).
    pub seed: u64,
    /// `false` = 4 nodes / 128 procs; `true` = 500 nodes / 1600 procs.
    pub large_scale: bool,
}

/// A completed campaign.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Pipeline that ran.
    pub kind: PipelineKind,
    /// The tuning trace (per-iteration perf and cost).
    pub trace: TuningTrace,
    /// Per-layer cost attribution pooled over every charged evaluation
    /// (see [`tunio_iosim::Profile`]).
    pub profile: tunio_iosim::Profile,
}

/// Run one campaign.
pub fn run_campaign(spec: &CampaignSpec) -> CampaignOutcome {
    let space = ParameterSpace::tunio_default();
    let sim = if spec.large_scale {
        Simulator::cori_500node(spec.seed)
    } else {
        Simulator::cori_4node(spec.seed)
    };
    let cluster = sim.cluster;
    let workload = Workload::new(spec.app.clone(), spec.variant);
    let engine = EvalEngine::new(sim, workload, space.clone(), 3);
    let mut tuner = GaTuner::new(GaConfig {
        population: spec.population,
        max_iterations: spec.max_iterations,
        seed: spec.seed,
        ..GaConfig::default()
    });

    let needs_smart = matches!(
        spec.kind,
        PipelineKind::TunIo | PipelineKind::ImpactFirstOnly
    );
    let needs_rl_stop = matches!(spec.kind, PipelineKind::TunIo | PipelineKind::RlStopOnly);

    let mut smart = if needs_smart {
        Some(SmartConfigAgent::pretrained(&space, cluster, spec.seed))
    } else {
        None
    };
    let mut all_params = AllParams;

    let mut stopper: Box<dyn Stopper> = if needs_rl_stop {
        let mut agent = EarlyStopAgent::pretrained(spec.max_iterations, spec.seed);
        agent.begin_campaign();
        Box::new(agent)
    } else {
        match spec.kind {
            PipelineKind::HsTunerHeuristic => Box::new(HeuristicStop::paper_default()),
            _ => Box::new(NoStop),
        }
    };

    let subsets: &mut dyn SubsetProvider = match &mut smart {
        Some(agent) => agent,
        None => &mut all_params,
    };

    let span = campaign_span(spec);
    let trace = tuner.run(&engine, stopper.as_mut(), subsets);
    finish_campaign(span, spec, &engine, &trace);
    CampaignOutcome {
        kind: spec.kind,
        trace,
        profile: engine.profile_snapshot(),
    }
}

/// Open the top-level `campaign` span carrying the campaign's identity.
fn campaign_span(spec: &CampaignSpec) -> trace::SpanGuard {
    trace::span(
        "campaign",
        vec![
            ("kind", spec.kind.label().into()),
            ("app", spec.app.name.as_str().into()),
            ("variant", format!("{:?}", spec.variant).into()),
            ("large_scale", spec.large_scale.into()),
            ("seed", spec.seed.into()),
        ],
    )
}

/// Close a campaign: emit the `campaign.done` summary event, flush the
/// metric registry into the trace, and drop the campaign span (which
/// records total wall time).
fn finish_campaign(
    span: trace::SpanGuard,
    spec: &CampaignSpec,
    engine: &EvalEngine,
    outcome: &TuningTrace,
) {
    if trace::enabled() {
        let minutes = outcome.total_cost_s() / 60.0;
        trace::event(
            "campaign.done",
            vec![
                ("kind", spec.kind.label().into()),
                ("app", spec.app.name.as_str().into()),
                ("best_perf", outcome.best_perf.into()),
                ("default_perf", outcome.default_perf.into()),
                ("iterations", outcome.iterations().into()),
                ("stopped_early", outcome.stopped_early.into()),
                ("stopper_name", outcome.stopper_name.as_str().into()),
                ("evaluations", engine.evaluations().into()),
                ("cache_hits", engine.cache_hits().into()),
                ("total_cost_s", outcome.total_cost_s().into()),
                (
                    "final_roti",
                    crate::roti::roti(outcome.best_perf, outcome.default_perf, minutes).into(),
                ),
                (
                    "peak_roti",
                    crate::roti::peak_roti(outcome)
                        .map(|p| p.roti)
                        .unwrap_or(0.0)
                        .into(),
                ),
            ],
        );
        trace::flush_metrics();
    }
    drop(span);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tunio_workloads::hacc;

    fn spec(kind: PipelineKind, iters: u32) -> CampaignSpec {
        CampaignSpec {
            app: hacc(),
            variant: Variant::Kernel,
            kind,
            max_iterations: iters,
            population: 6,
            seed: 9,
            large_scale: false,
        }
    }

    #[test]
    fn hstuner_no_stop_uses_full_budget() {
        let out = run_campaign(&spec(PipelineKind::HsTunerNoStop, 8));
        assert_eq!(out.trace.iterations(), 8);
        assert!(!out.trace.stopped_early);
    }

    #[test]
    fn tunio_pipeline_improves_and_usually_stops_early() {
        let out = run_campaign(&spec(PipelineKind::TunIo, 30));
        assert!(out.trace.best_perf > out.trace.default_perf);
        assert!(out.trace.iterations() <= 30);
        assert_eq!(out.trace.stopper_name, "tunio-rl-early-stop");
    }

    #[test]
    fn impact_first_converges_in_fewer_iterations() {
        // Fig 9's headline: Impact-First tuning reaches the target
        // bandwidth in fewer iterations than tuning everything. Averaged
        // over seeds to smooth GA luck.
        let mut smart_total = 0u32;
        let mut plain_total = 0u32;
        for seed in [5, 21, 33] {
            let mut s = spec(PipelineKind::ImpactFirstOnly, 25);
            s.seed = seed;
            let mut p = spec(PipelineKind::HsTunerNoStop, 25);
            p.seed = seed;
            let smart = run_campaign(&s);
            let plain = run_campaign(&p);
            let target = 0.9 * plain.trace.best_perf.min(smart.trace.best_perf);
            let first_hit = |t: &TuningTrace| {
                t.records
                    .iter()
                    .find(|r| r.best_perf >= target)
                    .map(|r| r.iteration)
                    .unwrap_or(26)
            };
            smart_total += first_hit(&smart.trace);
            plain_total += first_hit(&plain.trace);
        }
        assert!(
            smart_total <= plain_total,
            "impact-first mean hit {smart_total}/3, plain {plain_total}/3"
        );
    }

    #[test]
    fn kernel_campaign_is_cheaper_than_full_app() {
        let mut k = spec(PipelineKind::HsTunerNoStop, 6);
        k.variant = Variant::Kernel;
        let mut f = spec(PipelineKind::HsTunerNoStop, 6);
        f.variant = Variant::Full;
        let kernel = run_campaign(&k);
        let full = run_campaign(&f);
        assert!(
            kernel.trace.total_cost_s() < full.trace.total_cost_s(),
            "kernel {} vs full {}",
            kernel.trace.total_cost_s(),
            full.trace.total_cost_s()
        );
    }

    #[test]
    fn campaign_outcome_carries_attribution_profile() {
        let out = run_campaign(&spec(PipelineKind::HsTunerNoStop, 5));
        let p = &out.profile;
        let total = p.total_time_s();
        assert!(total > 0.0, "campaign must charge some simulated time");
        // The layer partition is exact: io + compute + mds == total.
        let compute = p.get(tunio_iosim::Layer::Compute).self_s;
        let mds = p.get(tunio_iosim::Layer::Mds).self_s;
        let parts = p.io_time_s() + compute + mds;
        assert!(
            (parts - total).abs() < 1e-9 * total,
            "partition {parts} vs total {total}"
        );
        // A HACC checkpoint campaign spends real time in the data path.
        // (The kernel variant has no compute phases, so only I/O is required.)
        assert!(p.io_time_s() > 0.0);
    }

    #[test]
    fn labels_are_distinct() {
        let kinds = [
            PipelineKind::HsTunerNoStop,
            PipelineKind::HsTunerHeuristic,
            PipelineKind::TunIo,
            PipelineKind::ImpactFirstOnly,
            PipelineKind::RlStopOnly,
        ];
        let mut labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), kinds.len());
    }
}

/// Run a campaign with an existing, pre-trained [`crate::TunIo`] instance
/// whose agents carry their learning across campaigns — the paper's
/// "when the component is exposed to new applications, it can learn from
/// the new trends it sees" (§V-C). The early stopper's campaign-local
/// history is reset; everything learned (Q-networks, observer, impact
/// ranking) persists.
pub fn run_campaign_with(tunio: &mut crate::TunIo, spec: &CampaignSpec) -> CampaignOutcome {
    let space = ParameterSpace::tunio_default();
    let sim = if spec.large_scale {
        Simulator::cori_500node(spec.seed)
    } else {
        Simulator::cori_4node(spec.seed)
    };
    let workload = Workload::new(spec.app.clone(), spec.variant);
    let engine = EvalEngine::new(sim, workload, space, 3);
    let mut tuner = GaTuner::new(GaConfig {
        population: spec.population,
        max_iterations: spec.max_iterations,
        seed: spec.seed,
        ..GaConfig::default()
    });
    tunio.early_stop.max_iterations = spec.max_iterations;
    tunio.early_stop.begin_campaign();
    let crate::TunIo {
        smart_config,
        early_stop,
        ..
    } = tunio;
    let span = campaign_span(spec);
    let trace = tuner.run(&engine, early_stop, smart_config);
    finish_campaign(span, spec, &engine, &trace);
    CampaignOutcome {
        kind: PipelineKind::TunIo,
        trace,
        profile: engine.profile_snapshot(),
    }
}

#[cfg(test)]
mod reuse_tests {
    use super::*;
    use crate::TunIo;
    use tunio_iosim::ClusterSpec;
    use tunio_workloads::{flash, hacc};

    #[test]
    fn one_tunio_instance_tunes_multiple_applications() {
        let space = ParameterSpace::tunio_default();
        let mut tunio = TunIo::pretrained(&space, ClusterSpec::cori_4node(), 15, 31);

        let mut spec = CampaignSpec {
            app: hacc(),
            variant: Variant::Kernel,
            kind: PipelineKind::TunIo,
            max_iterations: 15,
            population: 6,
            seed: 31,
            large_scale: false,
        };
        let first = run_campaign_with(&mut tunio, &spec);
        assert!(first.trace.best_perf > first.trace.default_perf);

        // Same agents, new application: learning carries over, history
        // does not.
        spec.app = flash();
        let second = run_campaign_with(&mut tunio, &spec);
        assert!(second.trace.best_perf > second.trace.default_perf);
        assert!(second.trace.iterations() <= 15);
    }
}
