//! `tunio-tune` — run a tuning campaign from the command line.
//!
//! ```text
//! tunio-tune --app hacc [--pipeline tunio|hstuner|hstuner-heuristic|
//!            impact-first|rl-stop] [--strategy ga|random|lhs|bo]
//!            [--threads N] [--variant full|kernel|reduced:<frac>]
//!            [--iterations N] [--population N] [--seed N] [--large-scale]
//!            [--checkpoint FILE] [--resume] [--abort-after N]
//!            [--fault-rate F] [--fault-seed N]
//!            [--noise-profile quiet|busy|storm] [--noise-seed N] [--racing]
//!            [--infer-workload SAMPLE|FILE.c] [--bind NAME=VALUE]...
//!            [--xml-out FILE] [--out-json FILE]
//!            [--metrics-addr HOST:PORT] [--quiet]
//! ```
//!
//! Prints per-generation progress and the tuned configuration, optionally
//! writing it as an H5Tuner-style XML file (the format the reference
//! implementation injects into HDF5 applications).
//!
//! `--checkpoint` writes a JSONL write-ahead log of completed
//! generations; `--resume` continues a killed campaign from it (the
//! resumed outcome is bitwise-identical to the uninterrupted run).
//! `--fault-rate` attaches a seeded chaos plan to the simulator
//! (transient kills at the given rate, plus stragglers, OST flaps and
//! corrupted reports at derived rates); `--abort-after N` exits cleanly
//! once generation N is durable in the log — the kill switch used by the
//! crash/resume CI job.
//!
//! `--noise-profile` attaches the seeded heteroscedastic interference
//! model to the simulator (noisy-neighbor OST episodes plus time-varying
//! network contention; `--noise-seed` defaults to `--seed`). `--racing`
//! switches strategy campaigns (`--strategy ...`) to noise-robust racing
//! evaluation: configurations whose confidence interval still overlaps
//! the incumbent get extra repeats, clear losers are discarded early.
//! Like `--fault-rate`, resumed campaigns must re-pass the same noise
//! and racing flags.
//!
//! `--infer-workload` runs static workload inference (abstract
//! interpretation, see `tunio-infer`) over a built-in sample or a
//! C-minus source file and warm-starts the search from the result: the
//! smart subset agent ranks parameters by the inferred features instead
//! of the offline sweep, and `--strategy` backends get feature-guided
//! seed configurations planted in their starting state. `--bind`
//! overrides the inferred entry's parameter bindings.
//!
//! `--strategy` routes the campaign through the asynchronous search
//! scheduler instead of the classic generation-synchronous GA loop:
//! `ga` (the same GA, ported), `random`, `lhs` (Latin hypercube) or
//! `bo` (surrogate-driven Bayesian optimization). `--threads` sets the
//! parallel evaluator slot count (default: host cores, capped at 8);
//! the outcome is bitwise identical for every value.

use std::path::PathBuf;
use std::process::ExitCode;
use tunio::pipeline::{
    outcome_json, run_campaign_opts, run_strategy_campaign_opts, CampaignOptions, CampaignSpec,
    PipelineKind, StrategyKind,
};
use tunio_iosim::{FaultPlan, NoiseProfile};
use tunio_params::ParameterSpace;
use tunio_workloads::{all_apps, Variant};

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

struct Args {
    app: String,
    kind: PipelineKind,
    strategy: Option<StrategyKind>,
    threads: Option<usize>,
    variant: Variant,
    iterations: u32,
    population: usize,
    seed: u64,
    large_scale: bool,
    checkpoint: Option<PathBuf>,
    resume: bool,
    abort_after: Option<u32>,
    fault_rate: Option<f64>,
    fault_seed: Option<u64>,
    noise_profile: Option<NoiseProfile>,
    noise_seed: Option<u64>,
    racing: bool,
    xml_out: Option<String>,
    out_json: Option<String>,
    metrics_addr: Option<String>,
    quiet: bool,
    infer_workload: Option<String>,
    binds: Vec<(String, i64)>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: tunio-tune --app <hacc|vpic|flash|macsio-vpic-dipole|bdcats>\n\
         \x20      [--pipeline tunio|hstuner|hstuner-heuristic|impact-first|rl-stop]\n\
         \x20      [--strategy ga|random|lhs|bo] [--threads N]\n\
         \x20      [--variant full|kernel|reduced:<fraction>]\n\
         \x20      [--iterations N] [--population N] [--seed N]\n\
         \x20      [--large-scale]\n\
         \x20      [--checkpoint FILE] [--resume] [--abort-after N]\n\
         \x20      [--fault-rate F] [--fault-seed N]\n\
         \x20      [--noise-profile quiet|busy|storm] [--noise-seed N] [--racing]\n\
         \x20      [--infer-workload SAMPLE|FILE.c] [--bind NAME=VALUE]...\n\
         \x20      [--xml-out FILE] [--out-json FILE]\n\
         \x20      [--metrics-addr HOST:PORT] [--quiet]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        app: String::new(),
        kind: PipelineKind::TunIo,
        strategy: None,
        threads: None,
        variant: Variant::Kernel,
        iterations: 30,
        population: 8,
        seed: 0,
        large_scale: false,
        checkpoint: None,
        resume: false,
        abort_after: None,
        fault_rate: None,
        fault_seed: None,
        noise_profile: None,
        noise_seed: None,
        racing: false,
        xml_out: None,
        out_json: None,
        metrics_addr: None,
        quiet: false,
        infer_workload: None,
        binds: Vec::new(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |argv: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--app" => args.app = value(&argv, &mut i, "--app")?,
            "--pipeline" => {
                args.kind = match value(&argv, &mut i, "--pipeline")?.as_str() {
                    "tunio" => PipelineKind::TunIo,
                    "hstuner" => PipelineKind::HsTunerNoStop,
                    "hstuner-heuristic" => PipelineKind::HsTunerHeuristic,
                    "impact-first" => PipelineKind::ImpactFirstOnly,
                    "rl-stop" => PipelineKind::RlStopOnly,
                    other => return Err(format!("unknown pipeline `{other}`")),
                }
            }
            "--strategy" => {
                let v = value(&argv, &mut i, "--strategy")?;
                args.strategy =
                    Some(StrategyKind::parse(&v).ok_or_else(|| {
                        format!("unknown strategy `{v}` (want ga|random|lhs|bo)")
                    })?);
            }
            "--threads" => {
                let n: usize = value(&argv, &mut i, "--threads")?
                    .parse()
                    .map_err(|e| format!("bad threads: {e}"))?;
                if n == 0 {
                    return Err("threads must be >= 1".into());
                }
                args.threads = Some(n);
            }
            "--variant" => {
                let v = value(&argv, &mut i, "--variant")?;
                args.variant = if v == "full" {
                    Variant::Full
                } else if v == "kernel" {
                    Variant::Kernel
                } else if let Some(frac) = v.strip_prefix("reduced:") {
                    let keep_fraction: f64 =
                        frac.parse().map_err(|_| format!("bad fraction `{frac}`"))?;
                    if !(0.0..=1.0).contains(&keep_fraction) || keep_fraction == 0.0 {
                        return Err("reduced fraction must be in (0, 1]".into());
                    }
                    Variant::ReducedKernel { keep_fraction }
                } else {
                    return Err(format!("unknown variant `{v}`"));
                };
            }
            "--iterations" => {
                args.iterations = value(&argv, &mut i, "--iterations")?
                    .parse()
                    .map_err(|e| format!("bad iterations: {e}"))?
            }
            "--population" => {
                args.population = value(&argv, &mut i, "--population")?
                    .parse()
                    .map_err(|e| format!("bad population: {e}"))?
            }
            "--seed" => {
                args.seed = value(&argv, &mut i, "--seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?
            }
            "--large-scale" => args.large_scale = true,
            "--checkpoint" => {
                args.checkpoint = Some(PathBuf::from(value(&argv, &mut i, "--checkpoint")?))
            }
            "--resume" => args.resume = true,
            "--abort-after" => {
                args.abort_after = Some(
                    value(&argv, &mut i, "--abort-after")?
                        .parse()
                        .map_err(|e| format!("bad abort-after: {e}"))?,
                )
            }
            "--fault-rate" => {
                let rate: f64 = value(&argv, &mut i, "--fault-rate")?
                    .parse()
                    .map_err(|e| format!("bad fault rate: {e}"))?;
                if !(0.0..=0.5).contains(&rate) {
                    return Err("fault rate must be in [0, 0.5]".into());
                }
                args.fault_rate = Some(rate);
            }
            "--fault-seed" => {
                args.fault_seed = Some(
                    value(&argv, &mut i, "--fault-seed")?
                        .parse()
                        .map_err(|e| format!("bad fault seed: {e}"))?,
                )
            }
            "--noise-profile" => {
                let v = value(&argv, &mut i, "--noise-profile")?;
                args.noise_profile = Some(NoiseProfile::parse(&v).ok_or_else(|| {
                    format!("unknown noise profile `{v}` (want quiet|busy|storm)")
                })?);
            }
            "--noise-seed" => {
                args.noise_seed = Some(
                    value(&argv, &mut i, "--noise-seed")?
                        .parse()
                        .map_err(|e| format!("bad noise seed: {e}"))?,
                )
            }
            "--racing" => args.racing = true,
            "--xml-out" => args.xml_out = Some(value(&argv, &mut i, "--xml-out")?),
            "--out-json" => args.out_json = Some(value(&argv, &mut i, "--out-json")?),
            "--metrics-addr" => args.metrics_addr = Some(value(&argv, &mut i, "--metrics-addr")?),
            "--infer-workload" => {
                args.infer_workload = Some(value(&argv, &mut i, "--infer-workload")?)
            }
            "--bind" => {
                let kv = value(&argv, &mut i, "--bind")?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("--bind expects NAME=VALUE, got `{kv}`"))?;
                let v: i64 = v
                    .parse()
                    .map_err(|e| format!("--bind {k}: bad value: {e}"))?;
                args.binds.push((k.to_string(), v));
            }
            "--quiet" => args.quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    if args.app.is_empty() {
        return Err("missing --app".into());
    }
    Ok(args)
}

/// Resolve `--infer-workload`'s argument (a built-in sample name or a
/// C-minus source path), run static inference, and return the features
/// of the entry that actually performs I/O (plus its name for logging).
fn infer_features(
    input: &str,
    binds: &[(String, i64)],
) -> Result<(tunio_workloads::WorkloadFeatures, String), String> {
    let src = match tunio_cminus::samples::all_samples()
        .into_iter()
        .find(|(n, _)| *n == input)
    {
        Some((_, src)) => src.to_string(),
        None => std::fs::read_to_string(input).map_err(|e| {
            let known: Vec<&str> = tunio_cminus::samples::all_samples()
                .iter()
                .map(|(n, _)| *n)
                .collect();
            format!(
                "--infer-workload `{input}` is neither a readable file ({e}) nor a \
                 built-in sample (known: {})",
                known.join(", ")
            )
        })?,
    };
    let prog =
        tunio_cminus::parser::parse(&src).map_err(|e| format!("{input}: parse error: {e}"))?;
    let overrides: std::collections::BTreeMap<String, i64> = binds.iter().cloned().collect();
    let inferred = tunio_discovery::infer_program(&prog, &overrides);
    inferred
        .into_iter()
        .find(|iw| !iw.spec.iteration_io.is_empty())
        .map(|iw| (iw.features, iw.prediction.entry))
        .ok_or_else(|| format!("{input}: no entry function with inferable I/O"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            return usage();
        }
    };

    let Some(app) = all_apps().into_iter().find(|a| a.name == args.app) else {
        eprintln!("unknown application `{}`", args.app);
        return usage();
    };

    // Keep the server handle alive for the whole campaign; dropping it
    // stops the background thread.
    let _metrics_server = match args.metrics_addr.as_deref() {
        Some(addr) => match tunio_trace::MetricsServer::serve(addr) {
            Ok(server) => {
                if !args.quiet {
                    eprintln!("serving metrics on http://{}/metrics", server.addr());
                }
                Some(server)
            }
            Err(e) => {
                eprintln!("cannot bind metrics server on {addr}: {e}");
                return ExitCode::from(1);
            }
        },
        None => None,
    };

    let spec = CampaignSpec {
        app,
        variant: args.variant,
        kind: args.kind,
        max_iterations: args.iterations,
        population: args.population,
        seed: args.seed,
        large_scale: args.large_scale,
    };
    if !args.quiet {
        let search = match args.strategy {
            Some(s) => format!("{} [strategy={}]", spec.kind.label(), s.label()),
            None => spec.kind.label().to_string(),
        };
        eprintln!(
            "tuning {} with {} ({} iterations max, population {}, {})…",
            args.app,
            search,
            spec.max_iterations,
            spec.population,
            if spec.large_scale {
                "500 nodes / 1600 procs"
            } else {
                "4 nodes / 128 procs"
            }
        );
    }

    let warm_start = match args.infer_workload.as_deref() {
        Some(input) => match infer_features(input, &args.binds) {
            Ok((features, entry)) => {
                if !args.quiet {
                    eprintln!(
                        "warm-start from static inference of `{entry}` \
                         (confidence {:.2}, {:.1} MiB predicted)",
                        features.confidence,
                        features.total_bytes as f64 / (1024.0 * 1024.0),
                    );
                }
                Some(features)
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                return usage();
            }
        },
        None => None,
    };

    let opts = CampaignOptions {
        checkpoint: args.checkpoint.clone(),
        resume: args.resume,
        fault_plan: args
            .fault_rate
            .map(|rate| FaultPlan::chaos(args.fault_seed.unwrap_or(args.seed), rate)),
        policy: None,
        abort_after: args.abort_after,
        threads: args.threads,
        warm_start,
        preload: Vec::new(),
        noise_profile: args.noise_profile,
        noise_seed: args.noise_seed,
        racing: args.racing.then(tunio_tuner::RacingConfig::default),
    };
    if args.racing && args.strategy.is_none() {
        eprintln!("error: --racing needs --strategy (the classic GA loop fixed-repeat averages)");
        return usage();
    }
    if args.resume && args.checkpoint.is_none() {
        eprintln!("error: --resume needs --checkpoint");
        return usage();
    }
    if let (Some(path), false) = (&args.checkpoint, args.quiet) {
        if args.resume && path.exists() {
            eprintln!("resuming from checkpoint {}", path.display());
        } else {
            eprintln!("checkpointing to {}", path.display());
        }
    }

    let result = match args.strategy {
        Some(strategy) => run_strategy_campaign_opts(&spec, strategy, &opts),
        None => run_campaign_opts(&spec, &opts),
    };
    let outcome = match result {
        Ok(o) => o,
        Err(e) => {
            eprintln!("campaign failed: {e}");
            return ExitCode::from(1);
        }
    };
    let trace = &outcome.trace;
    if !args.quiet {
        for r in &trace.records {
            eprintln!(
                "  gen {:>3}  best {:>8.3} GiB/s  subset {:>2}  {:>8.1} min",
                r.iteration,
                r.best_perf / GIB,
                r.subset_size,
                r.cumulative_cost_s / 60.0
            );
        }
    }

    let space = ParameterSpace::tunio_default();
    println!(
        "tuned: {:.3} GiB/s → {:.3} GiB/s ({:.2}x) in {} generations / {:.0} simulated minutes",
        trace.default_perf / GIB,
        trace.best_perf / GIB,
        trace.best_perf / trace.default_perf.max(1e-12),
        trace.iterations(),
        trace.total_cost_min(),
    );
    println!(
        "configuration: {}",
        trace.best_config.describe_changes(&space)
    );
    if let Some(stats) = &outcome.scheduler {
        println!(
            "scheduler: {} proposed, {} committed, {} aliases, {} barrier stalls",
            stats.proposed, stats.committed, stats.aliases, stats.barrier_stalls
        );
    }
    if outcome.racing.settled > 0 {
        let rc = &outcome.racing;
        println!(
            "racing: {} keys settled from {} samples, {} top-ups, {} discarded early",
            rc.settled, rc.samples, rc.topups, rc.discards
        );
    }
    let res = &outcome.resilience;
    if args.fault_rate.is_some() || res.faults_injected > 0 {
        println!(
            "resilience: {} faults injected, {} retries, {} failed evaluations, \
             {} quarantined keys, {} penalties served",
            res.faults_injected,
            res.retries,
            res.failed_evaluations,
            res.quarantined_keys,
            res.penalties_served
        );
    }

    if let Some(path) = args.out_json {
        let json = outcome_json(&outcome);
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(1);
        }
        if !args.quiet {
            eprintln!("wrote outcome JSON to {path}");
        }
    }

    if let Some(path) = args.xml_out {
        let xml = tunio_params::to_xml(&trace.best_config, &space, false);
        if let Err(e) = std::fs::write(&path, &xml) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(1);
        }
        if !args.quiet {
            eprintln!("wrote H5Tuner XML to {path}");
        }
    }
    ExitCode::SUCCESS
}
