//! Property-based tests: generated programs round-trip through the
//! printer and parser with identical structure.

use proptest::prelude::*;
use tunio_cminus::ast::{Block, Expr, Function, Program, Stmt, StmtId, StmtKind};
use tunio_cminus::parser::parse;
use tunio_cminus::printer::print_program;

/// Strategy for identifiers (avoid keywords).
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| {
        !matches!(
            s.as_str(),
            "if" | "else"
                | "for"
                | "while"
                | "return"
                | "int"
                | "void"
                | "double"
                | "float"
                | "char"
                | "long"
                | "unsigned"
                | "signed"
                | "const"
                | "struct"
                | "static"
                | "short"
        )
    })
}

/// Strategy for simple expressions (bounded depth).
fn expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        ident().prop_map(Expr::Ident),
        (0i64..1_000_000).prop_map(Expr::Int),
        "[a-z]{0,8}".prop_map(Expr::Str),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = expr(depth - 1);
    prop_oneof![
        leaf,
        (
            prop_oneof![Just("+"), Just("-"), Just("*"), Just("<"), Just("==")],
            sub.clone(),
            sub.clone()
        )
            .prop_map(|(op, l, r)| Expr::Binary {
                op: op.into(),
                lhs: Box::new(l),
                rhs: Box::new(r)
            }),
        (ident(), proptest::collection::vec(sub.clone(), 0..3))
            .prop_map(|(name, args)| Expr::Call { name, args }),
        sub.prop_map(|index| Expr::Index {
            base: Box::new(Expr::Ident("arr".into())),
            index: Box::new(index),
        }),
    ]
    .boxed()
}

/// Strategy for statements (bounded nesting).
fn stmt(depth: u32, next_id: std::rc::Rc<std::cell::Cell<u32>>) -> BoxedStrategy<Stmt> {
    let id_gen = move || {
        let id = next_id.get();
        next_id.set(id + 1);
        StmtId(id)
    };
    let fresh = std::rc::Rc::new(id_gen);
    let f1 = fresh.clone();
    let f2 = fresh.clone();
    let f3 = fresh.clone();
    let simple = prop_oneof![
        (ident(), expr(1)).prop_map(move |(name, init)| Stmt::new(
            f1(),
            StmtKind::Decl {
                ty: "int".into(),
                name,
                array: None,
                init: Some(init)
            }
        )),
        (ident(), expr(1)).prop_map(move |(name, rhs)| Stmt::new(
            f2(),
            StmtKind::Assign {
                lhs: Expr::Ident(name),
                op: "=".into(),
                rhs
            }
        )),
        (ident(), proptest::collection::vec(expr(1), 0..3)).prop_map(
            move |(name, args)| Stmt::new(f3(), StmtKind::Expr(Expr::Call { name, args }))
        ),
    ];
    if depth == 0 {
        return simple.boxed();
    }
    let f4 = fresh.clone();
    let inner = stmt(
        depth - 1,
        std::rc::Rc::new(std::cell::Cell::new(1000 * depth)),
    );
    prop_oneof![
        simple,
        (expr(1), proptest::collection::vec(inner, 1..3)).prop_map(move |(cond, stmts)| Stmt::new(
            f4(),
            StmtKind::If {
                cond,
                then_block: Block { stmts },
                else_block: None
            }
        )),
    ]
    .boxed()
}

fn program() -> impl Strategy<Value = Program> {
    let counter = std::rc::Rc::new(std::cell::Cell::new(0u32));
    proptest::collection::vec(stmt(2, counter), 1..8).prop_map(|stmts| Program {
        functions: vec![Function {
            ret: "void".into(),
            name: "generated".into(),
            params: vec![],
            body: Block { stmts },
        }],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn printed_programs_reparse_with_same_structure(prog in program()) {
        let printed = print_program(&prog);
        let reparsed = parse(&printed.text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{}", printed.text)))?;
        prop_assert_eq!(prog.stmt_count(), reparsed.stmt_count());
        // Printing is a fixpoint after one round trip.
        let printed2 = print_program(&reparsed);
        let reparsed2 = parse(&printed2.text).unwrap();
        prop_assert_eq!(print_program(&reparsed2).text, printed2.text);
    }

    #[test]
    fn stmt_line_map_is_injective_over_simple_stmts(prog in program()) {
        let printed = print_program(&prog);
        // Every statement id got a line, and lines are within the text.
        let line_count = printed.text.lines().count() as u32;
        prop_assert_eq!(printed.stmt_lines.len(), prog.stmt_count());
        for line in printed.stmt_lines.values() {
            prop_assert!(*line >= 1 && *line <= line_count);
        }
    }
}
