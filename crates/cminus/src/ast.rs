//! Abstract syntax tree for the C subset.
//!
//! Every statement carries a [`StmtId`] assigned in parse order. The
//! discovery marking loop works in terms of these ids; the printer emits
//! one statement per line so ids map to normalized source lines.

use crate::span::Span;
use serde::{Deserialize, Serialize};

/// Stable identity of a statement within a program (parse order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StmtId(pub u32);

/// An expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Identifier reference.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating literal (kept as text for faithful round-tripping).
    Float(String),
    /// String literal (contents without quotes).
    Str(String),
    /// Character literal (contents without quotes).
    Char(String),
    /// Function call.
    Call {
        /// Callee name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator token text (e.g. `+`, `<=`, `&&`).
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Prefix unary operation (`-`, `!`, `*`, `&`, `++`, `--`).
    Unary {
        /// Operator token text.
        op: String,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Postfix `++` / `--`.
    Postfix {
        /// Operator token text.
        op: String,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Array indexing `base[index]`.
    Index {
        /// Indexed expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Member access `base.field` or `base->field`.
    Member {
        /// Accessed expression.
        base: Box<Expr>,
        /// Field name.
        field: String,
        /// `true` for `->`.
        arrow: bool,
    },
}

impl Expr {
    /// Collect every identifier referenced in this expression (reads).
    pub fn idents(&self, out: &mut Vec<String>) {
        match self {
            Expr::Ident(n) => out.push(n.clone()),
            Expr::Call { args, .. } => {
                for a in args {
                    a.idents(out);
                }
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.idents(out);
                rhs.idents(out);
            }
            Expr::Unary { operand, .. } | Expr::Postfix { operand, .. } => operand.idents(out),
            Expr::Index { base, index } => {
                base.idents(out);
                index.idents(out);
            }
            Expr::Member { base, .. } => base.idents(out),
            _ => {}
        }
    }

    /// Collect every function-call name in this expression.
    pub fn call_names(&self, out: &mut Vec<String>) {
        match self {
            Expr::Call { name, args } => {
                out.push(name.clone());
                for a in args {
                    a.call_names(out);
                }
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.call_names(out);
                rhs.call_names(out);
            }
            Expr::Unary { operand, .. } | Expr::Postfix { operand, .. } => operand.call_names(out),
            Expr::Index { base, index } => {
                base.call_names(out);
                index.call_names(out);
            }
            Expr::Member { base, .. } => base.call_names(out),
            _ => {}
        }
    }

    /// Root identifier of an lvalue expression (`a[i].f` → `a`).
    pub fn lvalue_root(&self) -> Option<&str> {
        match self {
            Expr::Ident(n) => Some(n),
            Expr::Index { base, .. } | Expr::Member { base, .. } => base.lvalue_root(),
            Expr::Unary { op, operand } if op == "*" => operand.lvalue_root(),
            _ => None,
        }
    }
}

/// A braced block of statements.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StmtKind {
    /// Variable declaration `ty name [= init];` (array suffix kept in `ty`).
    Decl {
        /// Type text (e.g. `hid_t`, `double *`).
        ty: String,
        /// Variable name.
        name: String,
        /// Optional array size suffix text (e.g. `[100]`).
        array: Option<String>,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// Assignment `lhs op rhs;` where op ∈ {=, +=, -=, *=, /=}.
    Assign {
        /// Assignment target.
        lhs: Expr,
        /// Operator text.
        op: String,
        /// Assigned value.
        rhs: Expr,
    },
    /// Bare expression statement (usually a call).
    Expr(Expr),
    /// `if` with optional `else`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_block: Block,
        /// Optional else branch.
        else_block: Option<Block>,
    },
    /// `for (init; cond; update) { body }` — init/update are nested
    /// statements so they get their own ids.
    For {
        /// Initialization statement (may be `Empty`).
        init: Box<Stmt>,
        /// Loop condition (None = infinite).
        cond: Option<Expr>,
        /// Update statement (may be `Empty`).
        update: Box<Stmt>,
        /// Loop body.
        body: Block,
    },
    /// `while (cond) { body }`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `do { body } while (cond);`
    DoWhile {
        /// Loop body (runs at least once).
        body: Block,
        /// Loop condition, checked after each pass.
        cond: Expr,
    },
    /// `return [expr];`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// Empty statement `;`.
    Empty,
}

/// A statement with its id and source span.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Stmt {
    /// Stable id (parse order).
    pub id: StmtId,
    /// What the statement is.
    pub kind: StmtKind,
    /// Source range the statement covers (`Span::default()` for
    /// statements synthesized by transforms rather than the parser).
    pub span: Span,
}

impl Stmt {
    /// Build a synthesized statement with no source span.
    pub fn new(id: StmtId, kind: StmtKind) -> Self {
        Stmt {
            id,
            kind,
            span: Span::default(),
        }
    }
}

/// Equality ignores spans: two statements are equal if they have the same
/// id and structure. Transforms synthesize statements with empty spans and
/// printed/reparsed programs land on different lines; neither should break
/// structural comparison.
impl PartialEq for Stmt {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id && self.kind == other.kind
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Return type text.
    pub ret: String,
    /// Function name.
    pub name: String,
    /// Parameters as (type text, name).
    pub params: Vec<(String, String)>,
    /// Body.
    pub body: Block,
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Program {
    /// Function definitions in order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Visit every statement (pre-order, including nested `for`
    /// init/update), with its enclosing-statement ancestry (innermost
    /// last).
    pub fn visit_stmts<'a>(&'a self, mut f: impl FnMut(&'a Stmt, &[StmtId])) {
        fn walk<'a>(
            block: &'a Block,
            ancestry: &mut Vec<StmtId>,
            f: &mut impl FnMut(&'a Stmt, &[StmtId]),
        ) {
            for stmt in &block.stmts {
                visit_one(stmt, ancestry, f);
            }
        }
        fn visit_one<'a>(
            stmt: &'a Stmt,
            ancestry: &mut Vec<StmtId>,
            f: &mut impl FnMut(&'a Stmt, &[StmtId]),
        ) {
            f(stmt, ancestry);
            ancestry.push(stmt.id);
            match &stmt.kind {
                StmtKind::If {
                    then_block,
                    else_block,
                    ..
                } => {
                    walk(then_block, ancestry, f);
                    if let Some(e) = else_block {
                        walk(e, ancestry, f);
                    }
                }
                StmtKind::For {
                    init, update, body, ..
                } => {
                    visit_one(init, ancestry, f);
                    visit_one(update, ancestry, f);
                    walk(body, ancestry, f);
                }
                StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
                    walk(body, ancestry, f)
                }
                _ => {}
            }
            ancestry.pop();
        }
        let mut ancestry = Vec::new();
        for func in &self.functions {
            walk(&func.body, &mut ancestry, &mut f);
        }
    }

    /// Total number of statements (all nesting levels).
    pub fn stmt_count(&self) -> usize {
        let mut n = 0;
        self.visit_stmts(|_, _| n += 1);
        n
    }

    /// Find a statement by id.
    pub fn find_stmt(&self, id: StmtId) -> Option<Stmt> {
        let mut found = None;
        self.visit_stmts(|s, _| {
            if s.id == id && found.is_none() {
                found = Some(s.clone());
            }
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident(n: &str) -> Expr {
        Expr::Ident(n.into())
    }

    #[test]
    fn idents_collects_nested() {
        let e = Expr::Binary {
            op: "+".into(),
            lhs: Box::new(Expr::Call {
                name: "f".into(),
                args: vec![ident("a"), ident("b")],
            }),
            rhs: Box::new(Expr::Index {
                base: Box::new(ident("arr")),
                index: Box::new(ident("i")),
            }),
        };
        let mut out = Vec::new();
        e.idents(&mut out);
        assert_eq!(out, vec!["a", "b", "arr", "i"]);
    }

    #[test]
    fn call_names_finds_nested_calls() {
        let e = Expr::Call {
            name: "outer".into(),
            args: vec![Expr::Call {
                name: "inner".into(),
                args: vec![],
            }],
        };
        let mut out = Vec::new();
        e.call_names(&mut out);
        assert_eq!(out, vec!["outer", "inner"]);
    }

    #[test]
    fn lvalue_root_peels_accessors() {
        let e = Expr::Member {
            base: Box::new(Expr::Index {
                base: Box::new(ident("a")),
                index: Box::new(ident("i")),
            }),
            field: "f".into(),
            arrow: false,
        };
        assert_eq!(e.lvalue_root(), Some("a"));
        assert_eq!(Expr::Int(3).lvalue_root(), None);
    }

    #[test]
    fn visit_stmts_reports_ancestry() {
        // for (init; cond; update) { body_stmt }
        let body_stmt = Stmt::new(StmtId(3), StmtKind::Expr(ident("x")));
        let for_stmt = Stmt::new(
            StmtId(0),
            StmtKind::For {
                init: Box::new(Stmt::new(StmtId(1), StmtKind::Empty)),
                cond: None,
                update: Box::new(Stmt::new(StmtId(2), StmtKind::Empty)),
                body: Block {
                    stmts: vec![body_stmt],
                },
            },
        );
        let prog = Program {
            functions: vec![Function {
                ret: "void".into(),
                name: "main".into(),
                params: vec![],
                body: Block {
                    stmts: vec![for_stmt],
                },
            }],
        };
        let mut seen = Vec::new();
        prog.visit_stmts(|s, anc| seen.push((s.id, anc.to_vec())));
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[0], (StmtId(0), vec![]));
        assert_eq!(seen[3], (StmtId(3), vec![StmtId(0)]));
        assert_eq!(prog.stmt_count(), 4);
        assert!(prog.find_stmt(StmtId(3)).is_some());
        assert!(prog.find_stmt(StmtId(99)).is_none());
    }
}
