//! # tunio-cminus — a C-subset language substrate
//!
//! TunIO's Application I/O Discovery component parses application source
//! code with Clang's Python bindings and operates on the resulting AST. No
//! C toolchain is available here, so this crate implements the substrate
//! from scratch for a C subset ("C-minus") that is rich enough to express
//! the paper's HDF5 applications: functions, declarations, assignments,
//! `if`/`for`/`while`, calls, array/member access and the usual operators.
//!
//! The pipeline mirrors the paper's preprocessing: [`lexer`] tokenizes,
//! [`parser`] builds an AST where every statement carries a stable
//! [`ast::StmtId`], and [`printer`] re-emits normalized source with one
//! statement per line and braces on their own lines (the role the paper's
//! custom clang-format step plays), so statement ids correspond 1:1 to
//! printed lines.
//!
//! [`samples`] contains the application sources used by the examples and
//! the Fig 5 marking demonstration.

#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod samples;
pub mod span;

pub use ast::{Block, Expr, Program, Stmt, StmtId, StmtKind};
pub use lexer::{lex, LexError, Token, TokenKind};
pub use parser::{parse, ParseError};
pub use printer::print_program;
pub use span::{Pos, Span};
