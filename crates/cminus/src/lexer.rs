//! Tokenizer for the C subset.

use crate::span::{Pos, Span};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal, kept as text.
    Float(String),
    /// String literal (unquoted contents).
    Str(String),
    /// Character literal (unquoted contents).
    Char(String),
    /// Punctuation / operator, e.g. `(`, `<=`, `->`.
    Punct(String),
}

/// A token with its source location.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-based source line where the token starts (kept alongside
    /// [`Token::span`] for convenience).
    pub line: u32,
    /// Full `(line, col)` range of the token in the original source.
    pub span: Span,
}

/// Lexing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line where lexing failed.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Multi-character operators, longest first.
const MULTI_PUNCT: [&str; 19] = [
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=",
];

/// Tokenize `src`. Line comments (`//`), block comments and preprocessor
/// lines (`#...`) are skipped.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes: Vec<char> = src.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    // Index of the first character of the current line, for column math.
    let mut line_start: usize = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            line_start = i;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Preprocessor directive: skip to end of line.
        if c == '#' {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] == '/' {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == '*' {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    if bytes[i] == '\n' {
                        line += 1;
                        line_start = i + 1;
                    }
                    i += 1;
                }
                if i + 1 >= bytes.len() {
                    return Err(LexError {
                        message: "unterminated block comment".into(),
                        line,
                    });
                }
                i += 2;
                continue;
            }
        }
        let start_line = line;
        let start_col = (i - line_start + 1) as u32;
        // Emit a token whose text ends just before index `end` (exclusive).
        let span_to = |end: usize| {
            Span::new(
                Pos::new(start_line, start_col),
                Pos::new(start_line, (end.max(line_start + 1) - line_start) as u32),
            )
        };
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            tokens.push(Token {
                kind: TokenKind::Ident(text),
                line,
                span: span_to(i),
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '.' || bytes[i] == '_')
            {
                if bytes[i] == '.' {
                    is_float = true;
                }
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            if is_float || text.contains('e') && !text.starts_with("0x") {
                tokens.push(Token {
                    kind: TokenKind::Float(text),
                    line,
                    span: span_to(i),
                });
            } else {
                // Strip C suffixes (UL, LL…) and parse hex.
                let trimmed = text.trim_end_matches(['u', 'U', 'l', 'L']);
                let value = if let Some(hex) = trimmed
                    .strip_prefix("0x")
                    .or_else(|| trimmed.strip_prefix("0X"))
                {
                    i64::from_str_radix(hex, 16)
                } else {
                    trimmed.parse::<i64>()
                };
                let value = value.map_err(|_| LexError {
                    message: format!("bad integer literal `{text}`"),
                    line,
                })?;
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    line,
                    span: span_to(i),
                });
            }
            continue;
        }
        // String literal.
        if c == '"' {
            i += 1;
            let mut text = String::new();
            while i < bytes.len() && bytes[i] != '"' {
                if bytes[i] == '\\' && i + 1 < bytes.len() {
                    text.push(bytes[i]);
                    text.push(bytes[i + 1]);
                    i += 2;
                    continue;
                }
                if bytes[i] == '\n' {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        line,
                    });
                }
                text.push(bytes[i]);
                i += 1;
            }
            if i >= bytes.len() {
                return Err(LexError {
                    message: "unterminated string literal".into(),
                    line,
                });
            }
            i += 1;
            tokens.push(Token {
                kind: TokenKind::Str(text),
                line,
                span: span_to(i),
            });
            continue;
        }
        // Char literal.
        if c == '\'' {
            i += 1;
            let mut text = String::new();
            while i < bytes.len() && bytes[i] != '\'' {
                if bytes[i] == '\\' && i + 1 < bytes.len() {
                    text.push(bytes[i]);
                    text.push(bytes[i + 1]);
                    i += 2;
                    continue;
                }
                text.push(bytes[i]);
                i += 1;
            }
            if i >= bytes.len() {
                return Err(LexError {
                    message: "unterminated char literal".into(),
                    line,
                });
            }
            i += 1;
            tokens.push(Token {
                kind: TokenKind::Char(text),
                line,
                span: span_to(i),
            });
            continue;
        }
        // Multi-char punctuation.
        let rest: String = bytes[i..bytes.len().min(i + 2)].iter().collect();
        if let Some(p) = MULTI_PUNCT.iter().find(|p| rest.starts_with(**p)) {
            i += p.len();
            tokens.push(Token {
                kind: TokenKind::Punct((*p).into()),
                line,
                span: span_to(i),
            });
            continue;
        }
        // Single-char punctuation.
        if "()[]{};,.+-*/%<>=!&|^~?:".contains(c) {
            i += 1;
            tokens.push(Token {
                kind: TokenKind::Punct(c.to_string()),
                line,
                span: span_to(i),
            });
            continue;
        }
        return Err(LexError {
            message: format!("unexpected character `{c}`"),
            line,
        });
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declaration() {
        let toks = kinds("hid_t file_id = H5Fcreate(\"out.h5\", 0);");
        assert_eq!(toks[0], TokenKind::Ident("hid_t".into()));
        assert_eq!(toks[1], TokenKind::Ident("file_id".into()));
        assert_eq!(toks[2], TokenKind::Punct("=".into()));
        assert_eq!(toks[3], TokenKind::Ident("H5Fcreate".into()));
        assert!(toks.contains(&TokenKind::Str("out.h5".into())));
    }

    #[test]
    fn skips_comments_and_preprocessor() {
        let toks = kinds("#include <hdf5.h>\n// line\n/* block\nstill */ x");
        assert_eq!(toks, vec![TokenKind::Ident("x".into())]);
    }

    #[test]
    fn tracks_lines() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn tracks_columns_and_spans() {
        let toks = lex("ab + cd\n  xyz").unwrap();
        assert_eq!(toks[0].span, Span::new(Pos::new(1, 1), Pos::new(1, 2)));
        assert_eq!(toks[1].span, Span::at(1, 4));
        assert_eq!(toks[2].span, Span::new(Pos::new(1, 6), Pos::new(1, 7)));
        assert_eq!(toks[3].span, Span::new(Pos::new(2, 3), Pos::new(2, 5)));
    }

    #[test]
    fn comments_do_not_disturb_columns() {
        let toks = lex("/* multi\nline */ a = 1;").unwrap();
        assert_eq!(toks[0].span.start, Pos::new(2, 9));
        assert_eq!(toks[1].span.start, Pos::new(2, 11));
    }

    #[test]
    fn multi_char_operators_win() {
        let toks = kinds("a <= b -> c && d");
        assert!(toks.contains(&TokenKind::Punct("<=".into())));
        assert!(toks.contains(&TokenKind::Punct("->".into())));
        assert!(toks.contains(&TokenKind::Punct("&&".into())));
    }

    #[test]
    fn numeric_literals() {
        assert_eq!(
            kinds("42 0x10 100UL 3.5"),
            vec![
                TokenKind::Int(42),
                TokenKind::Int(16),
                TokenKind::Int(100),
                TokenKind::Float("3.5".into()),
            ]
        );
    }

    #[test]
    fn string_escapes_preserved() {
        let toks = kinds(r#""a\"b\n""#);
        assert_eq!(toks, vec![TokenKind::Str(r#"a\"b\n"#.into())]);
    }

    #[test]
    fn errors_carry_line() {
        let err = lex("ok\n\"unterminated").unwrap_err();
        assert_eq!(err.line, 2);
        let err2 = lex("`").unwrap_err();
        assert!(err2.message.contains("unexpected"));
    }
}
