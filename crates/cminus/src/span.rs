//! Source positions and spans.
//!
//! Every token and statement carries a [`Span`] — a half-open
//! `(line, col)` range into the original source — so downstream analyses
//! (the dataflow slicer, `tunio-lint` diagnostics) can point at real
//! source locations instead of normalized-printer line numbers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A source position: 1-based line and column. `(0, 0)` marks a
/// synthesized position (statements built by transforms rather than the
/// parser).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Pos {
    /// 1-based source line (0 = synthesized).
    pub line: u32,
    /// 1-based source column (0 = synthesized).
    pub col: u32,
}

impl Pos {
    /// Build a position.
    pub fn new(line: u32, col: u32) -> Self {
        Pos { line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A source range `[start, end]` in `(line, col)` coordinates, inclusive
/// of the last character's starting position.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Span {
    /// Where the spanned region begins.
    pub start: Pos,
    /// Where the spanned region ends.
    pub end: Pos,
}

impl Span {
    /// Build a span from explicit coordinates.
    pub fn new(start: Pos, end: Pos) -> Self {
        Span { start, end }
    }

    /// A single-position span.
    pub fn at(line: u32, col: u32) -> Self {
        let p = Pos::new(line, col);
        Span { start: p, end: p }
    }

    /// Whether this span came from real source (parser) rather than a
    /// transform that synthesized the node.
    pub fn is_real(&self) -> bool {
        self.start.line != 0
    }

    /// The smallest span covering both `self` and `other`. Synthesized
    /// spans are ignored: merging with one returns the real span.
    pub fn merge(&self, other: Span) -> Span {
        if !self.is_real() {
            return other;
        }
        if !other.is_real() {
            return *self;
        }
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.start == self.end {
            write!(f, "{}", self.start)
        } else {
            write!(f, "{}-{}", self.start, self.end)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both_ends() {
        let a = Span::new(Pos::new(2, 5), Pos::new(2, 9));
        let b = Span::new(Pos::new(4, 1), Pos::new(4, 3));
        let m = a.merge(b);
        assert_eq!(m.start, Pos::new(2, 5));
        assert_eq!(m.end, Pos::new(4, 3));
        // Order-independent.
        assert_eq!(b.merge(a), m);
    }

    #[test]
    fn merge_ignores_synthesized() {
        let real = Span::at(3, 7);
        let synth = Span::default();
        assert!(!synth.is_real());
        assert_eq!(real.merge(synth), real);
        assert_eq!(synth.merge(real), real);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Span::at(3, 7).to_string(), "3:7");
        assert_eq!(
            Span::new(Pos::new(1, 2), Pos::new(1, 9)).to_string(),
            "1:2-1:9"
        );
    }
}
