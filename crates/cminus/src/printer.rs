//! Normalized source printer.
//!
//! Emits one statement per line with braces on their own lines — the
//! normal form the paper produces with a custom clang-format configuration
//! (200-column limit, split multi-statement lines) so that per-line marking
//! equals per-statement marking. The printer can also report which line
//! each [`StmtId`] landed on.

use crate::ast::{Block, Expr, Program, Stmt, StmtId, StmtKind};
use std::collections::BTreeMap;

/// Result of printing: text plus a statement-id → 1-based-line map.
#[derive(Debug, Clone)]
pub struct PrintedProgram {
    /// The normalized source text.
    pub text: String,
    /// Line on which each statement starts.
    pub stmt_lines: BTreeMap<StmtId, u32>,
}

/// Print a whole program in normal form.
pub fn print_program(program: &Program) -> PrintedProgram {
    let mut p = Printer::default();
    for f in &program.functions {
        let params = f
            .params
            .iter()
            .map(|(t, n)| format!("{t} {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        p.line(&format!("{} {}({})", f.ret, f.name, params));
        p.line("{");
        p.indent += 1;
        p.block(&f.body);
        p.indent -= 1;
        p.line("}");
    }
    PrintedProgram {
        text: p.out,
        stmt_lines: p.stmt_lines,
    }
}

#[derive(Default)]
struct Printer {
    out: String,
    line_no: u32,
    indent: usize,
    stmt_lines: BTreeMap<StmtId, u32>,
}

impl Printer {
    fn line(&mut self, text: &str) {
        self.line_no += 1;
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn block(&mut self, block: &Block) {
        for stmt in &block.stmts {
            self.stmt(stmt);
        }
    }

    fn record(&mut self, id: StmtId) {
        // `line_no + 1` because the statement is printed by the next call.
        self.stmt_lines.insert(id, self.line_no + 1);
    }

    fn braced(&mut self, block: &Block) {
        self.line("{");
        self.indent += 1;
        self.block(block);
        self.indent -= 1;
        self.line("}");
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::Decl {
                ty,
                name,
                array,
                init,
            } => {
                self.record(stmt.id);
                let arr = array.clone().unwrap_or_default();
                match init {
                    Some(e) => self.line(&format!("{ty} {name}{arr} = {};", expr(e))),
                    None => self.line(&format!("{ty} {name}{arr};")),
                }
            }
            StmtKind::Assign { lhs, op, rhs } => {
                self.record(stmt.id);
                self.line(&format!("{} {op} {};", expr(lhs), expr(rhs)));
            }
            StmtKind::Expr(e) => {
                self.record(stmt.id);
                self.line(&format!("{};", expr(e)));
            }
            StmtKind::If {
                cond,
                then_block,
                else_block,
            } => {
                self.record(stmt.id);
                self.line(&format!("if ({})", expr(cond)));
                self.braced(then_block);
                if let Some(e) = else_block {
                    self.line("else");
                    self.braced(e);
                }
            }
            StmtKind::For {
                init,
                cond,
                update,
                body,
            } => {
                self.record(stmt.id);
                let init_text = inline_stmt(init);
                let cond_text = cond.as_ref().map(expr).unwrap_or_default();
                let update_text = inline_stmt(update);
                self.line(&format!("for ({init_text}; {cond_text}; {update_text})"));
                // Header sub-statements share the header's printed line.
                let header_line = self.line_no;
                self.stmt_lines.insert(init.id, header_line);
                self.stmt_lines.insert(update.id, header_line);
                self.braced(body);
            }
            StmtKind::While { cond, body } => {
                self.record(stmt.id);
                self.line(&format!("while ({})", expr(cond)));
                self.braced(body);
            }
            StmtKind::DoWhile { body, cond } => {
                self.record(stmt.id);
                self.line("do");
                self.braced(body);
                self.line(&format!("while ({});", expr(cond)));
            }
            StmtKind::Return(value) => {
                self.record(stmt.id);
                match value {
                    Some(v) => self.line(&format!("return {};", expr(v))),
                    None => self.line("return;"),
                }
            }
            StmtKind::Break => {
                self.record(stmt.id);
                self.line("break;");
            }
            StmtKind::Continue => {
                self.record(stmt.id);
                self.line("continue;");
            }
            StmtKind::Empty => {
                self.record(stmt.id);
                self.line(";");
            }
        }
    }
}

/// Render a statement without trailing `;` for `for` headers.
fn inline_stmt(stmt: &Stmt) -> String {
    match &stmt.kind {
        StmtKind::Decl {
            ty,
            name,
            array,
            init,
        } => {
            let arr = array.clone().unwrap_or_default();
            match init {
                Some(e) => format!("{ty} {name}{arr} = {}", expr(e)),
                None => format!("{ty} {name}{arr}"),
            }
        }
        StmtKind::Assign { lhs, op, rhs } => format!("{} {op} {}", expr(lhs), expr(rhs)),
        StmtKind::Expr(e) => expr(e),
        StmtKind::Empty => String::new(),
        other => format!("/* unsupported in header: {other:?} */"),
    }
}

/// Render an expression.
pub fn expr(e: &Expr) -> String {
    match e {
        Expr::Ident(n) => n.clone(),
        Expr::Int(v) => v.to_string(),
        Expr::Float(t) => t.clone(),
        Expr::Str(s) => format!("\"{s}\""),
        Expr::Char(c) => format!("'{c}'"),
        Expr::Call { name, args } => {
            let a = args.iter().map(expr).collect::<Vec<_>>().join(", ");
            format!("{name}({a})")
        }
        Expr::Binary { op, lhs, rhs } => format!("{} {op} {}", wrap(lhs), wrap(rhs)),
        Expr::Unary { op, operand } => format!("{op}{}", wrap(operand)),
        Expr::Postfix { op, operand } => format!("{}{op}", wrap(operand)),
        Expr::Index { base, index } => format!("{}[{}]", wrap(base), expr(index)),
        Expr::Member { base, field, arrow } => {
            format!("{}{}{field}", wrap(base), if *arrow { "->" } else { "." })
        }
    }
}

/// Parenthesize compound sub-expressions for unambiguous output.
fn wrap(e: &Expr) -> String {
    match e {
        Expr::Binary { .. } => format!("({})", expr(e)),
        _ => expr(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn round_trips_through_parser() {
        let src = r#"
            void checkpoint(double * data, int n) {
                hid_t file_id = H5Fcreate("out.h5", 0);
                for (int step = 0; step < n; step++) {
                    compute(data, n);
                    H5Dwrite(file_id, data);
                }
                H5Fclose(file_id);
            }
        "#;
        let prog = parse(src).unwrap();
        let printed = print_program(&prog);
        let reparsed = parse(&printed.text).expect("printed source must reparse");
        // Same statement structure.
        assert_eq!(prog.stmt_count(), reparsed.stmt_count());
        // Printing the reparsed program is a fixpoint.
        let printed2 = print_program(&reparsed);
        assert_eq!(printed.text, printed2.text);
    }

    #[test]
    fn one_statement_per_line() {
        let src = "void f() { a = 1; b = 2; c(a, b); }";
        let printed = print_program(&parse(src).unwrap());
        let lines: Vec<&str> = printed.text.lines().collect();
        // fn header, {, 3 statements, }
        assert_eq!(lines.len(), 6);
        assert!(lines[2].trim_start().starts_with("a = 1;"));
    }

    #[test]
    fn stmt_lines_map_to_real_lines() {
        let src = "void f() { x = 1; if (x) { y = 2; } }";
        let prog = parse(src).unwrap();
        let printed = print_program(&prog);
        let lines: Vec<&str> = printed.text.lines().collect();
        for (id, line) in &printed.stmt_lines {
            let text = lines[(*line - 1) as usize].trim();
            let stmt = prog.find_stmt(*id).unwrap();
            match stmt.kind {
                StmtKind::Assign { .. } => assert!(text.contains('=') || text.contains("for")),
                StmtKind::If { .. } => assert!(text.starts_with("if")),
                _ => {}
            }
        }
    }

    #[test]
    fn braces_on_their_own_lines() {
        let src = "void f() { while (x) { g(); } }";
        let printed = print_program(&parse(src).unwrap());
        let mut lines = printed.text.lines().map(str::trim);
        assert!(lines.any(|l| l == "{"));
    }

    #[test]
    fn expression_rendering() {
        assert_eq!(
            expr(&Expr::Binary {
                op: "+".into(),
                lhs: Box::new(Expr::Int(1)),
                rhs: Box::new(Expr::Binary {
                    op: "*".into(),
                    lhs: Box::new(Expr::Ident("a".into())),
                    rhs: Box::new(Expr::Int(2)),
                }),
            }),
            "1 + (a * 2)"
        );
    }
}
