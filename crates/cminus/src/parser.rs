//! Recursive-descent parser for the C subset.

use crate::ast::{Block, Expr, Function, Program, Stmt, StmtId, StmtKind};
use crate::lexer::{lex, LexError, Token, TokenKind};
use crate::span::Span;
use std::fmt;

/// Parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line of the offending token (0 = end of input).
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
        }
    }
}

/// Parse a translation unit.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        next_id: 0,
    };
    parser.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_id: u32,
}

/// Binary operator precedence levels, loosest first.
const BIN_LEVELS: [&[&str]; 10] = [
    &["||"],
    &["&&"],
    &["|"],
    &["^"],
    &["&"],
    &["==", "!="],
    &["<", "<=", ">", ">="],
    &["<<", ">>"],
    &["+", "-"],
    &["*", "/", "%"],
];

const ASSIGN_OPS: [&str; 5] = ["=", "+=", "-=", "*=", "/="];

impl Parser {
    fn fresh_id(&mut self) -> StmtId {
        let id = StmtId(self.next_id);
        self.next_id += 1;
        id
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos)
            .map(|t| t.line)
            .unwrap_or(self.tokens.last().map(|t| t.line).unwrap_or(0))
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        self.pos += 1;
        t
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            message: msg.into(),
            line: self.line(),
        }
    }

    /// Span covering every token from `start` (inclusive) up to the
    /// current position (exclusive) — i.e. everything consumed since the
    /// caller recorded `start = self.pos`.
    fn span_since(&self, start: usize) -> Span {
        let first = match self.tokens.get(start) {
            Some(t) => t.span,
            None => return Span::default(),
        };
        let last = self
            .tokens
            .get(self.pos.saturating_sub(1))
            .map(|t| t.span)
            .unwrap_or(first);
        first.merge(last)
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Punct(x)) if x == p)
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{p}`, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(TokenKind::Ident(n)) => Ok(n),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn at_ident(&self, name: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Ident(n)) if n == name)
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut functions = Vec::new();
        while self.peek().is_some() {
            functions.push(self.function()?);
        }
        Ok(Program { functions })
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        let ret = self.type_text()?;
        let name = self.ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.at_punct(")") {
            loop {
                if self.at_ident("void")
                    && matches!(self.tokens.get(self.pos + 1).map(|t| &t.kind), Some(TokenKind::Punct(p)) if p == ")")
                {
                    self.bump();
                    break;
                }
                let ty = self.type_text()?;
                let pname = self.ident()?;
                params.push((ty, pname));
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        self.expect_punct(")")?;
        let body = self.block()?;
        Ok(Function {
            ret,
            name,
            params,
            body,
        })
    }

    /// Parse a type: one or more identifiers followed by `*`s.
    fn type_text(&mut self) -> Result<String, ParseError> {
        let mut words = vec![self.ident()?];
        // Multi-word types: `unsigned long`, `const char` …
        while matches!(self.peek(), Some(TokenKind::Ident(w))
            if is_type_continuation(words.last().unwrap(), w)
                && !matches!(self.tokens.get(self.pos + 1).map(|t| &t.kind),
                    Some(TokenKind::Punct(p)) if p == "(" || p == "=" ))
        {
            // Only continue if the *next-next* token suggests this ident is
            // still part of the type (another ident, `*`).
            let after = self.tokens.get(self.pos + 1).map(|t| &t.kind);
            let continues = matches!(after, Some(TokenKind::Ident(_)))
                || matches!(after, Some(TokenKind::Punct(p)) if p == "*");
            if !continues {
                break;
            }
            words.push(self.ident()?);
        }
        let mut ty = words.join(" ");
        while self.eat_punct("*") {
            ty.push_str(" *");
        }
        Ok(ty)
    }

    fn block(&mut self) -> Result<Block, ParseError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.at_punct("}") {
            if self.peek().is_none() {
                return Err(self.error("unterminated block"));
            }
            stmts.push(self.statement()?);
        }
        self.expect_punct("}")?;
        Ok(Block { stmts })
    }

    /// A block, or a single statement promoted to a block (unbraced `if`
    /// bodies).
    fn block_or_stmt(&mut self) -> Result<Block, ParseError> {
        if self.at_punct("{") {
            self.block()
        } else {
            Ok(Block {
                stmts: vec![self.statement()?],
            })
        }
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        let start = self.pos;
        let mut stmt = self.statement_unspanned()?;
        stmt.span = self.span_since(start);
        Ok(stmt)
    }

    fn statement_unspanned(&mut self) -> Result<Stmt, ParseError> {
        let id = self.fresh_id();
        // Control flow keywords.
        if self.at_ident("if") {
            self.bump();
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then_block = self.block_or_stmt()?;
            let else_block = if self.at_ident("else") {
                self.bump();
                Some(self.block_or_stmt()?)
            } else {
                None
            };
            return Ok(Stmt::new(
                id,
                StmtKind::If {
                    cond,
                    then_block,
                    else_block,
                },
            ));
        }
        if self.at_ident("for") {
            self.bump();
            self.expect_punct("(")?;
            let init = Box::new(self.simple_statement()?);
            let cond = if self.at_punct(";") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            let update = if self.at_punct(")") {
                Box::new(Stmt::new(self.fresh_id(), StmtKind::Empty))
            } else {
                let uid = self.fresh_id();
                Box::new(self.statement_body(uid)?)
            };
            self.expect_punct(")")?;
            let body = self.block_or_stmt()?;
            return Ok(Stmt::new(
                id,
                StmtKind::For {
                    init,
                    cond,
                    update,
                    body,
                },
            ));
        }
        if self.at_ident("while") {
            self.bump();
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.block_or_stmt()?;
            return Ok(Stmt::new(id, StmtKind::While { cond, body }));
        }
        if self.at_ident("do") {
            self.bump();
            let body = self.block()?;
            if !self.at_ident("while") {
                return Err(self.error("expected `while` after do-block"));
            }
            self.bump();
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::new(id, StmtKind::DoWhile { body, cond }));
        }
        if self.at_ident("break") {
            self.bump();
            self.expect_punct(";")?;
            return Ok(Stmt::new(id, StmtKind::Break));
        }
        if self.at_ident("continue") {
            self.bump();
            self.expect_punct(";")?;
            return Ok(Stmt::new(id, StmtKind::Continue));
        }
        if self.at_ident("return") {
            self.bump();
            let value = if self.at_punct(";") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            return Ok(Stmt::new(id, StmtKind::Return(value)));
        }
        // Simple statements end in `;`.
        let stmt = self.statement_body(id)?;
        self.expect_punct(";")?;
        Ok(stmt)
    }

    /// `init;`-style statement for `for` headers — consumes trailing `;`.
    fn simple_statement(&mut self) -> Result<Stmt, ParseError> {
        let start = self.pos;
        let mut stmt = self.simple_statement_unspanned()?;
        stmt.span = self.span_since(start);
        Ok(stmt)
    }

    fn simple_statement_unspanned(&mut self) -> Result<Stmt, ParseError> {
        let id = self.fresh_id();
        if self.at_punct(";") {
            self.bump();
            return Ok(Stmt::new(id, StmtKind::Empty));
        }
        let stmt = self.statement_body(id)?;
        self.expect_punct(";")?;
        Ok(stmt)
    }

    /// Declaration / assignment / expression without the trailing `;`.
    fn statement_body(&mut self, id: StmtId) -> Result<Stmt, ParseError> {
        let start = self.pos;
        let mut stmt = self.statement_body_unspanned(id)?;
        stmt.span = self.span_since(start);
        Ok(stmt)
    }

    fn statement_body_unspanned(&mut self, id: StmtId) -> Result<Stmt, ParseError> {
        if self.at_punct(";") || self.at_punct(")") {
            return Ok(Stmt::new(id, StmtKind::Empty));
        }
        // Try a declaration: type ident [array]? [= init]?
        if let Some(decl) = self.try_declaration(id)? {
            return Ok(decl);
        }
        // Expression or assignment.
        let lhs = self.expr()?;
        if let Some(TokenKind::Punct(p)) = self.peek() {
            if ASSIGN_OPS.contains(&p.as_str()) {
                let op = p.clone();
                self.bump();
                let rhs = self.expr()?;
                return Ok(Stmt::new(id, StmtKind::Assign { lhs, op, rhs }));
            }
        }
        Ok(Stmt::new(id, StmtKind::Expr(lhs)))
    }

    /// Attempt to parse a declaration, restoring position on failure.
    fn try_declaration(&mut self, id: StmtId) -> Result<Option<Stmt>, ParseError> {
        let start = self.pos;
        if !matches!(self.peek(), Some(TokenKind::Ident(_))) {
            return Ok(None);
        }
        let ty = match self.type_text() {
            Ok(t) => t,
            Err(_) => {
                self.pos = start;
                return Ok(None);
            }
        };
        // A declaration needs a following identifier (the variable name).
        let name = match self.peek() {
            Some(TokenKind::Ident(n)) => n.clone(),
            _ => {
                self.pos = start;
                return Ok(None);
            }
        };
        // Reject `foo (` (function call) and single-ident expressions.
        self.bump();
        let array = if self.at_punct("[") {
            self.bump();
            let mut text = String::from("[");
            loop {
                match self.bump() {
                    Some(TokenKind::Punct(p)) if p == "]" => {
                        text.push(']');
                        break;
                    }
                    Some(TokenKind::Int(v)) => text.push_str(&v.to_string()),
                    Some(TokenKind::Ident(n)) => text.push_str(&n),
                    Some(TokenKind::Punct(p)) => text.push_str(&p),
                    _ => {
                        self.pos = start;
                        return Ok(None);
                    }
                }
            }
            Some(text)
        } else {
            None
        };
        let init = if self.eat_punct("=") {
            Some(self.expr()?)
        } else {
            None
        };
        // Must now be at `;` (or `,` which we do not support — restore).
        if !self.at_punct(";") && !self.at_punct(")") {
            self.pos = start;
            return Ok(None);
        }
        Ok(Some(Stmt::new(
            id,
            StmtKind::Decl {
                ty,
                name,
                array,
                init,
            },
        )))
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.binary(0)
    }

    fn binary(&mut self, level: usize) -> Result<Expr, ParseError> {
        if level >= BIN_LEVELS.len() {
            return self.unary();
        }
        let mut lhs = self.binary(level + 1)?;
        loop {
            let matched = match self.peek() {
                Some(TokenKind::Punct(p)) if BIN_LEVELS[level].contains(&p.as_str()) => p.clone(),
                _ => break,
            };
            self.bump();
            let rhs = self.binary(level + 1)?;
            lhs = Expr::Binary {
                op: matched,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if let Some(TokenKind::Punct(p)) = self.peek() {
            if ["-", "!", "*", "&", "~", "++", "--"].contains(&p.as_str()) {
                let op = p.clone();
                self.bump();
                let operand = self.unary()?;
                return Ok(Expr::Unary {
                    op,
                    operand: Box::new(operand),
                });
            }
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            if self.at_punct("(") {
                // Only identifiers are callable in the subset.
                let name = match &e {
                    Expr::Ident(n) => n.clone(),
                    _ => return Err(self.error("only simple calls are supported")),
                };
                self.bump();
                let mut args = Vec::new();
                if !self.at_punct(")") {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                }
                self.expect_punct(")")?;
                e = Expr::Call { name, args };
            } else if self.at_punct("[") {
                self.bump();
                let index = self.expr()?;
                self.expect_punct("]")?;
                e = Expr::Index {
                    base: Box::new(e),
                    index: Box::new(index),
                };
            } else if self.at_punct(".") || self.at_punct("->") {
                let arrow = self.at_punct("->");
                self.bump();
                let field = self.ident()?;
                e = Expr::Member {
                    base: Box::new(e),
                    field,
                    arrow,
                };
            } else if self.at_punct("++") || self.at_punct("--") {
                let op = if self.at_punct("++") { "++" } else { "--" };
                self.bump();
                e = Expr::Postfix {
                    op: op.into(),
                    operand: Box::new(e),
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        match self.bump() {
            Some(TokenKind::Ident(n)) => Ok(Expr::Ident(n)),
            Some(TokenKind::Int(v)) => Ok(Expr::Int(v)),
            Some(TokenKind::Float(t)) => Ok(Expr::Float(t)),
            Some(TokenKind::Str(s)) => Ok(Expr::Str(s)),
            Some(TokenKind::Char(c)) => Ok(Expr::Char(c)),
            Some(TokenKind::Punct(p)) if p == "(" => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => Err(ParseError {
                message: format!("expected expression, found {other:?}"),
                line,
            }),
        }
    }
}

/// Whether `next` can continue a multi-word type that currently ends with
/// `prev` (e.g. `unsigned` + `long`).
fn is_type_continuation(prev: &str, next: &str) -> bool {
    const QUALIFIERS: [&str; 6] = ["const", "unsigned", "signed", "struct", "static", "long"];
    const BASES: [&str; 7] = ["int", "long", "char", "short", "float", "double", "void"];
    QUALIFIERS.contains(&prev) && (BASES.contains(&next) || prev == "struct" || prev == "const")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::StmtKind;

    #[test]
    fn parses_simple_function() {
        let p = parse("int main() { return 0; }").unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].name, "main");
        assert_eq!(p.functions[0].body.stmts.len(), 1);
    }

    #[test]
    fn parses_declaration_with_call_init() {
        let p = parse(r#"void f() { hid_t file_id = H5Fcreate("out.h5", 0); }"#).unwrap();
        match &p.functions[0].body.stmts[0].kind {
            StmtKind::Decl { ty, name, init, .. } => {
                assert_eq!(ty, "hid_t");
                assert_eq!(name, "file_id");
                assert!(matches!(init, Some(Expr::Call { name, .. }) if name == "H5Fcreate"));
            }
            other => panic!("expected decl, got {other:?}"),
        }
    }

    #[test]
    fn parses_for_loop_with_io() {
        let src = r#"
            void main() {
                for (int step = 0; step < 100; step++) {
                    H5Dwrite(dset, mem, data);
                }
            }
        "#;
        let p = parse(src).unwrap();
        match &p.functions[0].body.stmts[0].kind {
            StmtKind::For {
                init, cond, body, ..
            } => {
                assert!(matches!(init.kind, StmtKind::Decl { .. }));
                assert!(cond.is_some());
                assert_eq!(body.stmts.len(), 1);
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn parses_if_else_and_while() {
        let src = r#"
            void f() {
                if (rank == 0) { setup(); } else { wait(); }
                while (running) { step(); }
            }
        "#;
        let p = parse(src).unwrap();
        assert!(matches!(
            p.functions[0].body.stmts[0].kind,
            StmtKind::If { .. }
        ));
        assert!(matches!(
            p.functions[0].body.stmts[1].kind,
            StmtKind::While { .. }
        ));
    }

    #[test]
    fn parses_assignments_and_compound_ops() {
        let p = parse("void f() { x = y + 1; total += n; a[i] = b->c; }").unwrap();
        let stmts = &p.functions[0].body.stmts;
        assert!(matches!(&stmts[0].kind, StmtKind::Assign { op, .. } if op == "="));
        assert!(matches!(&stmts[1].kind, StmtKind::Assign { op, .. } if op == "+="));
        assert!(
            matches!(&stmts[2].kind, StmtKind::Assign { lhs, .. } if lhs.lvalue_root() == Some("a"))
        );
    }

    #[test]
    fn operator_precedence() {
        let p = parse("void f() { x = a + b * c; }").unwrap();
        match &p.functions[0].body.stmts[0].kind {
            StmtKind::Assign { rhs, .. } => match rhs {
                Expr::Binary { op, rhs, .. } => {
                    assert_eq!(op, "+");
                    assert!(matches!(&**rhs, Expr::Binary { op, .. } if op == "*"));
                }
                other => panic!("bad rhs {other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stmt_ids_are_unique() {
        let src = r#"
            void f() {
                int a = 1;
                for (int i = 0; i < 3; i++) { a += i; }
                if (a > 1) { g(a); }
            }
        "#;
        let p = parse(src).unwrap();
        let mut ids = Vec::new();
        p.visit_stmts(|s, _| ids.push(s.id));
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "duplicate statement ids");
    }

    #[test]
    fn pointer_types_and_params() {
        let p = parse("void f(double * data, int n) { double * p = data; }").unwrap();
        assert_eq!(p.functions[0].params.len(), 2);
        assert_eq!(p.functions[0].params[0].0, "double *");
        assert!(
            matches!(&p.functions[0].body.stmts[0].kind, StmtKind::Decl { ty, .. } if ty == "double *")
        );
    }

    #[test]
    fn array_declarations() {
        let p = parse("void f() { int dims[3]; dims[0] = 5; }").unwrap();
        assert!(matches!(
            &p.functions[0].body.stmts[0].kind,
            StmtKind::Decl { array: Some(a), .. } if a == "[3]"
        ));
    }

    #[test]
    fn statements_carry_source_spans() {
        let src = "void f() {\n    int x = g(1);\n    if (x > 0) {\n        h(x);\n    }\n}\n";
        let p = parse(src).unwrap();
        let stmts = &p.functions[0].body.stmts;
        // `int x = g(1);` covers line 2 columns 5..=17 (the `;`).
        assert_eq!(stmts[0].span.start, crate::span::Pos::new(2, 5));
        assert_eq!(stmts[0].span.end, crate::span::Pos::new(2, 17));
        // The `if` spans from its keyword to the closing brace.
        assert_eq!(stmts[1].span.start, crate::span::Pos::new(3, 5));
        assert_eq!(stmts[1].span.end.line, 5);
        // Nested statements carry their own tighter spans.
        match &stmts[1].kind {
            StmtKind::If { then_block, .. } => {
                let inner = &then_block.stmts[0];
                assert_eq!(inner.span.start, crate::span::Pos::new(4, 9));
                assert_eq!(inner.span.end.line, 4);
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn for_header_children_carry_spans() {
        let p = parse("void f() { for (int i = 0; i < 3; i++) { g(i); } }").unwrap();
        match &p.functions[0].body.stmts[0].kind {
            StmtKind::For { init, update, .. } => {
                assert!(init.span.is_real(), "for-init has a span");
                assert!(update.span.is_real(), "for-update has a span");
                assert!(init.span.start.col < update.span.start.col);
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn errors_are_reported_with_line() {
        let err = parse("void f() {\n  int x = ;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn postfix_and_unary_ops() {
        let p = parse("void f() { i++; --j; x = !y; }").unwrap();
        let stmts = &p.functions[0].body.stmts;
        assert!(matches!(&stmts[0].kind, StmtKind::Expr(Expr::Postfix { op, .. }) if op == "++"));
        assert!(matches!(&stmts[1].kind, StmtKind::Expr(Expr::Unary { op, .. }) if op == "--"));
    }
}

#[cfg(test)]
mod do_while_tests {
    use super::*;
    use crate::ast::StmtKind;
    use crate::printer::print_program;

    #[test]
    fn parses_and_prints_do_while() {
        let src = "void f() { int i = 0; do { H5Dwrite(d, b); i++; } while (i < 5); }";
        let prog = parse(src).unwrap();
        assert!(matches!(
            prog.functions[0].body.stmts[1].kind,
            StmtKind::DoWhile { .. }
        ));
        let printed = print_program(&prog);
        assert!(printed.text.contains("do"));
        assert!(printed.text.contains("while (i < 5);"));
        // Round-trips.
        let reparsed = parse(&printed.text).unwrap();
        assert_eq!(prog.stmt_count(), reparsed.stmt_count());
    }

    #[test]
    fn do_without_while_is_an_error() {
        assert!(parse("void f() { do { g(); } g(); }").is_err());
    }
}
