//! Sample application sources in the C subset.
//!
//! `VPIC_IO` mirrors the paper's Fig 5 marking example: declarations and
//! compute that are *not* needed for I/O interleaved with HDF5 calls whose
//! dependency chains (dataset ids, data pointers) must be kept.

/// VPIC-style particle dump. Contains compute statements, a diagnostics
/// block and logging writes that I/O discovery must strip, plus the HDF5
/// call chain it must keep.
pub const VPIC_IO: &str = r#"
void vpic_dump(int num_steps, int particles) {
    hid_t file_id = H5Fcreate("particles.h5", 0);
    hid_t space_id = H5Screate_simple(1, particles);
    hid_t dataset_id = H5Dcreate(file_id, "x", space_id);
    double * data_ptr = allocate_particles(particles);
    double energy = 0.0;
    int diag_interval = 10;
    double field_sum = 0.0;
    for (int step = 0; step < num_steps; step++) {
        advance_particles(data_ptr, particles);
        energy = compute_energy(data_ptr, particles);
        field_sum += energy * 0.5;
        if (step % diag_interval == 0) {
            printf("step %d energy %f", step, energy);
        }
        data_ptr = sort_particles(data_ptr, particles);
        H5Dwrite(dataset_id, data_ptr);
    }
    H5Dclose(dataset_id);
    H5Sclose(space_id);
    H5Fclose(file_id);
}
"#;

/// HACC-style checkpoint writer: nine field datasets written per step.
pub const HACC_IO: &str = r#"
void hacc_checkpoint(int steps, int np) {
    hid_t file_id = H5Fcreate("hacc.h5", 0);
    hid_t xx_id = H5Dcreate(file_id, "xx", 0);
    hid_t vv_id = H5Dcreate(file_id, "vv", 0);
    float * xx = alloc_field(np);
    float * vv = alloc_field(np);
    double sigma = 0.8;
    int accepted = 0;
    for (int s = 0; s < steps; s++) {
        kick_drift(xx, vv, np, sigma);
        accepted += validate(xx, np);
        xx = rebalance(xx, np);
        vv = rebalance(vv, np);
        H5Dwrite(xx_id, xx);
        H5Dwrite(vv_id, vv);
        fprintf(stderr, "step %d accepted %d", s, accepted);
    }
    H5Dclose(xx_id);
    H5Dclose(vv_id);
    H5Fclose(file_id);
}
"#;

/// FLASH-style checkpoint + plotfile writer with conditional plot output.
pub const FLASH_IO: &str = r#"
void flash_io(int nsteps, int blocks) {
    hid_t ckpt_file = H5Fcreate("flash_ckpt.h5", 0);
    hid_t plot_file = H5Fcreate("flash_plot.h5", 0);
    hid_t ckpt_dset = H5Dcreate(ckpt_file, "unk", 0);
    hid_t plot_dset = H5Dcreate(plot_file, "dens", 0);
    double * unk = alloc_blocks(blocks);
    double * dens = alloc_blocks(blocks);
    int plot_every = 4;
    double residual = 1.0;
    for (int n = 0; n < nsteps; n++) {
        residual = hydro_sweep(unk, blocks);
        dens = extract_density(unk, blocks);
        H5Dwrite(ckpt_dset, unk);
        if (n % plot_every == 0) {
            H5Dwrite(plot_dset, dens);
        }
        printf("step %d residual %f", n, residual);
    }
    H5Dclose(ckpt_dset);
    H5Dclose(plot_dset);
    H5Fclose(ckpt_file);
    H5Fclose(plot_file);
}
"#;

/// BD-CATS-style clustering analysis: reads particle slabs until a
/// convergence flag breaks the loop, then writes cluster labels. Exercises
/// `break`/`continue` handling in the marking loop.
pub const BDCATS_IO: &str = r#"
void bdcats_cluster(int max_rounds, int np) {
    hid_t in_file = H5Fopen("particles.h5", 0);
    hid_t in_dset = H5Dopen(in_file, "xyz");
    hid_t out_file = H5Fcreate("clusters.h5", 0);
    hid_t out_dset = H5Dcreate(out_file, "labels", 0);
    double * slab = alloc_slab(np);
    int * labels = alloc_labels(np);
    double quality = 0.0;
    int audits = 0;
    for (int round = 0; round < max_rounds; round++) {
        H5Dread(in_dset, slab);
        labels = dbscan(slab, labels, np);
        quality = evaluate_clusters(labels, np);
        if (quality > 95) {
            break;
        }
        if (round % 2 == 0) {
            audits += audit(labels, np);
            continue;
        }
        printf("round %d quality %f", round, quality);
    }
    H5Dwrite(out_dset, labels);
    H5Dclose(in_dset);
    H5Dclose(out_dset);
    H5Fclose(in_file);
    H5Fclose(out_file);
}
"#;

/// A program with no I/O at all (discovery should produce an empty kernel).
pub const PURE_COMPUTE: &str = r#"
void stencil(int n) {
    double * grid = alloc_grid(n);
    for (int i = 0; i < n; i++) {
        grid[i] = relax(grid, i);
    }
    free_grid(grid);
}
"#;

/// Nyx-style plotfile appender: a POSIX stream written sequentially, one
/// symbolic-size record per step. The canonical *sequential* pattern for
/// the static workload model (no seeks, cursor just advances).
pub const NYX_LOG_IO: &str = r#"
void nyx_log(int steps, int nvals) {
    hid_t fp = fopen("nyx_plot.bin", 0);
    double * buf = alloc_plotbuf(nvals);
    for (int s = 0; s < steps; s++) {
        advance_hydro(buf, nvals);
        buf = gather_level(buf, nvals);
        fwrite(buf, 8, nvals, fp);
    }
    fclose(fp);
}
"#;

/// IOR-style random-read probe: every iteration seeks to an unpredictable
/// offset before a fixed 256 KiB read. The canonical *random* pattern.
pub const IOR_RANDOM_IO: &str = r#"
void ior_probe(int nprobes, int region) {
    hid_t fd = open("ior.dat", 0);
    double * buf = alloc_xfer(32768);
    int sum = 0;
    for (int p = 0; p < nprobes; p++) {
        lseek(fd, rand_offset(region), 0);
        read(fd, buf, 262144);
        sum += reduce_block(buf, 32768);
    }
    printf("checksum %d", sum);
    close(fd);
}
"#;

/// GYRO-style restart writer: 1 MiB frames placed at fixed 4 MiB slots,
/// leaving gaps between requests. The canonical *strided* pattern.
pub const GYRO_STRIDED_IO: &str = r#"
void gyro_restart(int nframes) {
    hid_t fp = fopen("gyro_restart.bin", 0);
    double * frame = alloc_frame(131072);
    int gap = 4194304;
    for (int f = 0; f < nframes; f++) {
        frame = collect_fields(frame, 131072);
        fseek(fp, f * gap, 0);
        fwrite(frame, 8, 131072, fp);
    }
    fclose(fp);
}
"#;

/// All samples as (name, source) pairs.
pub fn all_samples() -> Vec<(&'static str, &'static str)> {
    vec![
        ("vpic_io", VPIC_IO),
        ("hacc_io", HACC_IO),
        ("flash_io", FLASH_IO),
        ("bdcats_io", BDCATS_IO),
        ("pure_compute", PURE_COMPUTE),
        ("nyx_log_io", NYX_LOG_IO),
        ("ior_random_io", IOR_RANDOM_IO),
        ("gyro_strided_io", GYRO_STRIDED_IO),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn all_samples_parse() {
        for (name, src) in all_samples() {
            let prog = parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!prog.functions.is_empty(), "{name} has no functions");
        }
    }

    #[test]
    fn samples_round_trip_through_printer() {
        for (name, src) in all_samples() {
            let prog = parse(src).unwrap();
            let printed = crate::printer::print_program(&prog);
            let reparsed = parse(&printed.text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(prog.stmt_count(), reparsed.stmt_count(), "{name}");
        }
    }

    #[test]
    fn vpic_contains_the_fig5_shape() {
        let prog = parse(VPIC_IO).unwrap();
        let mut calls = Vec::new();
        prog.visit_stmts(|s, _| {
            if let crate::ast::StmtKind::Expr(e) = &s.kind {
                e.call_names(&mut calls);
            }
        });
        assert!(calls.iter().any(|c| c == "H5Dwrite"));
        assert!(calls.iter().any(|c| c == "printf"));
    }
}

#[cfg(test)]
mod bdcats_tests {
    use super::*;
    use crate::ast::StmtKind;
    use crate::parser::parse;

    #[test]
    fn bdcats_sample_uses_break_and_continue() {
        let prog = parse(BDCATS_IO).unwrap();
        let mut has_break = false;
        let mut has_continue = false;
        prog.visit_stmts(|s, _| match s.kind {
            StmtKind::Break => has_break = true,
            StmtKind::Continue => has_continue = true,
            _ => {}
        });
        assert!(has_break && has_continue);
    }
}
