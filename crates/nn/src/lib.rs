//! # tunio-nn — minimal neural networks and PCA
//!
//! The paper builds its RL agents from Keras networks and trains the
//! Smart Configuration Generation component offline with a PCA over
//! parameter-sweep results. This crate supplies those pieces in pure Rust:
//!
//! * [`net`] — dense feed-forward networks with ReLU/tanh/sigmoid/linear
//!   activations, mean-squared-error loss, and SGD / Adam optimizers.
//! * [`pca`] — principal component analysis via covariance + cyclic Jacobi
//!   eigendecomposition.
//!
//! Everything is deterministic given a seed.

#![warn(missing_docs)]

pub mod net;
pub mod pca;

pub use net::{Activation, Network, Optimizer};
pub use pca::Pca;
