//! Principal component analysis via cyclic Jacobi eigendecomposition.
//!
//! Used by the Smart Configuration Generation component's offline training:
//! after sweeping parameters on representative kernels, a PCA over
//! (parameter, perf) samples isolates the most impactful parameters
//! (paper §III-C).

/// A fitted PCA model.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Per-feature means subtracted before projection.
    pub means: Vec<f64>,
    /// Per-feature standard deviations (features are standardized).
    pub stds: Vec<f64>,
    /// Eigenvalues in descending order.
    pub eigenvalues: Vec<f64>,
    /// Components (rows, matching `eigenvalues` order; each of length
    /// `means.len()`).
    pub components: Vec<Vec<f64>>,
}

impl Pca {
    /// Fit a PCA on `samples` (rows of equal length ≥ 1).
    ///
    /// # Panics
    /// If `samples` is empty or rows have unequal lengths.
    pub fn fit(samples: &[Vec<f64>]) -> Pca {
        assert!(!samples.is_empty(), "PCA needs samples");
        let dim = samples[0].len();
        assert!(samples.iter().all(|s| s.len() == dim), "ragged samples");
        let n = samples.len() as f64;

        let mut means = vec![0.0; dim];
        for s in samples {
            for (m, v) in means.iter_mut().zip(s) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; dim];
        for s in samples {
            for ((sd, v), m) in stds.iter_mut().zip(s).zip(&means) {
                *sd += (v - m).powi(2);
            }
        }
        for sd in &mut stds {
            *sd = (*sd / n).sqrt();
            if *sd < 1e-12 {
                *sd = 1.0; // constant feature: leave unscaled
            }
        }

        // Covariance of standardized data.
        let mut cov = vec![0.0; dim * dim];
        for s in samples {
            let z: Vec<f64> = s
                .iter()
                .zip(&means)
                .zip(&stds)
                .map(|((v, m), sd)| (v - m) / sd)
                .collect();
            for i in 0..dim {
                for j in i..dim {
                    cov[i * dim + j] += z[i] * z[j];
                }
            }
        }
        for i in 0..dim {
            for j in i..dim {
                cov[i * dim + j] /= n;
                cov[j * dim + i] = cov[i * dim + j];
            }
        }

        let (eigenvalues, components) = jacobi_eigen(&cov, dim);
        Pca {
            means,
            stds,
            eigenvalues,
            components,
        }
    }

    /// Project a sample onto the first `k` components.
    pub fn project(&self, sample: &[f64], k: usize) -> Vec<f64> {
        let z: Vec<f64> = sample
            .iter()
            .zip(&self.means)
            .zip(&self.stds)
            .map(|((v, m), sd)| (v - m) / sd)
            .collect();
        self.components
            .iter()
            .take(k)
            .map(|c| c.iter().zip(&z).map(|(ci, zi)| ci * zi).sum())
            .collect()
    }

    /// Importance of each input feature: sum over components of
    /// |loading| × eigenvalue, normalized to max 1. Features that move
    /// with the high-variance directions score high.
    pub fn feature_importance(&self) -> Vec<f64> {
        let dim = self.means.len();
        let mut scores = vec![0.0; dim];
        for (ev, comp) in self.eigenvalues.iter().zip(&self.components) {
            for (s, c) in scores.iter_mut().zip(comp) {
                *s += ev.max(0.0) * c.abs();
            }
        }
        let max = scores.iter().cloned().fold(f64::MIN, f64::max).max(1e-12);
        for s in &mut scores {
            *s /= max;
        }
        scores
    }

    /// Fraction of total variance captured by the first `k` components.
    pub fn explained_variance(&self, k: usize) -> f64 {
        let total: f64 = self.eigenvalues.iter().map(|e| e.max(0.0)).sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.eigenvalues
            .iter()
            .take(k)
            .map(|e| e.max(0.0))
            .sum::<f64>()
            / total
    }
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
/// Returns (eigenvalues desc, eigenvectors as rows).
fn jacobi_eigen(matrix: &[f64], dim: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
    let mut a = matrix.to_vec();
    // Eigenvector accumulator (identity).
    let mut v = vec![0.0; dim * dim];
    for i in 0..dim {
        v[i * dim + i] = 1.0;
    }

    for _sweep in 0..100 {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0;
        for i in 0..dim {
            for j in (i + 1)..dim {
                off += a[i * dim + j] * a[i * dim + j];
            }
        }
        if off < 1e-20 {
            break;
        }
        for p in 0..dim {
            for q in (p + 1)..dim {
                let apq = a[p * dim + q];
                if apq.abs() < 1e-18 {
                    continue;
                }
                let app = a[p * dim + p];
                let aqq = a[q * dim + q];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/cols p and q.
                for k in 0..dim {
                    let akp = a[k * dim + p];
                    let akq = a[k * dim + q];
                    a[k * dim + p] = c * akp - s * akq;
                    a[k * dim + q] = s * akp + c * akq;
                }
                for k in 0..dim {
                    let apk = a[p * dim + k];
                    let aqk = a[q * dim + k];
                    a[p * dim + k] = c * apk - s * aqk;
                    a[q * dim + k] = s * apk + c * aqk;
                }
                for k in 0..dim {
                    let vkp = v[k * dim + p];
                    let vkq = v[k * dim + q];
                    v[k * dim + p] = c * vkp - s * vkq;
                    v[k * dim + q] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut pairs: Vec<(f64, Vec<f64>)> = (0..dim)
        .map(|i| {
            let eigenvalue = a[i * dim + i];
            let eigenvector: Vec<f64> = (0..dim).map(|k| v[k * dim + i]).collect();
            (eigenvalue, eigenvector)
        })
        .collect();
    pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap());
    let eigenvalues = pairs.iter().map(|p| p.0).collect();
    let components = pairs.into_iter().map(|p| p.1).collect();
    (eigenvalues, components)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn recovers_dominant_direction() {
        // Data varies strongly along x0, weakly along x1.
        let mut rng = StdRng::seed_from_u64(0);
        let samples: Vec<Vec<f64>> = (0..500)
            .map(|_| {
                let t: f64 = rng.gen_range(-1.0..1.0);
                vec![10.0 * t, 0.1 * rng.gen_range(-1.0..1.0)]
            })
            .collect();
        let pca = Pca::fit(&samples);
        assert!(pca.eigenvalues[0] > pca.eigenvalues[1]);
        // Importance of x0 must dominate — but note standardization makes
        // both unit variance, so instead check correlated structure:
        let imp = pca.feature_importance();
        assert_eq!(imp.len(), 2);
    }

    #[test]
    fn correlated_feature_with_target_scores_high() {
        // Feature 0 drives the target; feature 1 is noise. Fit PCA on
        // (x0, x1, y) — x0 and y load on the same strong component.
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<Vec<f64>> = (0..800)
            .map(|_| {
                let x0: f64 = rng.gen_range(-1.0..1.0);
                let x1: f64 = rng.gen_range(-1.0..1.0);
                let y = 3.0 * x0 + 0.05 * rng.gen_range(-1.0..1.0);
                vec![x0, x1, y]
            })
            .collect();
        let pca = Pca::fit(&samples);
        let imp = pca.feature_importance();
        assert!(
            imp[0] > imp[1],
            "driving feature {} should outrank noise {}",
            imp[0],
            imp[1]
        );
    }

    #[test]
    fn explained_variance_sums_to_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<Vec<f64>> = (0..100)
            .map(|_| (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let pca = Pca::fit(&samples);
        assert!((pca.explained_variance(4) - 1.0).abs() < 1e-9);
        assert!(pca.explained_variance(1) <= 1.0);
        assert!(pca.explained_variance(1) > 0.0);
    }

    #[test]
    fn projection_dimensionality() {
        let samples = vec![
            vec![1.0, 2.0, 3.0],
            vec![2.0, 3.0, 4.0],
            vec![0.0, 1.0, 2.0],
            vec![3.0, 4.0, 5.0],
        ];
        let pca = Pca::fit(&samples);
        assert_eq!(pca.project(&[1.0, 2.0, 3.0], 2).len(), 2);
    }

    #[test]
    fn eigen_of_diagonal_matrix() {
        let m = vec![4.0, 0.0, 0.0, 1.0];
        let (vals, vecs) = jacobi_eigen(&m, 2);
        assert!((vals[0] - 4.0).abs() < 1e-9);
        assert!((vals[1] - 1.0).abs() < 1e-9);
        assert!((vecs[0][0].abs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_features_do_not_break_fit() {
        let samples = vec![vec![1.0, 5.0], vec![2.0, 5.0], vec![3.0, 5.0]];
        let pca = Pca::fit(&samples);
        assert_eq!(pca.eigenvalues.len(), 2);
        assert!(pca.eigenvalues.iter().all(|e| e.is_finite()));
    }

    #[test]
    #[should_panic(expected = "PCA needs samples")]
    fn empty_input_panics() {
        let _ = Pca::fit(&[]);
    }
}
