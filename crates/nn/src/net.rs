//! Dense feed-forward networks with backpropagation.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// tanh(x)
    Tanh,
    /// 1 / (1 + e^-x)
    Sigmoid,
    /// identity
    Linear,
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Linear => x,
        }
    }

    /// Derivative expressed in terms of the *activated* output `y`.
    fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Linear => 1.0,
        }
    }
}

/// Gradient-descent optimizers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Optimizer {
    /// Plain stochastic gradient descent.
    Sgd {
        /// Learning rate.
        lr: f64,
    },
    /// Adam with the usual defaults (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    Adam {
        /// Learning rate.
        lr: f64,
    },
}

/// One dense layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Dense {
    /// Row-major `[out][in]` weights.
    w: Vec<f64>,
    b: Vec<f64>,
    inputs: usize,
    outputs: usize,
    act: Activation,
    // Adam state.
    m_w: Vec<f64>,
    v_w: Vec<f64>,
    m_b: Vec<f64>,
    v_b: Vec<f64>,
}

impl Dense {
    fn new<R: Rng>(inputs: usize, outputs: usize, act: Activation, rng: &mut R) -> Self {
        // Xavier/Glorot uniform initialization.
        let limit = (6.0 / (inputs + outputs) as f64).sqrt();
        let w = (0..inputs * outputs)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        Dense {
            w,
            b: vec![0.0; outputs],
            inputs,
            outputs,
            act,
            m_w: vec![0.0; inputs * outputs],
            v_w: vec![0.0; inputs * outputs],
            m_b: vec![0.0; outputs],
            v_b: vec![0.0; outputs],
        }
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.inputs);
        (0..self.outputs)
            .map(|o| {
                let mut acc = self.b[o];
                let row = &self.w[o * self.inputs..(o + 1) * self.inputs];
                for (wi, xi) in row.iter().zip(x) {
                    acc += wi * xi;
                }
                self.act.apply(acc)
            })
            .collect()
    }
}

/// A dense feed-forward network trained with backprop + MSE loss.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    layers: Vec<Dense>,
    optimizer: Optimizer,
    /// Adam step counter.
    t: u64,
}

impl Network {
    /// Build a network. `sizes` is `[in, hidden…, out]`; `activations` has
    /// one entry per layer (`sizes.len() - 1`).
    ///
    /// # Panics
    /// If `sizes` and `activations` lengths are inconsistent.
    pub fn new<R: Rng>(
        sizes: &[usize],
        activations: &[Activation],
        optimizer: Optimizer,
        rng: &mut R,
    ) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        assert_eq!(
            activations.len(),
            sizes.len() - 1,
            "one activation per layer"
        );
        let layers = sizes
            .windows(2)
            .zip(activations)
            .map(|(pair, &act)| Dense::new(pair[0], pair[1], act, rng))
            .collect();
        Network {
            layers,
            optimizer,
            t: 0,
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map(|l| l.inputs).unwrap_or(0)
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().map(|l| l.outputs).unwrap_or(0)
    }

    /// Forward pass.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut a = x.to_vec();
        for layer in &self.layers {
            a = layer.forward(&a);
        }
        a
    }

    /// One backprop step on a single example; returns the MSE loss before
    /// the update.
    pub fn train_step(&mut self, x: &[f64], target: &[f64]) -> f64 {
        // Forward pass, caching activations.
        let mut activations: Vec<Vec<f64>> = vec![x.to_vec()];
        for layer in &self.layers {
            let next = layer.forward(activations.last().unwrap());
            activations.push(next);
        }
        let output = activations.last().unwrap();
        debug_assert_eq!(output.len(), target.len());
        let loss: f64 = output
            .iter()
            .zip(target)
            .map(|(o, t)| (o - t).powi(2))
            .sum::<f64>()
            / output.len() as f64;

        // Backward pass: delta = dL/d(pre-activation).
        let mut delta: Vec<f64> = output
            .iter()
            .zip(target)
            .map(|(o, t)| 2.0 * (o - t) / output.len() as f64)
            .collect();
        self.t += 1;
        for li in (0..self.layers.len()).rev() {
            let input = activations[li].clone();
            let out = activations[li + 1].clone();
            let (d_prev, grads_w, grads_b) = {
                let layer = &self.layers[li];
                let mut grads_w = vec![0.0; layer.w.len()];
                let mut grads_b = vec![0.0; layer.outputs];
                let mut d_prev = vec![0.0; layer.inputs];
                for o in 0..layer.outputs {
                    let d = delta[o] * layer.act.derivative_from_output(out[o]);
                    grads_b[o] = d;
                    for i in 0..layer.inputs {
                        grads_w[o * layer.inputs + i] = d * input[i];
                        d_prev[i] += d * layer.w[o * layer.inputs + i];
                    }
                }
                (d_prev, grads_w, grads_b)
            };
            let t = self.t;
            let optimizer = self.optimizer;
            let layer = &mut self.layers[li];
            apply_update(
                optimizer,
                t,
                &mut layer.w,
                &mut layer.m_w,
                &mut layer.v_w,
                &grads_w,
            );
            apply_update(
                optimizer,
                t,
                &mut layer.b,
                &mut layer.m_b,
                &mut layer.v_b,
                &grads_b,
            );
            delta = d_prev;
        }
        loss
    }

    /// Train over a dataset for `epochs`; returns the final mean loss.
    pub fn fit(&mut self, xs: &[Vec<f64>], ys: &[Vec<f64>], epochs: usize) -> f64 {
        assert_eq!(xs.len(), ys.len());
        let mut last = f64::NAN;
        for _ in 0..epochs {
            let mut total = 0.0;
            for (x, y) in xs.iter().zip(ys) {
                total += self.train_step(x, y);
            }
            last = total / xs.len().max(1) as f64;
        }
        last
    }
}

fn apply_update(
    optimizer: Optimizer,
    t: u64,
    params: &mut [f64],
    m: &mut [f64],
    v: &mut [f64],
    grads: &[f64],
) {
    match optimizer {
        Optimizer::Sgd { lr } => {
            for (p, g) in params.iter_mut().zip(grads) {
                *p -= lr * g;
            }
        }
        Optimizer::Adam { lr } => {
            const B1: f64 = 0.9;
            const B2: f64 = 0.999;
            const EPS: f64 = 1e-8;
            let bc1 = 1.0 - B1.powi(t as i32);
            let bc2 = 1.0 - B2.powi(t as i32);
            for i in 0..params.len() {
                m[i] = B1 * m[i] + (1.0 - B1) * grads[i];
                v[i] = B2 * v[i] + (1.0 - B2) * grads[i] * grads[i];
                let m_hat = m[i] / bc1;
                let v_hat = v[i] / bc2;
                params[i] -= lr * m_hat / (v_hat.sqrt() + EPS);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_dimensions() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = Network::new(
            &[3, 5, 2],
            &[Activation::Relu, Activation::Linear],
            Optimizer::Sgd { lr: 0.01 },
            &mut rng,
        );
        assert_eq!(net.input_dim(), 3);
        assert_eq!(net.output_dim(), 2);
        assert_eq!(net.forward(&[0.1, 0.2, 0.3]).len(), 2);
    }

    #[test]
    fn learns_xor_with_adam() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = Network::new(
            &[2, 8, 1],
            &[Activation::Tanh, Activation::Sigmoid],
            Optimizer::Adam { lr: 0.05 },
            &mut rng,
        );
        let xs = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let ys = vec![vec![0.0], vec![1.0], vec![1.0], vec![0.0]];
        let loss = net.fit(&xs, &ys, 2000);
        assert!(loss < 0.03, "final loss {loss}");
        for (x, y) in xs.iter().zip(&ys) {
            let out = net.forward(x)[0];
            assert!(
                (out - y[0]).abs() < 0.3,
                "xor({x:?}) = {out:.3}, want {}",
                y[0]
            );
        }
    }

    #[test]
    fn learns_linear_regression_with_sgd() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Network::new(
            &[1, 1],
            &[Activation::Linear],
            Optimizer::Sgd { lr: 0.05 },
            &mut rng,
        );
        // y = 2x + 1
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 20.0]).collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![2.0 * x[0] + 1.0]).collect();
        let loss = net.fit(&xs, &ys, 500);
        assert!(loss < 1e-3, "loss {loss}");
        let pred = net.forward(&[0.5])[0];
        assert!((pred - 2.0).abs() < 0.1, "pred {pred}");
    }

    #[test]
    fn training_reduces_loss_monotonically_on_average() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = Network::new(
            &[2, 6, 1],
            &[Activation::Relu, Activation::Linear],
            Optimizer::Adam { lr: 0.01 },
            &mut rng,
        );
        let xs: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 10) as f64 / 10.0, (i / 10) as f64 / 5.0])
            .collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![x[0] * 0.5 - x[1] * 0.2]).collect();
        let early = net.fit(&xs, &ys, 1);
        let late = net.fit(&xs, &ys, 200);
        assert!(late < early || late < 1e-6, "late {late} >= early {early}");
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            let mut rng = StdRng::seed_from_u64(42);
            Network::new(
                &[2, 4, 1],
                &[Activation::Tanh, Activation::Linear],
                Optimizer::Sgd { lr: 0.01 },
                &mut rng,
            )
        };
        let a = build().forward(&[0.3, 0.7]);
        let b = build().forward(&[0.3, 0.7]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "one activation per layer")]
    fn mismatched_activations_panic() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Network::new(
            &[2, 2],
            &[Activation::Relu, Activation::Relu],
            Optimizer::Sgd { lr: 0.1 },
            &mut rng,
        );
    }

    #[test]
    fn activation_derivatives_match_definitions() {
        assert_eq!(Activation::Relu.derivative_from_output(2.0), 1.0);
        assert_eq!(Activation::Relu.derivative_from_output(0.0), 0.0);
        let y = 0.5f64.tanh();
        assert!((Activation::Tanh.derivative_from_output(y) - (1.0 - y * y)).abs() < 1e-12);
        assert_eq!(Activation::Linear.derivative_from_output(123.0), 1.0);
    }
}
