//! Property-based tests: network and PCA numerical invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tunio_nn::{Activation, Network, Optimizer, Pca};

proptest! {
    #[test]
    fn forward_outputs_are_finite(
        seed in any::<u64>(),
        input in proptest::collection::vec(-100.0f64..100.0, 5),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Network::new(
            &[5, 9, 3],
            &[Activation::Tanh, Activation::Linear],
            Optimizer::Adam { lr: 0.01 },
            &mut rng,
        );
        let out = net.forward(&input);
        prop_assert_eq!(out.len(), 3);
        prop_assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sigmoid_outputs_stay_in_unit_interval(
        seed in any::<u64>(),
        input in proptest::collection::vec(-50.0f64..50.0, 4),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Network::new(
            &[4, 6, 2],
            &[Activation::Relu, Activation::Sigmoid],
            Optimizer::Sgd { lr: 0.01 },
            &mut rng,
        );
        for v in net.forward(&input) {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn train_step_returns_nonnegative_finite_loss(
        seed in any::<u64>(),
        x in proptest::collection::vec(-2.0f64..2.0, 3),
        y in proptest::collection::vec(-2.0f64..2.0, 2),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Network::new(
            &[3, 5, 2],
            &[Activation::Tanh, Activation::Linear],
            Optimizer::Adam { lr: 0.005 },
            &mut rng,
        );
        let loss = net.train_step(&x, &y);
        prop_assert!(loss.is_finite() && loss >= 0.0);
        // Repeated training on the same example drives loss down.
        let mut last = loss;
        for _ in 0..200 {
            last = net.train_step(&x, &y);
        }
        prop_assert!(last <= loss + 1e-9, "loss rose from {loss} to {last}");
    }

    #[test]
    fn pca_eigenvalues_are_sorted_and_explain_all_variance(
        rows in proptest::collection::vec(
            proptest::collection::vec(-5.0f64..5.0, 4),
            4..40,
        ),
    ) {
        let pca = Pca::fit(&rows);
        for pair in pca.eigenvalues.windows(2) {
            prop_assert!(pair[0] >= pair[1] - 1e-9, "eigenvalues unsorted");
        }
        let full = pca.explained_variance(4);
        prop_assert!((full - 1.0).abs() < 1e-6 || full == 0.0);
        // Projections are finite.
        let proj = pca.project(&rows[0], 4);
        prop_assert!(proj.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn pca_importance_is_normalized(
        rows in proptest::collection::vec(
            proptest::collection::vec(-5.0f64..5.0, 3),
            3..30,
        ),
    ) {
        let pca = Pca::fit(&rows);
        let imp = pca.feature_importance();
        prop_assert_eq!(imp.len(), 3);
        let max = imp.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!((max - 1.0).abs() < 1e-9);
        prop_assert!(imp.iter().all(|v| (0.0..=1.0 + 1e-9).contains(v)));
    }
}
