//! Property-based tests: simulator invariants across the whole
//! configuration space and randomized workloads.

use proptest::prelude::*;
use tunio_iosim::{AccessPattern, IoKind, IoPhase, Phase, Simulator};
use tunio_params::{Configuration, ParameterSpace};

fn config_strategy() -> impl Strategy<Value = Configuration> {
    let space = ParameterSpace::tunio_default();
    let ranges: Vec<std::ops::Range<usize>> = space
        .descriptors()
        .iter()
        .map(|d| 0..d.domain.cardinality())
        .collect();
    ranges.prop_map(Configuration::new)
}

fn phase_strategy() -> impl Strategy<Value = Phase> {
    (
        prop_oneof![Just(IoKind::Write), Just(IoKind::Read)],
        1u64..(1 << 30), // per_proc_bytes up to 1 GiB
        1u64..10_000,    // ops
        prop_oneof![
            Just(AccessPattern::Contiguous),
            (12u32..25).prop_map(|p| AccessPattern::Strided { record: 1 << p }),
            Just(AccessPattern::Random),
        ],
        0u64..64,        // meta ops
        any::<bool>(),   // collective capable
        0u64..(1 << 28), // chunk reuse
        0u32..64,        // pre-striped input
    )
        .prop_map(|(kind, bytes, ops, pattern, meta, coll, reuse, pre)| {
            Phase::Io(IoPhase {
                dataset: "prop".into(),
                kind,
                per_proc_bytes: bytes,
                ops_per_proc: ops,
                pattern,
                meta_ops: meta,
                collective_capable: coll,
                chunk_reuse_bytes: reuse,
                pre_striped: pre,
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn reports_are_finite_and_consistent(
        config in config_strategy(),
        phases in proptest::collection::vec(phase_strategy(), 1..6),
        seed in any::<u64>(),
    ) {
        let space = ParameterSpace::tunio_default();
        let sim = Simulator::cori_4node(seed);
        let r = sim.run(&phases, &config.resolve(&space), 0);

        prop_assert!(r.elapsed_s.is_finite() && r.elapsed_s > 0.0);
        prop_assert!(r.io_time_s >= 0.0 && r.meta_time_s >= 0.0);
        prop_assert!(
            (r.elapsed_s - (r.compute_time_s + r.io_time_s + r.meta_time_s)).abs()
                < 1e-6 * r.elapsed_s.max(1.0)
        );
        prop_assert!(r.bytes_written >= 0.0 && r.bytes_read >= 0.0);
        prop_assert!(r.perf().is_finite() && r.perf() >= 0.0);
        prop_assert!((0.0..=1.0).contains(&r.alpha()));
    }

    #[test]
    fn same_inputs_same_outputs(
        config in config_strategy(),
        phases in proptest::collection::vec(phase_strategy(), 1..4),
        seed in any::<u64>(),
        run_idx in 0u32..8,
    ) {
        let space = ParameterSpace::tunio_default();
        let sim = Simulator::cori_4node(seed);
        let stack = config.resolve(&space);
        prop_assert_eq!(sim.run(&phases, &stack, run_idx), sim.run(&phases, &stack, run_idx));
    }

    #[test]
    fn doubling_data_never_reduces_io_time(
        config in config_strategy(),
        phase in phase_strategy(),
    ) {
        let space = ParameterSpace::tunio_default();
        let sim = Simulator::test_tiny();
        let stack = config.resolve(&space);
        let small = sim.run(std::slice::from_ref(&phase), &stack, 0);
        let doubled = match &phase {
            Phase::Io(io) => {
                let mut big = io.clone();
                big.per_proc_bytes = io.per_proc_bytes.saturating_mul(2);
                big.ops_per_proc = io.ops_per_proc.saturating_mul(2);
                Phase::Io(big)
            }
            other => other.clone(),
        };
        let large = sim.run(&[doubled], &stack, 0);
        prop_assert!(
            large.io_time_s >= small.io_time_s * 0.999,
            "doubling data shrank io time: {} -> {}",
            small.io_time_s,
            large.io_time_s
        );
    }

    #[test]
    fn perf_is_bounded_by_hardware(
        config in config_strategy(),
        phase in phase_strategy(),
    ) {
        let space = ParameterSpace::tunio_default();
        let sim = Simulator::cori_4node(0);
        let r = sim.run(&[phase], &config.resolve(&space), 0);
        // perf can never exceed the file system's aggregate bandwidth or
        // a generous multiple of the cluster's injection bandwidth.
        let fs_cap = sim.fs.aggregate_bw();
        prop_assert!(
            r.perf() <= fs_cap * 1.01,
            "perf {} exceeds hardware cap {}",
            r.perf(),
            fs_cap
        );
    }

    #[test]
    fn averaging_is_within_min_max_of_runs(
        config in config_strategy(),
        phase in phase_strategy(),
        seed in any::<u64>(),
    ) {
        let space = ParameterSpace::tunio_default();
        let sim = Simulator::cori_4node(seed);
        let stack = config.resolve(&space);
        let phases = [phase];
        let times: Vec<f64> = (0..3).map(|i| sim.run(&phases, &stack, i).elapsed_s).collect();
        let avg = sim.run_averaged(&phases, &stack, 3).elapsed_s;
        let lo = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9);
    }
}
