//! Hermes-style burst-buffer tier (optional).
//!
//! The paper's search-space analysis (Fig 1) includes Hermes, a
//! multi-tier buffering library, and §III motivates TunIO with "modern
//! hardware designs". This module models the simplest such tier: a
//! node-local burst buffer that absorbs checkpoint writes at memory-class
//! speed and drains to the PFS during compute phases. Enabled per
//! [`crate::Simulator`] via [`crate::Simulator::with_burst_buffer`]; the
//! `abl04_burst_buffer` experiment quantifies how it reshapes the tuning
//! problem (absorbed writes make PFS parameters matter less).

use serde::{Deserialize, Serialize};

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Static description of a node-local burst-buffer tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstBufferSpec {
    /// Capacity per node, bytes.
    pub capacity_per_node: f64,
    /// Ingest bandwidth per node (application → buffer), bytes/s.
    pub ingest_bw_per_node: f64,
    /// Aggregate drain bandwidth (buffer → PFS), bytes/s.
    pub drain_bw: f64,
}

impl BurstBufferSpec {
    /// A Cori-DataWarp-like tier: 128 GiB/node at 5 GiB/s ingest,
    /// draining at 50 GiB/s aggregate.
    pub fn datawarp_like() -> Self {
        BurstBufferSpec {
            capacity_per_node: 128.0 * GIB,
            ingest_bw_per_node: 5.0 * GIB,
            drain_bw: 50.0 * GIB,
        }
    }

    /// A tiny tier for unit tests.
    pub fn test_tiny() -> Self {
        BurstBufferSpec {
            capacity_per_node: 64.0 * 1024.0 * 1024.0,
            ingest_bw_per_node: 1.0 * GIB,
            drain_bw: 0.5 * GIB,
        }
    }

    /// Time to ingest `bytes` across `nodes` node-local buffers, seconds.
    pub fn ingest_time(&self, nodes: u32, bytes: f64) -> f64 {
        if bytes > 0.0 {
            bytes / (self.ingest_bw_per_node * nodes as f64)
        } else {
            0.0
        }
    }
}

/// Mutable drain state threaded through one run.
#[derive(Debug, Clone, Copy)]
pub struct BurstBufferState {
    /// Bytes currently occupied across all nodes.
    pub occupied: f64,
}

impl BurstBufferState {
    /// Empty buffer.
    pub fn empty() -> Self {
        BurstBufferState { occupied: 0.0 }
    }

    /// Absorb a write phase: returns `(absorbed_bytes, absorb_time_s)`.
    /// Bytes beyond free capacity must take the PFS path.
    pub fn absorb(&mut self, spec: &BurstBufferSpec, nodes: u32, bytes: f64) -> (f64, f64) {
        let total_capacity = spec.capacity_per_node * nodes as f64;
        let free = (total_capacity - self.occupied).max(0.0);
        let absorbed = bytes.min(free);
        self.occupied += absorbed;
        (absorbed, spec.ingest_time(nodes, absorbed))
    }

    /// Drain during `seconds` of compute time.
    pub fn drain(&mut self, spec: &BurstBufferSpec, seconds: f64) {
        self.occupied = (self.occupied - spec.drain_bw * seconds).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorbs_until_capacity() {
        let spec = BurstBufferSpec::test_tiny();
        let mut state = BurstBufferState::empty();
        let cap = spec.capacity_per_node * 2.0; // 2 nodes
        let (a1, t1) = state.absorb(&spec, 2, cap * 0.75);
        assert_eq!(a1, cap * 0.75);
        assert!(t1 > 0.0);
        // Second write only partially fits.
        let (a2, _) = state.absorb(&spec, 2, cap * 0.5);
        assert!((a2 - cap * 0.25).abs() < 1.0);
        // Third write: full.
        let (a3, t3) = state.absorb(&spec, 2, 1e6);
        assert_eq!(a3, 0.0);
        assert_eq!(t3, 0.0);
    }

    #[test]
    fn drains_during_compute() {
        let spec = BurstBufferSpec::test_tiny();
        let mut state = BurstBufferState::empty();
        state.absorb(&spec, 1, spec.capacity_per_node);
        state.drain(&spec, 0.05);
        assert!(state.occupied < spec.capacity_per_node);
        state.drain(&spec, 1e9);
        assert_eq!(state.occupied, 0.0);
    }

    #[test]
    fn ingest_time_scales_with_nodes() {
        let spec = BurstBufferSpec::datawarp_like();
        let mut a = BurstBufferState::empty();
        let mut b = BurstBufferState::empty();
        let bytes = 10.0 * GIB;
        let (_, t1) = a.absorb(&spec, 1, bytes);
        let (_, t4) = b.absorb(&spec, 4, bytes);
        assert!((t1 / t4 - 4.0).abs() < 1e-9);
    }
}
