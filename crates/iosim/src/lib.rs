//! # tunio-iosim — a simulated multi-layer HPC I/O stack
//!
//! The TunIO paper evaluates on NERSC Cori: Haswell compute nodes, an
//! MPI-IO middleware layer, the HDF5 library, and a ~700 GB/s Lustre scratch
//! file system. None of that is available here, so this crate implements the
//! closest synthetic equivalent: an analytical performance model of the same
//! three-layer stack, exposing exactly the twelve tunable parameters the
//! paper sweeps ([`tunio_params::StackConfig`]) and responding to them with
//! the same qualitative interactions the paper describes:
//!
//! * Lustre striping (`striping_factor`, `striping_unit`) spreads a file over
//!   object storage targets; too few stripes serialize on one OST, while
//!   writer/OST contention erodes efficiency.
//! * MPI-IO collective buffering (`collective_io`, `cb_nodes`,
//!   `cb_buffer_size`) trades a network shuffle for fewer, larger,
//!   better-formed file-system requests.
//! * HDF5 chunk caching, alignment and sieve buffering reshape the request
//!   stream before it reaches the middleware; metadata parameters
//!   (`meta_block_size`, `coll_meta_ops`, `mdc_config`,
//!   `coll_metadata_write`) scale the (small) metadata fraction of runtime.
//!
//! A [`Simulator`] executes a workload — a sequence of [`Phase`]s of compute
//! and I/O — under a configuration and returns a [`RunReport`] with bytes
//! moved, operation counts and the simulated elapsed time, from which the
//! paper's `perf = (1-α)·BW_r + α·BW_w` objective is computed. A seeded
//! deterministic noise model emulates platform volatility, and runs are
//! repeatable: the same (workload, config, seed) always produces the same
//! report.

#![warn(missing_docs)]

pub mod burst;
pub mod cluster;
pub mod darshan;
pub mod fault;
pub mod hdf5;
pub mod interference;
pub mod lustre;
pub mod mpiio;
pub mod noise;
pub mod profile;
pub mod report;
pub mod request;
pub mod sim;

pub use burst::BurstBufferSpec;
pub use cluster::ClusterSpec;
pub use darshan::{DarshanLog, DatasetCounters};
pub use fault::{FaultKind, FaultPlan, InjectedFault, SimFault};
pub use interference::{InterferenceModel, NoiseProfile};
pub use lustre::LustreSpec;
pub use profile::{compare_profiles, render_diff, Layer, LayerDelta, LayerStat, Profile, TreeRow};
pub use report::RunReport;
pub use request::{AccessPattern, IoKind, IoPhase, Phase};
pub use sim::Simulator;
