//! tunio-profile: inspect and diff per-layer cost-attribution profiles.
//!
//! ```text
//! tunio-profile <profile.json>                 # attribution table + tree
//! tunio-profile --diff <base.json> <cur.json> [--tolerance 0.15]
//! ```
//!
//! In `--diff` mode the exit code is 1 when any layer regressed beyond the
//! tolerance — suitable as a CI perf-regression gate.

use std::process::ExitCode;

use tunio_iosim::{compare_profiles, render_diff, Profile};

const USAGE: &str = "usage: tunio-profile <profile.json>\n       \
                     tunio-profile --diff <base.json> <current.json> [--tolerance 0.15]";

fn load(path: &str) -> Result<Profile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Profile::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    match args {
        [path] if path != "--diff" => {
            let profile = load(path)?;
            print!("{}", profile.render_table());
            println!();
            print!("{}", profile.render_tree());
            Ok(ExitCode::SUCCESS)
        }
        [flag, rest @ ..] if flag == "--diff" => {
            let (paths, tolerance) = match rest {
                [base, cur] => ([base, cur], 0.15),
                [base, cur, tol_flag, tol] if tol_flag == "--tolerance" => (
                    [base, cur],
                    tol.parse::<f64>()
                        .map_err(|e| format!("--tolerance: {e}"))?,
                ),
                _ => return Err(USAGE.to_string()),
            };
            let base = load(paths[0])?;
            let current = load(paths[1])?;
            let deltas = compare_profiles(&base, &current, tolerance);
            print!("{}", render_diff(&deltas));
            let regressions: Vec<_> = deltas.iter().filter(|d| d.regressed).collect();
            if regressions.is_empty() {
                println!("ok: no layer regressed beyond {:.0}%", tolerance * 100.0);
                Ok(ExitCode::SUCCESS)
            } else {
                println!(
                    "FAIL: {} layer(s) regressed beyond {:.0}%:",
                    regressions.len(),
                    tolerance * 100.0
                );
                for d in regressions {
                    println!(
                        "  {}: {:.3} s -> {:.3} s ({:+.1}%)",
                        d.layer.as_str(),
                        d.base_s,
                        d.current_s,
                        d.pct_change()
                    );
                }
                Ok(ExitCode::FAILURE)
            }
        }
        _ => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
