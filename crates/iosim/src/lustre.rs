//! Lustre-like parallel-file-system model.
//!
//! The model captures the striping behaviour that the paper's Lustre
//! parameters control: a file is striped round-robin in `striping_unit`
//! chunks over `striping_factor` object storage targets (OSTs). Bandwidth
//! grows with the number of OSTs engaged until either the client network or
//! writer/OST contention becomes the bottleneck; small or misaligned
//! file-system requests pay per-request overhead and stripe-crossing
//! penalties. A single metadata server (MDS) serves metadata operations.

use serde::{Deserialize, Serialize};

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Static description of the simulated parallel file system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LustreSpec {
    /// Number of object storage targets.
    pub n_osts: u32,
    /// Peak streaming bandwidth of one OST, bytes/s.
    pub ost_bw: f64,
    /// Fixed service overhead per file-system request, seconds.
    pub request_overhead: f64,
    /// Metadata operations the MDS can service per second.
    pub mds_ops_per_s: f64,
    /// Fraction of peak an OST retains under heavily non-sequential load.
    pub seek_floor: f64,
}

impl LustreSpec {
    /// Cori-scratch-like system: 248 OSTs, ~700 GB/s aggregate.
    pub fn cori_scratch() -> Self {
        LustreSpec {
            n_osts: 248,
            ost_bw: 2.85 * GIB,
            request_overhead: 0.5e-3,
            mds_ops_per_s: 40_000.0,
            seek_floor: 0.30,
        }
    }

    /// A small system for fast unit tests.
    pub fn test_small() -> Self {
        LustreSpec {
            n_osts: 8,
            ost_bw: 1.0 * GIB,
            request_overhead: 1.0e-3,
            mds_ops_per_s: 10_000.0,
            seek_floor: 0.2,
        }
    }

    /// Aggregate streaming bandwidth of all OSTs, bytes/s.
    pub fn aggregate_bw(&self) -> f64 {
        self.ost_bw * self.n_osts as f64
    }

    /// Effective number of OSTs engaged by a file striped `stripe_count`
    /// wide.
    pub fn osts_used(&self, stripe_count: u32) -> u32 {
        stripe_count.clamp(1, self.n_osts)
    }

    /// Efficiency factor in `(0, 1]` for `writers` concurrent client streams
    /// hitting `osts` OSTs.
    ///
    /// One stream per OST is ideal. Over-subscription interleaves streams on
    /// the same OST, degrading towards `seek_floor` (disk-arm/NVMe-queue
    /// thrash); extreme under-subscription wastes targets but is handled by
    /// the caller via `osts_used`.
    pub fn contention_efficiency(&self, writers: u64, osts: u32) -> f64 {
        let w = writers.max(1) as f64;
        let o = osts.max(1) as f64;
        let per_ost = w / o;
        if per_ost <= 1.0 {
            1.0
        } else {
            // Smooth decay: 2 streams/OST ≈ 0.78, 8 ≈ 0.45, 32 ≈ 0.27.
            let eff = 1.0 / (1.0 + 0.28 * (per_ost - 1.0).powf(0.75));
            eff.max(self.seek_floor)
        }
    }

    /// Fraction of raw bandwidth retained by requests of `request_size`
    /// bytes against `stripe_unit`-byte stripes with client-side alignment
    /// boundary `alignment` (1 = unaligned).
    ///
    /// Requests that start on a stripe boundary and fill whole stripes are
    /// served at full speed. Unaligned requests straddle stripe boundaries,
    /// touching an extra OST and splitting the transfer.
    pub fn alignment_efficiency(&self, request_size: f64, stripe_unit: u64, alignment: u64) -> f64 {
        let unit = stripe_unit.max(1) as f64;
        let aligned = alignment > 1
            && (alignment.is_multiple_of(stripe_unit) || stripe_unit.is_multiple_of(alignment));
        // Probability a request crosses a stripe boundary.
        let crossing = if request_size >= unit {
            1.0
        } else {
            (request_size / unit).min(1.0)
        };
        if aligned {
            // Boundary-aligned requests split cleanly across stripes.
            1.0
        } else {
            // Each boundary crossing costs a split request and partial-stripe
            // traffic on two OSTs.
            1.0 - 0.35 * crossing
        }
    }

    /// Time to service `requests` file-system requests totalling `bytes`
    /// across `osts` OSTs with `streams` concurrent client streams, given a
    /// combined efficiency factor.
    pub fn transfer_time(
        &self,
        bytes: f64,
        requests: f64,
        osts: u32,
        streams: u64,
        efficiency: f64,
    ) -> f64 {
        let (stream_time, overhead_time) =
            self.transfer_breakdown(bytes, requests, osts, streams, efficiency);
        stream_time + overhead_time
    }

    /// [`LustreSpec::transfer_time`] split into its two cost components:
    /// `(stream_time, rpc_time)` — OST data streaming vs. per-request
    /// service overhead. Their sum is exactly the transfer time; the
    /// attribution profiler charges them to separate layers.
    pub fn transfer_breakdown(
        &self,
        bytes: f64,
        requests: f64,
        osts: u32,
        streams: u64,
        efficiency: f64,
    ) -> (f64, f64) {
        let osts = osts.max(1);
        let raw_bw = self.ost_bw * osts as f64;
        let eff = efficiency.clamp(0.01, 1.0) * self.contention_efficiency(streams, osts);
        let stream_time = bytes / (raw_bw * eff);
        // Request overheads pipeline across OSTs (each keeps a few requests
        // in flight) and concurrent client streams.
        let parallelism = (osts as f64 * 4.0).min(streams.max(1) as f64).max(1.0);
        let overhead_time = requests * self.request_overhead / parallelism;
        (stream_time, overhead_time)
    }

    /// Time for `ops` metadata operations at concurrency `clients`, scaled
    /// by a configuration-dependent cost factor.
    pub fn metadata_time(&self, ops: f64, clients: u64, cost_factor: f64) -> f64 {
        // The MDS serializes; many clients queuing adds a mild penalty.
        let queue_penalty = 1.0 + (clients.max(1) as f64).log2() * 0.08;
        ops * cost_factor * queue_penalty / self.mds_ops_per_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_bw_near_700_gbs() {
        let fs = LustreSpec::cori_scratch();
        let agg = fs.aggregate_bw() / GIB;
        assert!((650.0..750.0).contains(&agg), "aggregate {agg} GiB/s");
    }

    #[test]
    fn more_stripes_engage_more_osts_up_to_total() {
        let fs = LustreSpec::test_small();
        assert_eq!(fs.osts_used(1), 1);
        assert_eq!(fs.osts_used(4), 4);
        assert_eq!(fs.osts_used(100), fs.n_osts);
    }

    #[test]
    fn contention_degrades_with_oversubscription() {
        let fs = LustreSpec::test_small();
        let one = fs.contention_efficiency(8, 8);
        let two = fs.contention_efficiency(16, 8);
        let many = fs.contention_efficiency(256, 8);
        assert_eq!(one, 1.0);
        assert!(two < one);
        assert!(many < two);
        assert!(many >= fs.seek_floor);
    }

    #[test]
    fn aligned_requests_are_full_speed() {
        let fs = LustreSpec::test_small();
        let mib = 1024.0 * 1024.0;
        let aligned = fs.alignment_efficiency(8.0 * mib, 1 << 20, 1 << 20);
        let unaligned = fs.alignment_efficiency(8.0 * mib, 1 << 20, 1);
        assert_eq!(aligned, 1.0);
        assert!(unaligned < aligned);
    }

    #[test]
    fn small_requests_cross_boundaries_less_often() {
        let fs = LustreSpec::test_small();
        let tiny = fs.alignment_efficiency(4096.0, 1 << 20, 1);
        let large = fs.alignment_efficiency(4.0 * 1024.0 * 1024.0, 1 << 20, 1);
        assert!(tiny > large, "tiny requests rarely straddle stripes");
    }

    #[test]
    fn transfer_time_decreases_with_more_osts() {
        let fs = LustreSpec::test_small();
        let gb = 1e9;
        let t1 = fs.transfer_time(gb, 100.0, 1, 1, 1.0);
        let t4 = fs.transfer_time(gb, 100.0, 4, 4, 1.0);
        assert!(t4 < t1 / 2.0);
    }

    #[test]
    fn request_overhead_dominates_for_many_small_requests() {
        let fs = LustreSpec::test_small();
        let small_many = fs.transfer_time(1e6, 1e5, 4, 4, 1.0);
        let big_few = fs.transfer_time(1e6, 10.0, 4, 4, 1.0);
        assert!(small_many > 10.0 * big_few);
    }

    #[test]
    fn breakdown_components_sum_to_transfer_time() {
        let fs = LustreSpec::test_small();
        let (stream, rpc) = fs.transfer_breakdown(1e9, 5000.0, 4, 8, 0.7);
        assert!(stream > 0.0 && rpc > 0.0);
        assert_eq!(stream + rpc, fs.transfer_time(1e9, 5000.0, 4, 8, 0.7));
    }

    #[test]
    fn metadata_time_scales_with_cost_factor() {
        let fs = LustreSpec::test_small();
        let base = fs.metadata_time(1000.0, 64, 1.0);
        let cheap = fs.metadata_time(1000.0, 64, 0.5);
        assert!((cheap - base / 2.0).abs() < 1e-9);
    }
}
