//! Heteroscedastic cluster interference, deterministically seeded.
//!
//! The baseline [`crate::noise::NoiseModel`] draws i.i.d. per-run
//! multipliers — every configuration sees the same noise distribution. Real
//! shared clusters are worse: noisy neighbors camp on *specific OSTs* for
//! minutes at a time, and the fabric's load moves on its own schedule. A
//! configuration that stripes over 64 OSTs has 64 chances to hit a busy
//! target; a stripe-1 config has one. That makes the objective's variance
//! *config-dependent* (heteroscedastic), which is exactly what a fixed
//! repeat count of three cannot handle.
//!
//! This module reproduces that structure while staying bit-reproducible:
//! every quantity is a pure function of `(seed, virtual time, config
//! fingerprint)`.
//!
//! * The virtual timeline is quantized into slots of [`SLOT_S`] seconds.
//! * Per OST, busy *episodes* follow a discretized Markov on/off process:
//!   each slot may start an episode (probability `p_start`, hashed from
//!   `(seed, ost, slot)`), and an episode started at slot `k` holds the OST
//!   busy for a dwell of `1..=max_dwell_slots` slots (hashed from the same
//!   tuple). Overlapping episodes merge. A busy OST serves at
//!   `1/slowdown` speed, with the slowdown drawn per episode.
//! * Network contention is a per-slot multiplier on the client injection
//!   path, shared by every config (it is not OST-pinned).
//! * A run's exposure window is its *virtual* `[start, start + io_time)`
//!   interval; the start offset is hashed from `(fingerprint, run_idx)` so
//!   repeats of the same config land on different parts of the timeline.
//!
//! Striped transfers complete when the slowest stripe completes, so the
//! storage-path slowdown for a window is the slot-averaged **max** over the
//! engaged OSTs — wider stripes are exposed to more targets, raising both
//! the mean and the variance of the penalty.

use crate::noise::splitmix64;

/// Virtual-timeline quantum, in simulated seconds.
pub const SLOT_S: f64 = 4.0;

/// Named interference intensity presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoiseProfile {
    /// No interference episodes at all — baseline volatility only.
    Quiet,
    /// A normally loaded shared machine: occasional short episodes.
    Busy,
    /// A pathologically contended machine: frequent, long, severe episodes.
    Storm,
}

impl NoiseProfile {
    /// Parse a CLI-style profile name.
    pub fn parse(s: &str) -> Option<NoiseProfile> {
        match s {
            "quiet" => Some(NoiseProfile::Quiet),
            "busy" => Some(NoiseProfile::Busy),
            "storm" => Some(NoiseProfile::Storm),
            _ => None,
        }
    }

    /// The profile's canonical name (round-trips through [`Self::parse`]).
    pub fn as_str(&self) -> &'static str {
        match self {
            NoiseProfile::Quiet => "quiet",
            NoiseProfile::Busy => "busy",
            NoiseProfile::Storm => "storm",
        }
    }
}

/// Seeded, deterministic interference generator for one campaign.
#[derive(Debug, Clone, Copy)]
pub struct InterferenceModel {
    /// Seed mixed into every draw.
    pub seed: u64,
    /// Intensity preset the knobs below were derived from.
    pub profile: NoiseProfile,
    /// Per-slot probability that a new busy episode starts on an OST.
    pub p_start: f64,
    /// Maximum episode dwell, in slots (dwell is uniform on `1..=max`).
    pub max_dwell_slots: u32,
    /// Service slowdown of a busy OST is uniform on `[min, max]`.
    pub slowdown_min: f64,
    /// Upper bound of the per-episode slowdown draw.
    pub slowdown_max: f64,
    /// Peak network-contention multiplier is `1 + net_amplitude`.
    pub net_amplitude: f64,
    /// Span of the virtual timeline run start offsets are drawn from.
    pub horizon_slots: u32,
}

impl InterferenceModel {
    /// Build the model for a named profile.
    pub fn new(profile: NoiseProfile, seed: u64) -> Self {
        // Episodes are rare per OST but severe: a stripe-1 config mostly
        // sails through, while a 64-OST stripe almost always has at least
        // one hot target — which is exactly the diminishing-returns
        // penalty wide striping pays on a shared machine.
        let (p_start, max_dwell_slots, slowdown_min, slowdown_max, net_amplitude) = match profile {
            NoiseProfile::Quiet => (0.0, 1, 1.0, 1.0, 0.0),
            NoiseProfile::Busy => (0.004, 6, 1.4, 2.5, 0.2),
            NoiseProfile::Storm => (0.012, 10, 2.0, 5.0, 0.6),
        };
        InterferenceModel {
            seed,
            profile,
            p_start,
            max_dwell_slots,
            slowdown_min,
            slowdown_max,
            net_amplitude,
            horizon_slots: 4096,
        }
    }

    /// True when the model can never perturb a run.
    pub fn is_inert(&self) -> bool {
        self.p_start == 0.0 && self.net_amplitude == 0.0
    }

    /// Virtual start time for `(config fingerprint, run index)`: repeats of
    /// one config sample different stretches of the shared timeline.
    pub fn start_time(&self, config_fingerprint: u64, run_idx: u32) -> f64 {
        let h = splitmix64(
            self.seed
                .wrapping_mul(0xA24B_AED4_963E_E407)
                .wrapping_add(config_fingerprint)
                .wrapping_add((run_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        (h % self.horizon_slots as u64) as f64 * SLOT_S
    }

    fn unit(&self, stream: u64, a: u64, b: u64) -> f64 {
        let h = splitmix64(
            self.seed
                .wrapping_mul(stream)
                .wrapping_add(a.wrapping_mul(0xD6E8_FEB8_6659_FD93))
                .wrapping_add(b),
        );
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Does an episode start on `ost` at `slot`, and if so how long and how
    /// severe? Pure function of `(seed, ost, slot)`.
    fn episode_at(&self, ost: u32, slot: i64) -> Option<(u32, f64)> {
        if slot < 0 || self.p_start == 0.0 {
            return None;
        }
        if self.unit(0x8CB9_2BA7_2F3D_8DD7, ost as u64, slot as u64) >= self.p_start {
            return None;
        }
        let dwell_draw = self.unit(0xAEF1_7502_C3A8_8C59, ost as u64, slot as u64);
        let dwell = 1 + (dwell_draw * self.max_dwell_slots as f64) as u32;
        let sev_draw = self.unit(0x3C79_AC49_2BA7_B653, ost as u64, slot as u64);
        let slowdown = self.slowdown_min + sev_draw * (self.slowdown_max - self.slowdown_min);
        Some((dwell.min(self.max_dwell_slots), slowdown))
    }

    /// Slowdown factor of `ost` during `slot` (1.0 when idle): the worst
    /// episode covering the slot, looking back at most `max_dwell_slots`.
    fn ost_slowdown_at(&self, ost: u32, slot: i64) -> f64 {
        let mut worst = 1.0f64;
        for back in 0..self.max_dwell_slots as i64 {
            if let Some((dwell, slowdown)) = self.episode_at(ost, slot - back) {
                if dwell as i64 > back {
                    worst = worst.max(slowdown);
                }
            }
        }
        worst
    }

    /// Storage-path slowdown over the window `[t0, t0 + dur)` for a
    /// transfer striped over OSTs `first_ost..first_ost + n_osts`: the
    /// slot-averaged max across the engaged OSTs (the slowest stripe gates
    /// the transfer). Returns 1.0 for an empty window.
    pub fn storage_slowdown(&self, t0: f64, dur: f64, first_ost: u32, n_osts: u32) -> f64 {
        if self.p_start == 0.0 || dur <= 0.0 || n_osts == 0 {
            return 1.0;
        }
        let lo = (t0 / SLOT_S).floor() as i64;
        let hi = ((t0 + dur) / SLOT_S).ceil() as i64;
        let mut acc = 0.0;
        let mut slots = 0u32;
        for slot in lo..hi.max(lo + 1) {
            let mut worst = 1.0f64;
            for i in 0..n_osts {
                worst = worst.max(self.ost_slowdown_at(first_ost.wrapping_add(i), slot));
            }
            acc += worst;
            slots += 1;
        }
        acc / slots as f64
    }

    /// Network-contention multiplier over the window `[t0, t0 + dur)`:
    /// slot-averaged, shared by every configuration.
    pub fn network_contention(&self, t0: f64, dur: f64) -> f64 {
        if self.net_amplitude == 0.0 || dur <= 0.0 {
            return 1.0;
        }
        let lo = (t0 / SLOT_S).floor() as i64;
        let hi = ((t0 + dur) / SLOT_S).ceil() as i64;
        let mut acc = 0.0;
        let mut slots = 0u32;
        for slot in lo..hi.max(lo + 1) {
            // Squaring the uniform draw keeps the fabric mostly calm with
            // occasional sharp spikes, rather than uniformly elevated.
            let u = self.unit(0x94D0_49BB_1331_11EB, 0, slot.max(0) as u64);
            acc += 1.0 + self.net_amplitude * u * u;
            slots += 1;
        }
        acc / slots as f64
    }

    /// First OST of the stripe layout for a config fingerprint: layouts are
    /// pinned per config so repeats of one config keep hitting the same
    /// targets while different configs land elsewhere.
    pub fn first_ost(&self, config_fingerprint: u64, total_osts: u32) -> u32 {
        if total_osts == 0 {
            return 0;
        }
        (splitmix64(config_fingerprint ^ self.seed.wrapping_mul(0xFF51_AFD7_ED55_8CCD))
            % total_osts as u64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_names_round_trip() {
        for p in [NoiseProfile::Quiet, NoiseProfile::Busy, NoiseProfile::Storm] {
            assert_eq!(NoiseProfile::parse(p.as_str()), Some(p));
        }
        assert_eq!(NoiseProfile::parse("hurricane"), None);
    }

    #[test]
    fn quiet_profile_is_inert() {
        let m = InterferenceModel::new(NoiseProfile::Quiet, 9);
        assert!(m.is_inert());
        assert_eq!(m.storage_slowdown(0.0, 100.0, 0, 64), 1.0);
        assert_eq!(m.network_contention(0.0, 100.0), 1.0);
    }

    #[test]
    fn deterministic_per_inputs() {
        let m = InterferenceModel::new(NoiseProfile::Storm, 5);
        assert_eq!(
            m.storage_slowdown(37.0, 12.0, 3, 16),
            m.storage_slowdown(37.0, 12.0, 3, 16)
        );
        assert_eq!(
            m.network_contention(80.0, 9.0),
            m.network_contention(80.0, 9.0)
        );
        assert_eq!(m.start_time(1234, 2), m.start_time(1234, 2));
        assert_ne!(m.start_time(1234, 2), m.start_time(1234, 3));
    }

    #[test]
    fn seeds_decorrelate_timelines() {
        let a = InterferenceModel::new(NoiseProfile::Storm, 1);
        let b = InterferenceModel::new(NoiseProfile::Storm, 2);
        let differs = (0..64).any(|k| {
            a.storage_slowdown(k as f64 * SLOT_S, SLOT_S, 0, 8)
                != b.storage_slowdown(k as f64 * SLOT_S, SLOT_S, 0, 8)
        });
        assert!(differs, "different seeds must produce different timelines");
    }

    #[test]
    fn episodes_persist_across_adjacent_slots() {
        // Markov dwell: a busy slot's episode should frequently still be
        // running in the next slot (dwell > 1 slot most of the time).
        let m = InterferenceModel::new(NoiseProfile::Storm, 11);
        let mut busy = 0u32;
        let mut carried = 0u32;
        for slot in 0..4000i64 {
            if m.ost_slowdown_at(0, slot) > 1.0 {
                busy += 1;
                if m.ost_slowdown_at(0, slot + 1) > 1.0 {
                    carried += 1;
                }
            }
        }
        assert!(busy > 100, "storm profile should keep OST 0 busy often");
        assert!(
            carried as f64 / busy as f64 > 0.6,
            "episodes should dwell: {carried}/{busy}"
        );
    }

    #[test]
    fn wider_stripes_see_more_exposure() {
        // Heteroscedasticity: averaging over many windows, a 64-OST layout
        // must suffer a larger mean slowdown than a 1-OST layout, and its
        // window-to-window variance must be driven by the busy/idle mix.
        let m = InterferenceModel::new(NoiseProfile::Storm, 3);
        let windows = 400;
        let mean = |n: u32| -> f64 {
            (0..windows)
                .map(|k| m.storage_slowdown(k as f64 * 16.0 * SLOT_S, 2.0 * SLOT_S, 0, n))
                .sum::<f64>()
                / windows as f64
        };
        let narrow = mean(1);
        let wide = mean(64);
        assert!(
            wide > narrow * 1.15,
            "64-OST exposure {wide:.3} should exceed 1-OST {narrow:.3}"
        );
    }

    #[test]
    fn network_contention_bounded_and_varying() {
        let m = InterferenceModel::new(NoiseProfile::Busy, 17);
        let draws: Vec<f64> = (0..200)
            .map(|k| m.network_contention(k as f64 * 8.0 * SLOT_S, SLOT_S))
            .collect();
        assert!(draws
            .iter()
            .all(|&d| (1.0..=1.0 + m.net_amplitude).contains(&d)));
        let spread = draws.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - draws.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.01, "contention must move over the timeline");
    }
}
