//! Compute-cluster model: nodes, processes and network capacity.

use serde::{Deserialize, Serialize};

/// Static description of the compute side of the simulated machine.
///
/// The presets mirror the paper's testbed: Cori Haswell nodes (16-core
/// 2.3 GHz Xeon, 128 GB DDR4) with either 4 nodes / 128 processes
/// (per-component evaluations) or 500 nodes / 1600 processes (end-to-end).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of compute nodes in the allocation.
    pub nodes: u32,
    /// Total MPI processes across the allocation.
    pub procs: u32,
    /// Per-node injection bandwidth into the interconnect, bytes/s.
    pub node_network_bw: f64,
    /// One-way small-message network latency, seconds.
    pub network_latency: f64,
    /// Aggregate bisection bandwidth of the interconnect, bytes/s.
    pub bisection_bw: f64,
    /// Per-node memory bandwidth available for I/O staging, bytes/s.
    pub node_mem_bw: f64,
}

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

impl ClusterSpec {
    /// 4 Haswell nodes / 128 processes — the per-component test scale
    /// used for Figures 2, 8, 9 and 10.
    pub fn cori_4node() -> Self {
        ClusterSpec {
            nodes: 4,
            procs: 128,
            node_network_bw: 1.05 * GIB,
            network_latency: 2.0e-6,
            bisection_bw: 4.0 * 1.05 * GIB,
            node_mem_bw: 60.0 * GIB,
        }
    }

    /// 500 Haswell nodes / 1600 processes — the end-to-end scale used for
    /// the BD-CATS pipeline analysis (Figures 11 and 12).
    pub fn cori_500node() -> Self {
        ClusterSpec {
            nodes: 500,
            procs: 1600,
            node_network_bw: 1.05 * GIB,
            network_latency: 2.0e-6,
            bisection_bw: 262.0 * GIB,
            node_mem_bw: 60.0 * GIB,
        }
    }

    /// A Cori-Haswell-like allocation of arbitrary size (32 processes per
    /// node, Aries-class per-node injection bandwidth).
    pub fn cori_like(nodes: u32) -> Self {
        ClusterSpec {
            nodes: nodes.max(1),
            procs: nodes.max(1) * 32,
            node_network_bw: 1.05 * GIB,
            network_latency: 2.0e-6,
            bisection_bw: (nodes.max(1) as f64 * 1.05 * GIB).min(262.0 * GIB),
            node_mem_bw: 60.0 * GIB,
        }
    }

    /// A tiny single-node configuration for fast unit tests.
    pub fn test_tiny() -> Self {
        ClusterSpec {
            nodes: 1,
            procs: 8,
            node_network_bw: 1.0 * GIB,
            network_latency: 2.0e-6,
            bisection_bw: 1.0 * GIB,
            node_mem_bw: 40.0 * GIB,
        }
    }

    /// Processes per node (rounded up).
    pub fn procs_per_node(&self) -> u32 {
        self.procs.div_ceil(self.nodes)
    }

    /// Aggregate injection bandwidth of the whole allocation, bytes/s.
    pub fn aggregate_network_bw(&self) -> f64 {
        self.node_network_bw * self.nodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_scales() {
        let small = ClusterSpec::cori_4node();
        assert_eq!(small.nodes, 4);
        assert_eq!(small.procs, 128);
        assert_eq!(small.procs_per_node(), 32);

        let big = ClusterSpec::cori_500node();
        assert_eq!(big.nodes, 500);
        assert_eq!(big.procs, 1600);
        assert_eq!(big.procs_per_node(), 4);
    }

    #[test]
    fn aggregate_bw_scales_with_nodes() {
        let small = ClusterSpec::cori_4node();
        let big = ClusterSpec::cori_500node();
        assert!(big.aggregate_network_bw() > small.aggregate_network_bw() * 100.0);
    }

    #[test]
    fn procs_per_node_rounds_up() {
        let mut c = ClusterSpec::test_tiny();
        c.nodes = 3;
        c.procs = 10;
        assert_eq!(c.procs_per_node(), 4);
    }
}
