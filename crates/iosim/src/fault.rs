//! Seeded, deterministic fault injection.
//!
//! Real tuning campaigns run on a shared, flaky I/O stack: trial runs die
//! at allocation boundaries, stragglers blow past their expected runtime,
//! Lustre OSTs drop out of the layout, and instrumentation occasionally
//! emits garbage counters. A [`FaultPlan`] reproduces all four failure
//! modes *deterministically*: every fault decision is a pure function of
//! `(plan seed, configuration fingerprint, run index, attempt)`, so a
//! chaos campaign is exactly as replayable as a clean one — same seed,
//! same faults, same outcome.
//!
//! The plan only takes effect on the simulator's fallible entry points
//! ([`crate::Simulator::try_run_profiled`] and friends); the infallible
//! `run*` methods ignore it, which keeps every pre-existing caller
//! bitwise-identical.

use crate::noise::splitmix64;
use std::fmt;

/// The failure modes the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The run dies outright (node failure, allocation kill, MPI abort).
    /// Surfaced as an `Err` from the fallible run path.
    Transient,
    /// The run completes but a straggler inflates its I/O and metadata
    /// time by the plan's slowdown factor.
    Straggler,
    /// An OST flap: part of the Lustre layout drops out mid-run, so the
    /// transfer is serviced by fewer OSTs than the striping requested.
    OstFlap,
    /// The run "completes" but its report is corrupted: timing counters
    /// come back as NaN, the way a torn Darshan log reads.
    Corrupt,
}

impl FaultKind {
    /// Stable lowercase label, used for trace events and metric labels.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::Straggler => "straggler",
            FaultKind::OstFlap => "ost_flap",
            FaultKind::Corrupt => "corrupt",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One fault that was actually injected into a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Which failure mode fired.
    pub kind: FaultKind,
    /// The repeat index (0-based) of the affected run.
    pub run_idx: u32,
    /// The evaluation attempt the run belonged to (0 = first try).
    pub attempt: u32,
}

/// Error returned when a transient fault kills a simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimFault {
    /// The fault that terminated the run.
    pub fault: InjectedFault,
}

impl fmt::Display for SimFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulated run killed by {} fault (run {}, attempt {})",
            self.fault.kind, self.fault.run_idx, self.fault.attempt
        )
    }
}

impl std::error::Error for SimFault {}

/// A seeded fault-injection schedule attached to a [`crate::Simulator`].
///
/// Rates are independent per-run probabilities in `[0, 1]`; at most one
/// fault fires per run, chosen by a single uniform draw against the
/// cumulative rate thresholds (transient, then straggler, then OST flap,
/// then corrupt). The sum of the rates must therefore stay ≤ 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Base seed mixed into every fault draw.
    pub seed: u64,
    /// Probability a run dies outright.
    pub transient_rate: f64,
    /// Probability a run straggles.
    pub straggler_rate: f64,
    /// I/O-time multiplier applied to straggler runs (> 1).
    pub straggler_slowdown: f64,
    /// Probability of an OST flap during a run.
    pub ost_flap_rate: f64,
    /// How many OSTs drop out of the layout during a flap.
    pub ost_flap_loss: u32,
    /// Probability the run's report comes back NaN-corrupted.
    pub corrupt_rate: f64,
}

impl FaultPlan {
    /// A plan that never fires — attached but inert, for wiring tests.
    pub fn disabled(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_rate: 0.0,
            straggler_rate: 0.0,
            straggler_slowdown: 4.0,
            ost_flap_rate: 0.0,
            ost_flap_loss: 8,
            corrupt_rate: 0.0,
        }
    }

    /// A mixed chaos plan scaled by `rate`: transient failures at `rate`,
    /// stragglers at `rate/2` (4x slowdown), OST flaps at `rate/2` and
    /// corrupted reports at `rate/4`. `rate` = 0.1 reproduces the
    /// acceptance scenario of a ≥10% transient failure rate.
    pub fn chaos(seed: u64, rate: f64) -> Self {
        let rate = rate.clamp(0.0, 0.5);
        FaultPlan {
            seed,
            transient_rate: rate,
            straggler_rate: rate / 2.0,
            straggler_slowdown: 4.0,
            ost_flap_rate: rate / 2.0,
            ost_flap_loss: 8,
            corrupt_rate: rate / 4.0,
        }
    }

    /// True when any failure mode has a nonzero rate.
    pub fn is_active(&self) -> bool {
        self.transient_rate > 0.0
            || self.straggler_rate > 0.0
            || self.ost_flap_rate > 0.0
            || self.corrupt_rate > 0.0
    }

    /// The fault (if any) that fires for this `(config, run, attempt)`
    /// triple. Pure: identical inputs always yield identical faults.
    pub fn draw(&self, config_fingerprint: u64, run_idx: u32, attempt: u32) -> Option<FaultKind> {
        if !self.is_active() {
            return None;
        }
        let mut h = splitmix64(self.seed ^ 0xFA_17_1D_EA_FA_17_1D_EAu64);
        h = splitmix64(h ^ config_fingerprint);
        h = splitmix64(h ^ (((run_idx as u64) << 32) | attempt as u64));
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let mut threshold = self.transient_rate;
        if u < threshold {
            return Some(FaultKind::Transient);
        }
        threshold += self.straggler_rate;
        if u < threshold {
            return Some(FaultKind::Straggler);
        }
        threshold += self.ost_flap_rate;
        if u < threshold {
            return Some(FaultKind::OstFlap);
        }
        threshold += self.corrupt_rate;
        if u < threshold {
            return Some(FaultKind::Corrupt);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic() {
        let p = FaultPlan::chaos(7, 0.2);
        for run in 0..16 {
            for attempt in 0..4 {
                assert_eq!(p.draw(99, run, attempt), p.draw(99, run, attempt));
            }
        }
    }

    #[test]
    fn disabled_plan_never_fires() {
        let p = FaultPlan::disabled(42);
        assert!(!p.is_active());
        for run in 0..100 {
            assert_eq!(p.draw(1, run, 0), None);
        }
    }

    #[test]
    fn rates_approximate_observed_frequencies() {
        let p = FaultPlan {
            seed: 3,
            transient_rate: 0.25,
            straggler_rate: 0.0,
            straggler_slowdown: 4.0,
            ost_flap_rate: 0.0,
            ost_flap_loss: 8,
            corrupt_rate: 0.0,
        };
        let n = 10_000u64;
        let hits = (0..n)
            .filter(|&i| p.draw(splitmix64(i), 0, 0) == Some(FaultKind::Transient))
            .count() as f64;
        let freq = hits / n as f64;
        assert!((freq - 0.25).abs() < 0.02, "observed {freq}");
    }

    #[test]
    fn attempt_changes_the_draw() {
        // Retries must see fresh draws or a transient fault would recur
        // deterministically forever.
        let p = FaultPlan::chaos(11, 0.3);
        let distinct: std::collections::HashSet<_> = (0..64)
            .map(|attempt| p.draw(5, 0, attempt).map(|k| k.label()))
            .collect();
        assert!(distinct.len() > 1, "attempts all drew the same outcome");
    }

    #[test]
    fn chaos_plan_mixes_all_kinds() {
        let p = FaultPlan::chaos(13, 0.4);
        let mut seen = std::collections::HashSet::new();
        for i in 0..5000u64 {
            if let Some(k) = p.draw(splitmix64(i), 0, 0) {
                seen.insert(k.label());
            }
        }
        assert_eq!(seen.len(), 4, "saw only {seen:?}");
    }
}
