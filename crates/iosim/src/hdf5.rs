//! HDF5-like high-level library layer.
//!
//! This layer sits between the application's dataset accesses and the
//! MPI-IO middleware. It reshapes the request stream according to the HDF5
//! tuning parameters:
//!
//! * **chunk cache** — re-touched chunked data is absorbed in memory when
//!   the cache covers the reuse working set; otherwise partial-chunk
//!   read-modify-write traffic amplifies bytes moved.
//! * **sieve buffer** — small raw-data *reads* are coalesced into
//!   sieve-buffer-sized requests.
//! * **alignment** — object allocation is rounded to the alignment
//!   boundary, which lets the PFS serve requests at full stripe speed (at
//!   the price of a little file bloat, which we ignore as the paper does).
//! * **metadata parameters** — `meta_block_size` aggregates small metadata
//!   allocations, the metadata-cache preset scales per-op cost, and the
//!   collective-metadata flags move metadata traffic from per-process to
//!   once-per-job.

use crate::request::{IoKind, IoPhase};
use tunio_params::StackConfig;

/// The request stream an I/O phase presents to the middleware after the
/// library layer has transformed it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LibraryTraffic {
    /// Bytes each process actually moves to/from the middleware.
    pub per_proc_bytes: f64,
    /// Library-level calls that become middleware requests, per process.
    pub ops_per_proc: f64,
    /// Multiplicative write-amplification already applied to
    /// `per_proc_bytes` (1.0 = none), reported for diagnostics.
    pub amplification: f64,
}

impl LibraryTraffic {
    /// Fraction of the downstream transfer attributable to the library
    /// layer's own read-modify-write amplification: `1 - 1/amplification`.
    /// Zero when the chunk cache covers the working set — the library is
    /// then a pass-through and charges no self time.
    pub fn amplified_share(&self) -> f64 {
        if self.amplification > 1.0 {
            1.0 - 1.0 / self.amplification
        } else {
            0.0
        }
    }
}

/// Metadata workload after library-layer transformation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetadataTraffic {
    /// Total metadata operations presented to the MDS (across all procs).
    pub total_ops: f64,
    /// Number of clients concurrently hitting the MDS.
    pub clients: u64,
    /// Per-op cost multiplier from cache/blocking configuration.
    pub cost_factor: f64,
}

/// Transform an I/O phase's raw-data traffic through the library layer.
pub fn raw_data_traffic(phase: &IoPhase, cfg: &StackConfig) -> LibraryTraffic {
    let mut bytes = phase.per_proc_bytes as f64;
    let mut ops = phase.ops_per_proc.max(1) as f64;

    // Chunk-cache effect: a cache that covers the per-process reuse working
    // set absorbs re-accesses; an undersized cache forces partial-chunk
    // read-modify-write cycles that amplify traffic.
    let mut amplification = 1.0;
    if phase.chunk_reuse_bytes > 0 {
        let coverage = cfg.chunk_cache as f64 / phase.chunk_reuse_bytes as f64;
        if coverage >= 1.0 {
            amplification = 1.0;
        } else {
            // Uncovered fraction of the working set is evicted and re-read /
            // rewritten; worst case ~1.6x traffic.
            let uncovered = 1.0 - coverage.clamp(0.0, 1.0);
            amplification = 1.0 + 0.6 * uncovered;
        }
        bytes *= amplification;
        ops *= amplification;
    }

    // Sieve buffer: coalesces small *read* requests up to the buffer size.
    if phase.kind == IoKind::Read {
        let avg = bytes / ops;
        if avg < cfg.sieve_buf_size as f64 {
            let coalesce = (cfg.sieve_buf_size as f64 / avg).clamp(1.0, 64.0);
            ops = (ops / coalesce).max(1.0);
        }
    }

    LibraryTraffic {
        per_proc_bytes: bytes,
        ops_per_proc: ops,
        amplification,
    }
}

/// Transform a phase's metadata operations through the library layer.
pub fn metadata_traffic(phase: &IoPhase, cfg: &StackConfig, procs: u32) -> MetadataTraffic {
    let per_proc_ops = phase.meta_ops as f64;

    // meta_block_size aggregates small metadata allocations: between the
    // 2 KiB floor and 1 MiB, each doubling shaves ~7% of ops.
    let block_kib = (cfg.meta_block_size as f64 / 2048.0).max(1.0);
    let block_factor = 1.0 / (1.0 + 0.07 * block_kib.log2());

    let collective = match phase.kind {
        IoKind::Read => cfg.coll_meta_ops,
        IoKind::Write => cfg.coll_metadata_write,
    };
    let (total_ops, clients) = if collective {
        // Rank 0 performs the operation and broadcasts: one client, one set
        // of ops, plus a small broadcast overhead folded into cost_factor.
        (per_proc_ops * block_factor, 1)
    } else {
        (per_proc_ops * block_factor * procs as f64, procs as u64)
    };

    let mut cost_factor = cfg.mdc_config.metadata_cost_factor();
    if collective {
        // Broadcast/synchronization overhead of collective metadata.
        cost_factor *= 1.25;
    }

    MetadataTraffic {
        total_ops,
        clients,
        cost_factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::AccessPattern;
    use tunio_params::{ParameterSpace, StackConfig};

    fn cfg() -> StackConfig {
        StackConfig::defaults(&ParameterSpace::tunio_default())
    }

    fn phase(kind: IoKind) -> IoPhase {
        IoPhase {
            dataset: "d".into(),
            kind,
            per_proc_bytes: 64 * 1024 * 1024,
            ops_per_proc: 1024,
            pattern: AccessPattern::Contiguous,
            meta_ops: 10,
            collective_capable: true,
            chunk_reuse_bytes: 0,
            pre_striped: 0,
        }
    }

    #[test]
    fn no_reuse_means_no_amplification() {
        let t = raw_data_traffic(&phase(IoKind::Write), &cfg());
        assert_eq!(t.amplification, 1.0);
        assert_eq!(t.per_proc_bytes, 64.0 * 1024.0 * 1024.0);
    }

    #[test]
    fn undersized_chunk_cache_amplifies_traffic() {
        let mut p = phase(IoKind::Write);
        p.chunk_reuse_bytes = 512 * 1024 * 1024; // far above the 1 MiB default
        let small = raw_data_traffic(&p, &cfg());
        assert!(small.amplification > 1.3);

        let mut big_cfg = cfg();
        big_cfg.chunk_cache = 1024 * 1024 * 1024;
        let covered = raw_data_traffic(&p, &big_cfg);
        assert_eq!(covered.amplification, 1.0);
    }

    #[test]
    fn amplified_share_matches_amplification() {
        let passthrough = LibraryTraffic {
            per_proc_bytes: 1.0,
            ops_per_proc: 1.0,
            amplification: 1.0,
        };
        assert_eq!(passthrough.amplified_share(), 0.0);
        let amplified = LibraryTraffic {
            amplification: 1.6,
            ..passthrough
        };
        // 1.6x traffic → 37.5% of the downstream bytes are the library's
        // own doing.
        assert!((amplified.amplified_share() - 0.375).abs() < 1e-12);
    }

    #[test]
    fn sieve_buffer_coalesces_small_reads_only() {
        let mut p = phase(IoKind::Read);
        p.per_proc_bytes = 4 * 1024 * 1024;
        p.ops_per_proc = 1024; // 4 KiB reads
        let mut c = cfg();
        c.sieve_buf_size = 1024 * 1024;
        let reads = raw_data_traffic(&p, &c);
        assert!(reads.ops_per_proc < 64.0, "ops {}", reads.ops_per_proc);

        let mut w = p.clone();
        w.kind = IoKind::Write;
        let writes = raw_data_traffic(&w, &c);
        assert_eq!(writes.ops_per_proc, 1024.0, "writes are not sieved");
    }

    #[test]
    fn collective_metadata_collapses_clients() {
        let p = phase(IoKind::Write);
        let mut c = cfg();
        let independent = metadata_traffic(&p, &c, 128);
        assert_eq!(independent.clients, 128);
        c.coll_metadata_write = true;
        let collective = metadata_traffic(&p, &c, 128);
        assert_eq!(collective.clients, 1);
        assert!(collective.total_ops < independent.total_ops / 64.0);
        assert!(collective.cost_factor > independent.cost_factor);
    }

    #[test]
    fn larger_meta_blocks_reduce_ops() {
        let p = phase(IoKind::Read);
        let mut c = cfg();
        c.meta_block_size = 2048;
        let small = metadata_traffic(&p, &c, 64);
        c.meta_block_size = 1024 * 1024;
        let large = metadata_traffic(&p, &c, 64);
        assert!(large.total_ops < small.total_ops);
    }
}
