//! Run reports: what a simulated execution observed.
//!
//! A [`RunReport`] plays the role Darshan plays in the paper's pipeline —
//! it records bytes moved, operation counts and timings, from which the
//! tuning objective `perf = (1-α)·BW_r + α·BW_w` is derived (§III-C).

use serde::{Deserialize, Serialize};

/// Observables from one simulated application run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// Total simulated wall time, seconds (compute + I/O + metadata).
    pub elapsed_s: f64,
    /// Time spent in raw-data I/O, seconds.
    pub io_time_s: f64,
    /// Time spent in metadata operations, seconds.
    pub meta_time_s: f64,
    /// Time spent in compute phases, seconds.
    pub compute_time_s: f64,
    /// Total bytes written across all processes.
    pub bytes_written: f64,
    /// Total bytes read across all processes.
    pub bytes_read: f64,
    /// Library-level write calls across all processes.
    pub write_ops: f64,
    /// Library-level read calls across all processes.
    pub read_ops: f64,
}

impl RunReport {
    /// Aggregate write bandwidth in bytes/s over time spent doing I/O
    /// (0 when the run wrote nothing).
    pub fn write_bw(&self) -> f64 {
        let t = self.write_io_time();
        if t > 0.0 {
            self.bytes_written / t
        } else {
            0.0
        }
    }

    /// Aggregate read bandwidth in bytes/s (0 when the run read nothing).
    pub fn read_bw(&self) -> f64 {
        let t = self.read_io_time();
        if t > 0.0 {
            self.bytes_read / t
        } else {
            0.0
        }
    }

    /// Fraction of total data volume that was written — the α of the
    /// paper's objective.
    pub fn alpha(&self) -> f64 {
        let total = self.bytes_written + self.bytes_read;
        if total > 0.0 {
            self.bytes_written / total
        } else {
            0.0
        }
    }

    /// The paper's objective: `perf = (1-α)·BW_r + α·BW_w`, in bytes/s.
    pub fn perf(&self) -> f64 {
        let a = self.alpha();
        (1.0 - a) * self.read_bw() + a * self.write_bw()
    }

    /// I/O time attributed to writes (proportional to write share of bytes).
    fn write_io_time(&self) -> f64 {
        self.io_time_s * self.alpha()
    }

    /// I/O time attributed to reads.
    fn read_io_time(&self) -> f64 {
        self.io_time_s * (1.0 - self.alpha())
    }

    /// True when every counter is finite and non-negative — the validity
    /// gate the evaluation engine applies before trusting a report. A
    /// corrupted run (torn log, NaN timings) fails this check and is
    /// treated as a failed attempt rather than a usable measurement.
    pub fn is_sane(&self) -> bool {
        [
            self.elapsed_s,
            self.io_time_s,
            self.meta_time_s,
            self.compute_time_s,
            self.bytes_written,
            self.bytes_read,
            self.write_ops,
            self.read_ops,
        ]
        .iter()
        .all(|v| v.is_finite() && *v >= 0.0)
    }

    /// Merge per-phase contributions into `self`.
    pub fn absorb(&mut self, other: &RunReport) {
        self.elapsed_s += other.elapsed_s;
        self.io_time_s += other.io_time_s;
        self.meta_time_s += other.meta_time_s;
        self.compute_time_s += other.compute_time_s;
        self.bytes_written += other.bytes_written;
        self.bytes_read += other.bytes_read;
        self.write_ops += other.write_ops;
        self.read_ops += other.read_ops;
    }

    /// Average several runs of the same workload (the paper averages three
    /// runs per configuration to mitigate volatility).
    ///
    /// Semantics: **time-weighted pooling**, not a mean of derived rates.
    /// Every raw counter (times, bytes, ops) is summed across runs and
    /// divided by the run count, so derived quantities like
    /// [`RunReport::perf`] are computed from pooled totals:
    /// `pooled_bytes / pooled_time`. For runs of unequal `elapsed_s` this
    /// deliberately differs from averaging each run's bandwidth — a slow
    /// run carries proportionally more weight, exactly as it would if the
    /// runs were one long execution. This matches the paper's methodology
    /// (bandwidth observed over repeated runs) and keeps `average` linear
    /// in its inputs, which [`crate::Profile::average`] relies on to stay
    /// consistent with the report it accompanies.
    ///
    /// An empty slice returns the zero report.
    pub fn average(reports: &[RunReport]) -> RunReport {
        let n = reports.len().max(1) as f64;
        let mut acc = RunReport::default();
        for r in reports {
            acc.absorb(r);
        }
        RunReport {
            elapsed_s: acc.elapsed_s / n,
            io_time_s: acc.io_time_s / n,
            meta_time_s: acc.meta_time_s / n,
            compute_time_s: acc.compute_time_s / n,
            bytes_written: acc.bytes_written / n,
            bytes_read: acc.bytes_read / n,
            write_ops: acc.write_ops / n,
            read_ops: acc.read_ops / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_only() -> RunReport {
        RunReport {
            elapsed_s: 10.0,
            io_time_s: 5.0,
            bytes_written: 50e9,
            write_ops: 100.0,
            ..Default::default()
        }
    }

    #[test]
    fn write_only_perf_equals_write_bw() {
        let r = write_only();
        assert_eq!(r.alpha(), 1.0);
        assert!((r.perf() - 10e9).abs() < 1.0);
    }

    #[test]
    fn empty_report_is_zero_perf() {
        let r = RunReport::default();
        assert_eq!(r.perf(), 0.0);
        assert_eq!(r.alpha(), 0.0);
    }

    #[test]
    fn mixed_perf_weights_by_alpha() {
        let r = RunReport {
            elapsed_s: 10.0,
            io_time_s: 4.0,
            bytes_written: 30e9,
            bytes_read: 10e9,
            write_ops: 10.0,
            read_ops: 10.0,
            ..Default::default()
        };
        // α = 0.75; write time = 3 s → BW_w = 10e9; read time = 1 s → BW_r = 10e9.
        assert!((r.alpha() - 0.75).abs() < 1e-12);
        assert!((r.perf() - 10e9).abs() < 1.0);
    }

    #[test]
    fn average_of_identical_runs_is_identity() {
        let r = write_only();
        let avg = RunReport::average(&[r, r, r]);
        assert!((avg.elapsed_s - r.elapsed_s).abs() < 1e-12);
        assert!((avg.perf() - r.perf()).abs() < 1e-3);
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = write_only();
        a.absorb(&write_only());
        assert_eq!(a.bytes_written, 100e9);
        assert_eq!(a.elapsed_s, 20.0);
    }

    #[test]
    fn average_of_unequal_runs_pools_time_weighted() {
        // Same bytes, one run 4x slower: pooled bandwidth is
        // 100e9 / 25 = 4e9, NOT the mean of per-run bandwidths
        // (10e9 + 2.5e9) / 2 = 6.25e9. The slow run dominates, as it
        // would in one long execution.
        let fast = write_only(); // 50e9 bytes in 5 s of I/O
        let slow = RunReport {
            elapsed_s: 40.0,
            io_time_s: 20.0,
            ..write_only()
        };
        let avg = RunReport::average(&[fast, slow]);
        assert!((avg.io_time_s - 12.5).abs() < 1e-12);
        assert!((avg.bytes_written - 50e9).abs() < 1.0);
        assert!((avg.write_bw() - 4e9).abs() < 1.0);
        let mean_of_bw = (fast.write_bw() + slow.write_bw()) / 2.0;
        assert!((mean_of_bw - 6.25e9).abs() < 1.0, "sanity: rates differ");
        assert!((avg.write_bw() - mean_of_bw).abs() > 1e9);
    }

    #[test]
    fn average_of_empty_slice_is_zero_report() {
        let avg = RunReport::average(&[]);
        assert_eq!(avg, RunReport::default());
        assert_eq!(avg.perf(), 0.0);
    }
}
