//! Per-layer cost attribution (Darshan-style "who spent the time").
//!
//! A [`RunReport`](crate::RunReport) reduces a simulated run to one set of
//! totals; a [`Profile`] keeps the per-layer breakdown: how much *self time*
//! each layer of the simulated stack contributed, plus the bytes and
//! operation counts it handled. Self time is exclusive — the seconds a
//! request spent being serviced *by that layer's own mechanism* (shuffling
//! on the network for MPI-IO, streaming from OSTs for Lustre data, paying
//! per-RPC overhead for Lustre RPCs, …), never including the layers below.
//! The self times of all layers therefore sum to the run's total simulated
//! time, and the I/O-layer subset sums to `RunReport::io_time_s`.
//!
//! Profiles are phase-aware: [`Profile::absorb`] merges per-phase
//! contributions exactly like `RunReport::absorb`, and [`Profile::average`]
//! pools repeated runs with the same time-weighted semantics as
//! `RunReport::average`, so attribution survives multi-phase workloads and
//! the paper's 3-run averaging.

use crate::report::RunReport;
use serde_json::Value;

/// The layers of the simulated stack that can be charged time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// Application compute phases (no I/O involvement).
    Compute,
    /// HDF5-like library: chunk-cache read-modify-write amplification.
    Hdf5,
    /// MPI-IO middleware: two-phase collective shuffle.
    Mpiio,
    /// Client network injection floor (irregular streams waste the wire).
    Network,
    /// Lustre OST data streaming.
    LustreData,
    /// Lustre per-request (RPC) service overhead.
    LustreRpc,
    /// Metadata server operations.
    Mds,
    /// Burst-buffer ingest (absorbed checkpoint writes).
    Burst,
    /// Cross-tenant interference: noisy-neighbor OST episodes and fabric
    /// contention (zero unless an interference model is attached).
    Interference,
}

impl Layer {
    /// All layers, in canonical (serialization and display) order.
    pub const ALL: [Layer; 9] = [
        Layer::Compute,
        Layer::Hdf5,
        Layer::Mpiio,
        Layer::Network,
        Layer::LustreData,
        Layer::LustreRpc,
        Layer::Mds,
        Layer::Burst,
        Layer::Interference,
    ];

    /// Layers whose self time is part of `RunReport::io_time_s`.
    pub const IO: [Layer; 7] = [
        Layer::Hdf5,
        Layer::Mpiio,
        Layer::Network,
        Layer::LustreData,
        Layer::LustreRpc,
        Layer::Burst,
        Layer::Interference,
    ];

    /// Stable string name (used in JSON, metrics labels and trace events).
    pub fn as_str(&self) -> &'static str {
        match self {
            Layer::Compute => "compute",
            Layer::Hdf5 => "hdf5",
            Layer::Mpiio => "mpiio",
            Layer::Network => "network",
            Layer::LustreData => "lustre.data",
            Layer::LustreRpc => "lustre.rpc",
            Layer::Mds => "mds",
            Layer::Burst => "burst",
            Layer::Interference => "interference",
        }
    }

    /// Inverse of [`Layer::as_str`].
    pub fn from_name(name: &str) -> Option<Layer> {
        Layer::ALL.iter().copied().find(|l| l.as_str() == name)
    }
}

/// Exclusive (self) cost charged to one layer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LayerStat {
    /// Self time, seconds: time spent in this layer's own mechanism.
    pub self_s: f64,
    /// Bytes this layer handled (its own accounting unit; layers see the
    /// same data, so bytes do *not* sum meaningfully across layers).
    pub bytes: f64,
    /// Operations this layer issued or serviced.
    pub ops: f64,
}

impl LayerStat {
    fn absorb(&mut self, other: &LayerStat) {
        self.self_s += other.self_s;
        self.bytes += other.bytes;
        self.ops += other.ops;
    }
}

/// Per-layer cost attribution for one (or many pooled) simulated runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    stats: [LayerStat; Layer::ALL.len()],
}

impl Profile {
    /// Empty profile (all layers zero).
    pub fn new() -> Profile {
        Profile::default()
    }

    /// Charge `self_s` seconds, `bytes` and `ops` to `layer`.
    pub fn add(&mut self, layer: Layer, self_s: f64, bytes: f64, ops: f64) {
        let s = &mut self.stats[layer as usize];
        s.self_s += self_s;
        s.bytes += bytes;
        s.ops += ops;
    }

    /// This layer's accumulated stat.
    pub fn get(&self, layer: Layer) -> LayerStat {
        self.stats[layer as usize]
    }

    /// Iterate `(layer, stat)` in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Layer, LayerStat)> + '_ {
        Layer::ALL.iter().map(|&l| (l, self.stats[l as usize]))
    }

    /// Merge another profile into this one (per-phase or per-run pooling).
    pub fn absorb(&mut self, other: &Profile) {
        for l in Layer::ALL {
            self.stats[l as usize].absorb(&other.stats[l as usize]);
        }
    }

    /// Pool several runs' profiles with the same time-weighted semantics
    /// as [`RunReport::average`]: every field is summed, then divided by
    /// the run count. An empty slice yields the empty profile.
    pub fn average(profiles: &[Profile]) -> Profile {
        let n = profiles.len().max(1) as f64;
        let mut acc = Profile::new();
        for p in profiles {
            acc.absorb(p);
        }
        for s in &mut acc.stats {
            s.self_s /= n;
            s.bytes /= n;
            s.ops /= n;
        }
        acc
    }

    /// Scale the self time of the I/O layers *except* burst ingest by
    /// `factor` (the burst-buffer spill path: only the spill-over
    /// fraction of the PFS cost remains).
    pub(crate) fn scale_io_time(&mut self, factor: f64) {
        for l in Layer::IO {
            if l != Layer::Burst {
                self.stats[l as usize].self_s *= factor;
            }
        }
    }

    /// Scale the self time of every layer except compute by `factor`
    /// (the platform-volatility noise multiplier perturbs the whole I/O
    /// and metadata path).
    pub(crate) fn scale_noise(&mut self, factor: f64) {
        for l in Layer::ALL {
            if l != Layer::Compute {
                self.stats[l as usize].self_s *= factor;
            }
        }
    }

    /// Sum of all layers' self time: the total simulated time.
    pub fn total_time_s(&self) -> f64 {
        self.stats.iter().map(|s| s.self_s).sum()
    }

    /// Sum of the I/O layers' self time (matches `RunReport::io_time_s`).
    pub fn io_time_s(&self) -> f64 {
        Layer::IO
            .iter()
            .map(|&l| self.stats[l as usize].self_s)
            .sum()
    }

    /// Per-layer difference `self - earlier` (clamped at zero): the cost
    /// added since an earlier snapshot of an accumulating profile.
    pub fn delta_since(&self, earlier: &Profile) -> Profile {
        let mut out = Profile::new();
        for l in Layer::ALL {
            let a = self.stats[l as usize];
            let b = earlier.stats[l as usize];
            out.stats[l as usize] = LayerStat {
                self_s: (a.self_s - b.self_s).max(0.0),
                bytes: (a.bytes - b.bytes).max(0.0),
                ops: (a.ops - b.ops).max(0.0),
            };
        }
        out
    }

    /// Serialize as a stable JSON object (layers in canonical order).
    pub fn to_json(&self) -> String {
        let layers: Vec<(String, Value)> = self
            .iter()
            .map(|(l, s)| {
                (
                    l.as_str().to_string(),
                    Value::Object(vec![
                        ("self_s".to_string(), Value::Float(s.self_s)),
                        ("bytes".to_string(), Value::Float(s.bytes)),
                        ("ops".to_string(), Value::Float(s.ops)),
                    ]),
                )
            })
            .collect();
        let root = Value::Object(vec![("layers".to_string(), Value::Object(layers))]);
        serde_json::to_string_pretty(&root).expect("profile serializes")
    }

    /// Parse a profile written by [`Profile::to_json`]. Unknown layers are
    /// ignored and missing layers stay zero, so baselines survive layer
    /// additions.
    pub fn from_json(text: &str) -> Result<Profile, String> {
        let v: Value = serde_json::from_str(text).map_err(|e| format!("{e:?}"))?;
        let layers = match v.get("layers") {
            Some(Value::Object(pairs)) => pairs,
            _ => return Err("missing `layers` object".to_string()),
        };
        let mut out = Profile::new();
        for (name, stat) in layers {
            let Some(layer) = Layer::from_name(name) else {
                continue;
            };
            let f = |key: &str| stat.get(key).and_then(|x| x.as_f64()).unwrap_or(0.0);
            out.stats[layer as usize] = LayerStat {
                self_s: f("self_s"),
                bytes: f("bytes"),
                ops: f("ops"),
            };
        }
        Ok(out)
    }

    /// Render the attribution table: one row per layer with self time,
    /// share of total, bytes and ops.
    pub fn render_table(&self) -> String {
        let total = self.total_time_s();
        let mut out = String::from(
            "layer         self s   % total        MiB          ops\n\
             ------------+--------+--------+-----------+------------\n",
        );
        const MIB: f64 = 1024.0 * 1024.0;
        for (l, s) in self.iter() {
            let pct = if total > 0.0 {
                100.0 * s.self_s / total
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<12} | {:>6.2} | {:>5.1}% | {:>9.1} | {:>10.0}\n",
                l.as_str(),
                s.self_s,
                pct,
                s.bytes / MIB,
                s.ops,
            ));
        }
        out.push_str(&format!(
            "total {:>.2} s (io {:>.2} s)\n",
            total,
            self.io_time_s()
        ));
        out
    }

    /// Flamegraph-style self/total rows in the stack's call hierarchy:
    /// each row carries its nesting depth, the layer's exclusive self
    /// time and the inclusive total of its subtree.
    pub fn tree(&self) -> Vec<TreeRow> {
        let s = |l: Layer| self.stats[l as usize].self_s;
        let lustre = s(Layer::LustreData) + s(Layer::LustreRpc);
        let mpiio = s(Layer::Mpiio) + s(Layer::Network) + lustre;
        let hdf5 = s(Layer::Hdf5) + mpiio;
        let io = s(Layer::Burst) + hdf5 + s(Layer::Interference);
        let run = s(Layer::Compute) + io + s(Layer::Mds);
        let row = |depth, name: &str, self_s, total_s| TreeRow {
            depth,
            name: name.to_string(),
            self_s,
            total_s,
        };
        vec![
            row(0, "run", 0.0, run),
            row(1, "compute", s(Layer::Compute), s(Layer::Compute)),
            row(1, "io", 0.0, io),
            row(2, "burst", s(Layer::Burst), s(Layer::Burst)),
            row(2, "hdf5", s(Layer::Hdf5), hdf5),
            row(3, "mpiio", s(Layer::Mpiio), mpiio),
            row(4, "network", s(Layer::Network), s(Layer::Network)),
            row(4, "lustre", 0.0, lustre),
            row(5, "lustre.data", s(Layer::LustreData), s(Layer::LustreData)),
            row(5, "lustre.rpc", s(Layer::LustreRpc), s(Layer::LustreRpc)),
            row(
                2,
                "interference",
                s(Layer::Interference),
                s(Layer::Interference),
            ),
            row(1, "mds", s(Layer::Mds), s(Layer::Mds)),
        ]
    }

    /// Render [`Profile::tree`] as indented text.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        for r in self.tree() {
            out.push_str(&format!(
                "{:indent$}{:<width$} total {:>8.3} s  self {:>8.3} s\n",
                "",
                r.name,
                r.total_s,
                r.self_s,
                indent = r.depth * 2,
                width = 14usize.saturating_sub(r.depth * 2) + 8,
            ));
        }
        out
    }

    /// Check the profile against the report it was produced with: layer
    /// self times must reconstruct the report's timings. Returns the
    /// worst relative error across total/io/meta/compute.
    pub fn attribution_error(&self, report: &RunReport) -> f64 {
        let rel = |have: f64, want: f64| {
            if want.abs() > 1e-12 {
                (have - want).abs() / want.abs()
            } else {
                (have - want).abs()
            }
        };
        rel(self.total_time_s(), report.elapsed_s)
            .max(rel(self.io_time_s(), report.io_time_s))
            .max(rel(self.get(Layer::Mds).self_s, report.meta_time_s))
            .max(rel(self.get(Layer::Compute).self_s, report.compute_time_s))
    }
}

/// One row of the flamegraph-style tree (see [`Profile::tree`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TreeRow {
    /// Nesting depth (0 = the run itself).
    pub depth: usize,
    /// Node name — a [`Layer`] name or a synthetic grouping node
    /// (`run`, `io`, `lustre`).
    pub name: String,
    /// Exclusive time of the node, seconds (0 for grouping nodes).
    pub self_s: f64,
    /// Inclusive time of the node's subtree, seconds.
    pub total_s: f64,
}

/// Per-layer comparison of two profiles (see [`compare_profiles`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerDelta {
    /// The layer compared.
    pub layer: Layer,
    /// Baseline self time, seconds.
    pub base_s: f64,
    /// Current self time, seconds.
    pub current_s: f64,
    /// `current / base` (1.0 when the baseline is zero and current is too).
    pub ratio: f64,
    /// Whether this layer regressed beyond the tolerance.
    pub regressed: bool,
}

impl LayerDelta {
    /// Signed percentage change, e.g. `+23.4` for a 1.234× slowdown.
    pub fn pct_change(&self) -> f64 {
        (self.ratio - 1.0) * 100.0
    }
}

/// Compare `current` against `base` layer by layer with a relative noise
/// `tolerance` (0.15 = a layer may be up to 15% slower before it counts
/// as a regression). Layers contributing less than 0.1% of the baseline's
/// total time are ignored — their times are dominated by noise. Results
/// come back sorted worst-regression-first.
pub fn compare_profiles(base: &Profile, current: &Profile, tolerance: f64) -> Vec<LayerDelta> {
    let noise_floor = base.total_time_s() * 1e-3;
    let mut out: Vec<LayerDelta> = Layer::ALL
        .iter()
        .filter_map(|&layer| {
            let b = base.get(layer).self_s;
            let c = current.get(layer).self_s;
            if b <= noise_floor && c <= noise_floor {
                return None;
            }
            let ratio = if b > 0.0 {
                c / b
            } else if c > 0.0 {
                f64::INFINITY
            } else {
                1.0
            };
            Some(LayerDelta {
                layer,
                base_s: b,
                current_s: c,
                ratio,
                regressed: b > noise_floor && ratio > 1.0 + tolerance,
            })
        })
        .collect();
    out.sort_by(|a, b| b.ratio.total_cmp(&a.ratio).then(a.layer.cmp(&b.layer)));
    out
}

/// Render a [`compare_profiles`] result as a diff table.
pub fn render_diff(deltas: &[LayerDelta]) -> String {
    let mut out = String::from(
        "layer          base s    cur s   change\n\
         ------------+--------+--------+---------\n",
    );
    for d in deltas {
        out.push_str(&format!(
            "{:<12} | {:>6.3} | {:>6.3} | {:>+7.1}%{}\n",
            d.layer.as_str(),
            d.base_s,
            d.current_s,
            d.pct_change(),
            if d.regressed { "  REGRESSED" } else { "" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Profile {
        let mut p = Profile::new();
        p.add(Layer::Compute, 5.0, 0.0, 0.0);
        p.add(Layer::Hdf5, 0.5, 1e9, 100.0);
        p.add(Layer::Mpiio, 1.0, 8e8, 50.0);
        p.add(Layer::Network, 0.25, 1e9, 0.0);
        p.add(Layer::LustreData, 2.0, 1e9, 0.0);
        p.add(Layer::LustreRpc, 0.25, 0.0, 40.0);
        p.add(Layer::Mds, 0.125, 0.0, 16.0);
        p
    }

    #[test]
    fn totals_sum_layer_self_times() {
        let p = sample();
        assert!((p.total_time_s() - 9.125).abs() < 1e-12);
        assert!((p.io_time_s() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn absorb_and_average_pool_fields() {
        let mut a = sample();
        a.absorb(&sample());
        assert!((a.total_time_s() - 18.25).abs() < 1e-12);
        assert_eq!(a.get(Layer::Hdf5).ops, 200.0);

        let avg = Profile::average(&[sample(), sample(), sample()]);
        assert!((avg.total_time_s() - 9.125).abs() < 1e-12);
        assert_eq!(avg.get(Layer::Mpiio).bytes, 8e8);

        assert_eq!(Profile::average(&[]), Profile::new());
    }

    #[test]
    fn delta_since_subtracts_and_clamps() {
        let mut later = sample();
        later.add(Layer::LustreData, 1.0, 5e8, 10.0);
        let d = later.delta_since(&sample());
        assert!((d.get(Layer::LustreData).self_s - 1.0).abs() < 1e-12);
        assert_eq!(d.get(Layer::Compute).self_s, 0.0);
        // Clamped: an earlier profile with more time yields zero, not
        // negative attribution.
        let d2 = sample().delta_since(&later);
        assert_eq!(d2.get(Layer::LustreData).self_s, 0.0);
    }

    #[test]
    fn json_round_trips() {
        let p = sample();
        let text = p.to_json();
        let back = Profile::from_json(&text).unwrap();
        assert_eq!(back, p);
        // Stability: serializing again produces identical bytes.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn from_json_tolerates_unknown_and_missing_layers() {
        let text = r#"{"layers":{"hdf5":{"self_s":1.5,"bytes":10.0,"ops":2.0},"warp_drive":{"self_s":9.0}}}"#;
        let p = Profile::from_json(text).unwrap();
        assert_eq!(p.get(Layer::Hdf5).self_s, 1.5);
        assert_eq!(p.get(Layer::Mds), LayerStat::default());
        assert!(Profile::from_json("{}").is_err());
    }

    #[test]
    fn tree_totals_are_consistent() {
        let p = sample();
        let rows = p.tree();
        let run = &rows[0];
        assert_eq!(run.name, "run");
        assert!((run.total_s - p.total_time_s()).abs() < 1e-12);
        let io = rows.iter().find(|r| r.name == "io").unwrap();
        assert!((io.total_s - p.io_time_s()).abs() < 1e-12);
        // Every parent's total is >= each child's total.
        let hdf5 = rows.iter().find(|r| r.name == "hdf5").unwrap();
        let mpiio = rows.iter().find(|r| r.name == "mpiio").unwrap();
        assert!(hdf5.total_s >= mpiio.total_s);
        assert!((hdf5.total_s - hdf5.self_s - mpiio.total_s).abs() < 1e-12);
    }

    #[test]
    fn render_table_and_tree_mention_all_layers() {
        let table = sample().render_table();
        let tree = sample().render_tree();
        for l in Layer::ALL {
            assert!(table.contains(l.as_str()), "table missing {}", l.as_str());
        }
        assert!(tree.contains("run"));
        assert!(tree.contains("lustre.data"));
    }

    #[test]
    fn compare_flags_regressions_beyond_tolerance() {
        let base = sample();
        let mut cur = sample();
        cur.add(Layer::LustreData, 2.0, 0.0, 0.0); // 2x slowdown
        let deltas = compare_profiles(&base, &cur, 0.15);
        let worst = &deltas[0];
        assert_eq!(worst.layer, Layer::LustreData);
        assert!(worst.regressed);
        assert!((worst.ratio - 2.0).abs() < 1e-12);
        assert!((worst.pct_change() - 100.0).abs() < 1e-9);
        // Everything else is within tolerance.
        assert!(deltas[1..].iter().all(|d| !d.regressed));
    }

    #[test]
    fn compare_within_tolerance_is_clean() {
        let base = sample();
        let mut cur = sample();
        cur.add(Layer::Mpiio, 0.05, 0.0, 0.0); // +5% on a 1.0 s layer
        assert!(compare_profiles(&base, &cur, 0.15)
            .iter()
            .all(|d| !d.regressed));
    }

    #[test]
    fn compare_ignores_noise_floor_layers() {
        let mut base = sample();
        base.add(Layer::Burst, 1e-6, 0.0, 0.0);
        let mut cur = sample();
        cur.add(Layer::Burst, 5e-6, 0.0, 0.0); // 5x, but below the floor
        let deltas = compare_profiles(&base, &cur, 0.15);
        assert!(deltas.iter().all(|d| d.layer != Layer::Burst));
    }

    #[test]
    fn new_layer_appearing_is_a_regression() {
        let base = sample();
        let mut cur = sample();
        cur.add(Layer::Burst, 1.0, 0.0, 0.0);
        let deltas = compare_profiles(&base, &cur, 0.15);
        let burst = deltas.iter().find(|d| d.layer == Layer::Burst).unwrap();
        assert!(burst.ratio.is_infinite());
        // A layer with zero baseline cannot "regress" relative to it, but
        // it must surface in the diff for a human to judge.
        assert!(!burst.regressed);
        assert!(render_diff(&deltas).contains("burst"));
    }
}
