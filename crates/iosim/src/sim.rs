//! The simulator: executes a workload under a configuration.

use crate::burst::{BurstBufferSpec, BurstBufferState};
use crate::cluster::ClusterSpec;
use crate::fault::{FaultKind, FaultPlan, InjectedFault, SimFault};
use crate::hdf5;
use crate::interference::InterferenceModel;
use crate::lustre::LustreSpec;
use crate::mpiio;
use crate::noise::{fingerprint, NoiseModel};
use crate::profile::{Layer, Profile};
use crate::report::RunReport;
use crate::request::{IoKind, Phase};
use tunio_params::{Configuration, ParameterSpace, StackConfig};

/// Simulated I/O stack: cluster + file system + noise.
///
/// `run` evaluates a workload under a [`StackConfig`] and returns a
/// [`RunReport`]. `run_averaged` mirrors the paper's methodology of
/// averaging three runs per configuration.
///
/// ```
/// use tunio_iosim::{Phase, Simulator};
/// use tunio_params::{ParameterSpace, StackConfig};
/// let sim = Simulator::cori_4node(1);
/// let space = ParameterSpace::tunio_default();
/// let report = sim.run(&[Phase::compute(5.0)], &StackConfig::defaults(&space), 0);
/// assert_eq!(report.elapsed_s, 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    /// Compute-side machine description.
    pub cluster: ClusterSpec,
    /// Storage-side machine description.
    pub fs: LustreSpec,
    /// Deterministic volatility model.
    pub noise: NoiseModel,
    /// Optional node-local burst-buffer tier absorbing writes.
    pub burst: Option<BurstBufferSpec>,
    /// Optional seeded fault-injection schedule. Only the fallible
    /// `try_run*` entry points consult it; the infallible `run*` methods
    /// stay fault-free regardless.
    pub fault: Option<FaultPlan>,
    /// Optional heteroscedastic interference model (noisy-neighbor OST
    /// episodes + fabric contention on a virtual timeline). `None` leaves
    /// every run bitwise identical to the interference-free simulator.
    pub interference: Option<InterferenceModel>,
}

impl Simulator {
    /// Simulator for the paper's 4-node component-evaluation scale.
    pub fn cori_4node(seed: u64) -> Self {
        Simulator {
            cluster: ClusterSpec::cori_4node(),
            fs: LustreSpec::cori_scratch(),
            noise: NoiseModel::new(seed),
            burst: None,
            fault: None,
            interference: None,
        }
    }

    /// Simulator for the paper's 500-node end-to-end scale.
    pub fn cori_500node(seed: u64) -> Self {
        Simulator {
            cluster: ClusterSpec::cori_500node(),
            fs: LustreSpec::cori_scratch(),
            noise: NoiseModel::new(seed),
            burst: None,
            fault: None,
            interference: None,
        }
    }

    /// Tiny noiseless simulator for unit tests.
    pub fn test_tiny() -> Self {
        Simulator {
            cluster: ClusterSpec::test_tiny(),
            fs: LustreSpec::test_small(),
            noise: NoiseModel::disabled(),
            burst: None,
            fault: None,
            interference: None,
        }
    }

    /// Enable a burst-buffer tier (builder style).
    pub fn with_burst_buffer(mut self, spec: BurstBufferSpec) -> Self {
        self.burst = Some(spec);
        self
    }

    /// Attach a fault-injection schedule (builder style).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Attach a heteroscedastic interference model (builder style). Inert
    /// models (the `quiet` profile) are dropped so the fast path stays
    /// branch-free.
    pub fn with_interference(mut self, model: InterferenceModel) -> Self {
        self.interference = (!model.is_inert()).then_some(model);
        self
    }

    /// Execute `phases` once under `cfg`; `run_idx` selects the noise draw.
    pub fn run(&self, phases: &[Phase], cfg: &StackConfig, run_idx: u32) -> RunReport {
        self.run_profiled(phases, cfg, run_idx).0
    }

    /// [`Self::run`] with per-layer cost attribution: the same run (the
    /// report is bitwise identical), plus a [`Profile`] whose layer self
    /// times reconstruct the report's compute/io/meta split exactly.
    pub fn run_profiled(
        &self,
        phases: &[Phase],
        cfg: &StackConfig,
        run_idx: u32,
    ) -> (RunReport, Profile) {
        self.run_profiled_degraded(phases, cfg, run_idx, 0)
    }

    /// [`Self::run_profiled`] with `ost_loss` OSTs dropped from every
    /// transfer's layout — the degraded path an OST flap produces. With
    /// `ost_loss == 0` this *is* `run_profiled`, bit for bit.
    fn run_profiled_degraded(
        &self,
        phases: &[Phase],
        cfg: &StackConfig,
        run_idx: u32,
        ost_loss: u32,
    ) -> (RunReport, Profile) {
        let mut report = RunReport::default();
        let mut profile = Profile::new();
        let mut bb_state = BurstBufferState::empty();
        let fp = fingerprint_of(cfg);
        // Virtual clock for the interference timeline: each repeat of a
        // config starts at its own hashed offset, then the clock advances
        // by simulated phase durations so back-to-back I/O phases see
        // correlated (bursty) interference, not fresh i.i.d. draws.
        let mut clock = self
            .interference
            .as_ref()
            .map(|m| m.start_time(fp, run_idx))
            .unwrap_or(0.0);
        for phase in phases {
            match phase {
                Phase::Compute { seconds } => {
                    report.compute_time_s += seconds;
                    report.elapsed_s += seconds;
                    profile.add(Layer::Compute, *seconds, 0.0, 0.0);
                    clock += seconds;
                    if let Some(bb) = &self.burst {
                        bb_state.drain(bb, *seconds);
                    }
                }
                Phase::Io(io) => {
                    let (mut contribution, mut phase_profile) =
                        self.run_io_phase(io, cfg, ost_loss, clock, fp);
                    // A burst buffer absorbs writes at memory-class speed;
                    // only the spill-over pays the PFS path. The absorbed
                    // data drains during subsequent compute phases.
                    if let (Some(bb), IoKind::Write) = (&self.burst, io.kind) {
                        let total = contribution.bytes_written.max(1.0);
                        let (absorbed, absorb_time) =
                            bb_state.absorb(bb, self.cluster.nodes, total);
                        let spill_fraction = 1.0 - absorbed / total;
                        contribution.io_time_s =
                            absorb_time + contribution.io_time_s * spill_fraction;
                        contribution.elapsed_s = contribution.io_time_s + contribution.meta_time_s;
                        // Attribution: the PFS-path layers keep only the
                        // spill fraction of their time; the rest became
                        // burst-buffer ingest.
                        phase_profile.scale_io_time(spill_fraction);
                        phase_profile.add(Layer::Burst, absorb_time, absorbed, 0.0);
                    }
                    clock += contribution.elapsed_s;
                    report.absorb(&contribution);
                    profile.absorb(&phase_profile);
                }
            }
        }
        // Platform volatility perturbs the I/O portion of the run.
        let mult = self.noise.time_multiplier(fp, run_idx);
        report.io_time_s *= mult;
        report.meta_time_s *= mult;
        report.elapsed_s = report.compute_time_s + report.io_time_s + report.meta_time_s;
        profile.scale_noise(mult);
        (report, profile)
    }

    /// Run once for a genome in `space` (resolves then calls [`Self::run`]).
    pub fn run_config(
        &self,
        phases: &[Phase],
        space: &ParameterSpace,
        config: &Configuration,
        run_idx: u32,
    ) -> RunReport {
        self.run(phases, &config.resolve(space), run_idx)
    }

    /// The paper's methodology: run `repeats` times, average the reports.
    /// Tuning *cost* should count only one run's elapsed time (§IV:
    /// "the time cost of running the application is not accumulated across
    /// runs"), which callers obtain from the averaged `elapsed_s`.
    pub fn run_averaged(&self, phases: &[Phase], cfg: &StackConfig, repeats: u32) -> RunReport {
        let runs: Vec<RunReport> = (0..repeats.max(1))
            .map(|i| self.run(phases, cfg, i))
            .collect();
        RunReport::average(&runs)
    }

    /// [`Self::run_averaged`] with cost attribution: averages the reports
    /// exactly as `run_averaged` does (bitwise-identical report) and
    /// averages the per-run profiles the same way.
    pub fn run_averaged_profiled(
        &self,
        phases: &[Phase],
        cfg: &StackConfig,
        repeats: u32,
    ) -> (RunReport, Profile) {
        let mut runs = Vec::new();
        let mut profiles = Vec::new();
        for i in 0..repeats.max(1) {
            let (report, profile) = self.run_profiled(phases, cfg, i);
            runs.push(report);
            profiles.push(profile);
        }
        (RunReport::average(&runs), Profile::average(&profiles))
    }

    /// Fallible single run: consults the attached [`FaultPlan`] (if any)
    /// and injects at most one fault. `attempt` distinguishes retries so a
    /// transient fault does not deterministically recur forever.
    ///
    /// Returns the report and profile plus the fault that fired, if one
    /// did; a [`FaultKind::Transient`] fault kills the run with `Err`.
    /// Without a plan (or with an inert one) the result is bitwise
    /// identical to [`Self::run_profiled`].
    pub fn try_run_profiled(
        &self,
        phases: &[Phase],
        cfg: &StackConfig,
        run_idx: u32,
        attempt: u32,
    ) -> Result<(RunReport, Profile, Option<InjectedFault>), SimFault> {
        let drawn = self
            .fault
            .as_ref()
            .and_then(|plan| plan.draw(fingerprint_of(cfg), run_idx, attempt));
        let Some(kind) = drawn else {
            let (report, profile) = self.run_profiled(phases, cfg, run_idx);
            return Ok((report, profile, None));
        };
        let fault = InjectedFault {
            kind,
            run_idx,
            attempt,
        };
        let plan = self.fault.as_ref().expect("fault drawn implies plan");
        match kind {
            FaultKind::Transient => Err(SimFault { fault }),
            FaultKind::Straggler => {
                let (mut report, mut profile) = self.run_profiled(phases, cfg, run_idx);
                let slow = plan.straggler_slowdown.max(1.0);
                report.io_time_s *= slow;
                report.meta_time_s *= slow;
                report.elapsed_s = report.compute_time_s + report.io_time_s + report.meta_time_s;
                profile.scale_noise(slow);
                Ok((report, profile, Some(fault)))
            }
            FaultKind::OstFlap => {
                let (report, profile) =
                    self.run_profiled_degraded(phases, cfg, run_idx, plan.ost_flap_loss);
                Ok((report, profile, Some(fault)))
            }
            FaultKind::Corrupt => {
                // The run "finished" but its log is torn: the byte counters
                // read back as NaN, the way a truncated Darshan file does —
                // which makes the derived bandwidths (and `perf`) NaN too.
                let (mut report, profile) = self.run_profiled(phases, cfg, run_idx);
                report.bytes_written = f64::NAN;
                report.bytes_read = f64::NAN;
                Ok((report, profile, Some(fault)))
            }
        }
    }

    /// Fallible counterpart of [`Self::run_averaged_profiled`]: any
    /// transient fault aborts the whole attempt, non-fatal faults are
    /// collected. Fault-free results are bitwise identical to the
    /// infallible path.
    pub fn try_run_averaged_profiled(
        &self,
        phases: &[Phase],
        cfg: &StackConfig,
        repeats: u32,
        attempt: u32,
    ) -> Result<(RunReport, Profile, Vec<InjectedFault>), SimFault> {
        let mut runs = Vec::new();
        let mut profiles = Vec::new();
        let mut faults = Vec::new();
        for i in 0..repeats.max(1) {
            let (report, profile, fault) = self.try_run_profiled(phases, cfg, i, attempt)?;
            runs.push(report);
            profiles.push(profile);
            faults.extend(fault);
        }
        Ok((
            RunReport::average(&runs),
            Profile::average(&profiles),
            faults,
        ))
    }

    /// Simulate one bulk-I/O phase, attributing cost per stack layer.
    ///
    /// Attribution model ("self time"): the phase's `io_time_s` is
    /// `max(storage, network_floor) + shuffle`. The max is split into the
    /// library's own amplification share (HDF5), the client network gap
    /// above raw storage time (network), OST streaming (lustre.data) and
    /// per-request RPC service (lustre.rpc); the two-phase shuffle is the
    /// middleware's own cost (mpiio) and `meta_time_s` is the MDS's (mds).
    /// The layer self times sum to the report's io+meta time to within
    /// float rounding.
    fn run_io_phase(
        &self,
        io: &crate::request::IoPhase,
        cfg: &StackConfig,
        ost_loss: u32,
        t0: f64,
        fp: u64,
    ) -> (RunReport, Profile) {
        // Layer 1: HDF5-like library transforms the request stream.
        let traffic = hdf5::raw_data_traffic(io, cfg);
        let meta = hdf5::metadata_traffic(io, cfg, self.cluster.procs);

        // Layer 2: MPI-IO-like middleware decides what the FS sees.
        let fs_load = mpiio::middleware(io, &traffic, cfg, &self.cluster);

        // Layer 3: Lustre-like PFS services the requests. Reads of
        // pre-existing datasets are served by the input's own layout when
        // it is wider than the configured striping.
        let stripe_count = match io.kind {
            IoKind::Read => cfg.striping_factor.max(io.pre_striped),
            IoKind::Write => cfg.striping_factor,
        };
        // An OST flap shrinks the serviced layout below what the striping
        // requested; at least one OST always survives.
        let osts = self
            .fs
            .osts_used(stripe_count)
            .saturating_sub(ost_loss)
            .max(1);
        let align_eff =
            self.fs
                .alignment_efficiency(fs_load.request_size, cfg.striping_unit, cfg.alignment);
        // Irregular request streams defeat OST readahead/write-behind.
        let pattern_eff = 1.0 - 0.72 * fs_load.irregularity;
        let efficiency = align_eff * pattern_eff;

        let (stream_time, rpc_time) = self.fs.transfer_breakdown(
            fs_load.total_bytes,
            fs_load.fs_requests,
            osts,
            fs_load.streams,
            efficiency,
        );
        let storage_time = stream_time + rpc_time;

        // Clients can not push bytes faster than their network injection —
        // and irregular, fine-grained request streams cannot keep the wire
        // full (extent-lock ping-pong and per-RPC client overhead), which
        // is exactly the badness two-phase collective buffering removes.
        let sender_nodes = if fs_load.aggregated {
            (fs_load.streams as f64).min(self.cluster.nodes as f64)
        } else {
            self.cluster.nodes as f64
        };
        let client_eff = (1.0 - fs_load.irregularity).powf(3.0).clamp(0.05, 1.0);
        let network_floor =
            fs_load.total_bytes / (sender_nodes * self.cluster.node_network_bw * client_eff);

        let meta_time = self
            .fs
            .metadata_time(meta.total_ops, meta.clients, meta.cost_factor);

        let mut io_time = storage_time.max(network_floor) + fs_load.shuffle_time;

        let total_bytes = traffic.per_proc_bytes * self.cluster.procs as f64;
        let total_ops = traffic.ops_per_proc * self.cluster.procs as f64;
        let (bw, br, ow, or) = match io.kind {
            IoKind::Write => (total_bytes, 0.0, total_ops, 0.0),
            IoKind::Read => (0.0, total_bytes, 0.0, total_ops),
        };

        // Cost attribution. The binding constraint on the data path is
        // `transfer = max(storage, network_floor)`; `network_self` is the
        // client-side gap above raw storage time (zero when storage-bound).
        // `scale` renormalizes the three data-path components so they sum
        // to `transfer` exactly (it is 1.0 up to float rounding), and the
        // library layer takes credit for the fraction of downstream work
        // its read-modify-write amplification created.
        let transfer = storage_time.max(network_floor);
        let network_self = (network_floor - storage_time).max(0.0);
        let amp_share = traffic.amplified_share();
        let base = stream_time + rpc_time + network_self;
        let scale = if base > 0.0 { transfer / base } else { 0.0 };
        let under = 1.0 - amp_share;
        let mut profile = Profile::new();
        profile.add(Layer::Hdf5, transfer * amp_share, total_bytes, total_ops);
        profile.add(
            Layer::Mpiio,
            fs_load.shuffle_time,
            fs_load.shuffled_bytes,
            fs_load.fs_requests,
        );
        profile.add(
            Layer::Network,
            network_self * scale * under,
            fs_load.total_bytes,
            0.0,
        );
        profile.add(
            Layer::LustreData,
            stream_time * scale * under,
            fs_load.total_bytes,
            0.0,
        );
        profile.add(
            Layer::LustreRpc,
            rpc_time * scale * under,
            0.0,
            fs_load.fs_requests,
        );
        profile.add(Layer::Mds, meta_time, 0.0, meta.total_ops);

        // Cross-tenant interference re-evaluates the binding constraint:
        // busy OSTs slow the storage path (gated by the slowest engaged
        // stripe), fabric contention raises the client injection floor.
        // Only the *added* time over the undisturbed transfer is charged,
        // as its own layer — interference is attributed, never smeared
        // across the clean layers' budgets.
        if let Some(model) = &self.interference {
            let window = io_time + meta_time;
            let first = model.first_ost(fp, self.fs.n_osts);
            let slow = model.storage_slowdown(t0, window, first, osts);
            let net = model.network_contention(t0, window);
            let disturbed = (storage_time * slow).max(network_floor * net);
            let extra = disturbed - storage_time.max(network_floor);
            if extra > 0.0 {
                io_time += extra;
                profile.add(Layer::Interference, extra, 0.0, 0.0);
            }
        }

        let report = RunReport {
            elapsed_s: io_time + meta_time,
            io_time_s: io_time,
            meta_time_s: meta_time,
            compute_time_s: 0.0,
            bytes_written: bw,
            bytes_read: br,
            write_ops: ow,
            read_ops: or,
        };
        (report, profile)
    }
}

/// Noise fingerprint of a resolved configuration.
fn fingerprint_of(cfg: &StackConfig) -> u64 {
    fingerprint(&[
        cfg.sieve_buf_size as usize,
        cfg.chunk_cache as usize,
        cfg.alignment as usize,
        cfg.meta_block_size as usize,
        cfg.coll_meta_ops as usize,
        cfg.mdc_config.metadata_cost_factor().to_bits() as usize,
        cfg.coll_metadata_write as usize,
        cfg.striping_factor as usize,
        cfg.striping_unit as usize,
        cfg.cb_nodes as usize,
        cfg.cb_buffer_size as usize,
        cfg.collective_io as usize,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{AccessPattern, IoPhase};
    use tunio_params::ParamId;

    const MIB: u64 = 1024 * 1024;
    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

    fn space() -> ParameterSpace {
        ParameterSpace::tunio_default()
    }

    /// A HACC-like checkpoint: interleaved particle records, write-heavy.
    fn checkpoint_phases() -> Vec<Phase> {
        vec![
            Phase::compute(5.0),
            Phase::Io(IoPhase {
                dataset: "checkpoint".into(),
                kind: IoKind::Write,
                per_proc_bytes: 256 * MIB,
                ops_per_proc: 2048,
                pattern: AccessPattern::Strided { record: 128 * 1024 },
                meta_ops: 16,
                collective_capable: true,
                chunk_reuse_bytes: 0,
                pre_striped: 0,
            }),
        ]
    }

    fn tuned_config(space: &ParameterSpace) -> Configuration {
        let mut c = space.default_config();
        c.set_gene(ParamId::CollectiveIo, 1);
        c.set_gene(ParamId::CbNodes, 2); // 4 aggregators
        c.set_gene(ParamId::CbBufferSize, 6); // 64 MiB
        c.set_gene(ParamId::StripingFactor, 9); // 64 OSTs
        c.set_gene(ParamId::StripingUnit, 5); // 8 MiB
        c.set_gene(ParamId::Alignment, 5); // 4 MiB
        c
    }

    #[test]
    fn runs_are_deterministic() {
        let sim = Simulator::cori_4node(11);
        let s = space();
        let cfg = StackConfig::defaults(&s);
        let a = sim.run(&checkpoint_phases(), &cfg, 0);
        let b = sim.run(&checkpoint_phases(), &cfg, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn tuned_config_beats_defaults_substantially() {
        // The paper reports ~4x improvement for HACC after tuning (§IV-C).
        let sim = Simulator::cori_4node(11);
        let s = space();
        let default = sim.run_averaged(&checkpoint_phases(), &StackConfig::defaults(&s), 3);
        let tuned = sim.run_averaged(&checkpoint_phases(), &tuned_config(&s).resolve(&s), 3);
        let gain = tuned.perf() / default.perf();
        assert!(gain > 2.5, "tuning gain only {gain:.2}x");
        assert!(gain < 30.0, "tuning gain implausibly large: {gain:.2}x");
    }

    #[test]
    fn four_node_bandwidth_in_paper_ballpark() {
        // Tuned HACC on 4 nodes reaches ~2.2 GB/s in the paper.
        let sim = Simulator::cori_4node(11);
        let s = space();
        let tuned = sim.run_averaged(&checkpoint_phases(), &tuned_config(&s).resolve(&s), 3);
        let gbs = tuned.perf() / GIB;
        assert!((0.5..20.0).contains(&gbs), "tuned perf {gbs:.2} GiB/s");
    }

    #[test]
    fn compute_phases_add_elapsed_but_no_io() {
        let sim = Simulator::test_tiny();
        let s = space();
        let report = sim.run(&[Phase::compute(7.5)], &StackConfig::defaults(&s), 0);
        assert_eq!(report.compute_time_s, 7.5);
        assert_eq!(report.io_time_s, 0.0);
        assert_eq!(report.bytes_written + report.bytes_read, 0.0);
    }

    #[test]
    fn high_impact_params_move_perf_more_than_low_impact() {
        // This is the ground-truth property the Smart Configuration
        // Generation component must discover (7 high / 5 low).
        let sim = Simulator::cori_4node(3);
        let s = space();
        let phases = checkpoint_phases();
        let base = sim
            .run_averaged(&phases, &s.default_config().resolve(&s), 3)
            .perf();

        let spread = |p: ParamId| -> f64 {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for idx in 0..s.cardinality(p) {
                let mut c = s.default_config();
                c.set_gene(p, idx);
                let perf = sim.run_averaged(&phases, &c.resolve(&s), 3).perf();
                lo = lo.min(perf);
                hi = hi.max(perf);
            }
            (hi - lo) / base
        };

        let high = spread(ParamId::StripingFactor).max(spread(ParamId::CollectiveIo));
        let low = spread(ParamId::MetaBlockSize).max(spread(ParamId::MdcConfig));
        assert!(
            high > 5.0 * low,
            "high-impact spread {high:.4} should dwarf low-impact {low:.4}"
        );
    }

    #[test]
    fn averaging_reduces_noise() {
        let sim = Simulator::cori_4node(5);
        let s = space();
        let cfg = StackConfig::defaults(&s);
        let phases = checkpoint_phases();
        let singles: Vec<f64> = (0..9).map(|i| sim.run(&phases, &cfg, i).perf()).collect();
        let spread = singles.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - singles.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.0, "noise should make runs differ");
        let avg = sim.run_averaged(&phases, &cfg, 9).perf();
        let mean: f64 = singles.iter().sum::<f64>() / singles.len() as f64;
        assert!((avg - mean).abs() / mean < 0.05);
    }

    #[test]
    fn profiled_run_returns_identical_report() {
        let sim = Simulator::cori_4node(11);
        let s = space();
        let cfg = StackConfig::defaults(&s);
        let plain = sim.run(&checkpoint_phases(), &cfg, 2);
        let (profiled, _) = sim.run_profiled(&checkpoint_phases(), &cfg, 2);
        assert_eq!(plain, profiled);
    }

    #[test]
    fn profile_layers_reconstruct_report_times() {
        let sim = Simulator::cori_4node(11);
        let s = space();
        for cfg in [StackConfig::defaults(&s), tuned_config(&s).resolve(&s)] {
            for run_idx in 0..3 {
                let (report, profile) = sim.run_profiled(&checkpoint_phases(), &cfg, run_idx);
                let err = profile.attribution_error(&report);
                assert!(err < 1e-9, "attribution error {err} for run {run_idx}");
            }
        }
    }

    #[test]
    fn profile_attribution_holds_for_reads() {
        let sim = Simulator::cori_4node(7);
        let s = space();
        let phases = vec![Phase::Io(IoPhase {
            dataset: "in".into(),
            kind: IoKind::Read,
            per_proc_bytes: 64 * MIB,
            ops_per_proc: 512,
            pattern: AccessPattern::Strided { record: 64 * 1024 },
            meta_ops: 8,
            collective_capable: true,
            chunk_reuse_bytes: 512 * 1024 * 1024,
            pre_striped: 16,
        })];
        let (report, profile) = sim.run_profiled(&phases, &StackConfig::defaults(&s), 1);
        assert!(profile.attribution_error(&report) < 1e-9);
        // Chunk-cache amplification charges the library layer.
        assert!(profile.get(Layer::Hdf5).self_s > 0.0);
    }

    #[test]
    fn averaged_profile_matches_averaged_report() {
        let sim = Simulator::cori_4node(5);
        let s = space();
        let cfg = StackConfig::defaults(&s);
        let phases = checkpoint_phases();
        let plain = sim.run_averaged(&phases, &cfg, 3);
        let (report, profile) = sim.run_averaged_profiled(&phases, &cfg, 3);
        assert_eq!(plain, report);
        assert!(profile.attribution_error(&report) < 1e-9);
    }

    #[test]
    fn read_phase_populates_read_side() {
        let sim = Simulator::test_tiny();
        let s = space();
        let phases = vec![Phase::Io(IoPhase {
            dataset: "in".into(),
            kind: IoKind::Read,
            per_proc_bytes: 8 * MIB,
            ops_per_proc: 64,
            pattern: AccessPattern::Contiguous,
            meta_ops: 2,
            collective_capable: true,
            chunk_reuse_bytes: 0,
            pre_striped: 0,
        })];
        let r = sim.run(&phases, &StackConfig::defaults(&s), 0);
        assert!(r.bytes_read > 0.0);
        assert_eq!(r.bytes_written, 0.0);
        assert_eq!(r.alpha(), 0.0);
        assert!(r.perf() > 0.0);
    }
}

#[cfg(test)]
mod pre_striped_tests {
    use super::*;
    use crate::request::{AccessPattern, IoPhase};

    #[test]
    fn pre_striped_inputs_speed_up_default_reads_only() {
        let space = ParameterSpace::tunio_default();
        let cfg = StackConfig::defaults(&space); // striping_factor = 1
        let sim = Simulator::cori_500node(2);
        let phase = |pre: u32, kind: IoKind| {
            vec![Phase::Io(IoPhase {
                dataset: "in".into(),
                kind,
                per_proc_bytes: 64 * 1024 * 1024,
                ops_per_proc: 256,
                pattern: AccessPattern::Strided {
                    record: 1024 * 1024,
                },
                meta_ops: 2,
                collective_capable: true,
                chunk_reuse_bytes: 0,
                pre_striped: pre,
            })]
        };
        let narrow = sim.run(&phase(0, IoKind::Read), &cfg, 0).elapsed_s;
        let wide = sim.run(&phase(64, IoKind::Read), &cfg, 0).elapsed_s;
        assert!(
            wide < narrow / 4.0,
            "pre-striped read {wide} should beat stripe-1 {narrow}"
        );
        // Writes ignore pre_striped — the job's own striping governs.
        let w_narrow = sim.run(&phase(0, IoKind::Write), &cfg, 0).elapsed_s;
        let w_wide = sim.run(&phase(64, IoKind::Write), &cfg, 0).elapsed_s;
        assert!((w_narrow - w_wide).abs() < 1e-9);
    }
}

#[cfg(test)]
mod burst_buffer_tests {
    use super::*;
    use crate::burst::BurstBufferSpec;
    use crate::request::{AccessPattern, IoPhase};

    fn checkpoint(per_proc_mib: u64) -> Vec<Phase> {
        vec![
            Phase::compute(30.0),
            Phase::Io(IoPhase {
                dataset: "ckpt".into(),
                kind: IoKind::Write,
                per_proc_bytes: per_proc_mib * 1024 * 1024,
                ops_per_proc: 64,
                pattern: AccessPattern::Strided { record: 256 * 1024 },
                meta_ops: 4,
                collective_capable: true,
                chunk_reuse_bytes: 0,
                pre_striped: 0,
            }),
        ]
    }

    #[test]
    fn burst_buffer_absorbs_small_checkpoints() {
        let space = ParameterSpace::tunio_default();
        let cfg = StackConfig::defaults(&space);
        let plain = Simulator::cori_4node(9);
        let buffered = Simulator::cori_4node(9).with_burst_buffer(BurstBufferSpec::datawarp_like());
        let phases = checkpoint(64); // 8 GiB total: fits in the tier
        let t_plain = plain.run(&phases, &cfg, 0).io_time_s;
        let t_bb = buffered.run(&phases, &cfg, 0).io_time_s;
        assert!(
            t_bb < t_plain / 5.0,
            "burst buffer should absorb the write: {t_bb} vs {t_plain}"
        );
    }

    #[test]
    fn oversized_checkpoints_spill_to_pfs() {
        let space = ParameterSpace::tunio_default();
        let cfg = StackConfig::defaults(&space);
        let spec = BurstBufferSpec {
            capacity_per_node: 512.0 * 1024.0 * 1024.0, // 2 GiB across 4 nodes
            ..BurstBufferSpec::datawarp_like()
        };
        let buffered = Simulator::cori_4node(9).with_burst_buffer(spec);
        let plain = Simulator::cori_4node(9);
        let phases = checkpoint(256); // 32 GiB: mostly spills
        let t_bb = buffered.run(&phases, &cfg, 0).io_time_s;
        let t_plain = plain.run(&phases, &cfg, 0).io_time_s;
        assert!(t_bb < t_plain, "partial absorption still helps");
        assert!(
            t_bb > t_plain * 0.5,
            "most bytes spill, so most of the PFS cost remains: {t_bb} vs {t_plain}"
        );
    }

    #[test]
    fn compute_phases_drain_the_tier() {
        let space = ParameterSpace::tunio_default();
        let cfg = StackConfig::defaults(&space);
        let spec = BurstBufferSpec {
            capacity_per_node: 2048.0 * 1024.0 * 1024.0, // 8 GiB across 4 nodes
            ..BurstBufferSpec::datawarp_like()
        };
        let buffered = Simulator::cori_4node(9).with_burst_buffer(spec);
        // Two 8 GiB checkpoints: back-to-back they overflow the tier, but
        // with a long compute phase between them the drain frees space.
        let one = checkpoint(64);
        let mut back_to_back = one.clone();
        back_to_back.extend(checkpoint(64).into_iter().skip(1)); // no compute gap
        let mut spaced = one.clone();
        spaced.push(Phase::compute(600.0));
        spaced.extend(checkpoint(64).into_iter().skip(1));
        let t_tight = buffered.run(&back_to_back, &cfg, 0).io_time_s;
        let t_spaced = buffered.run(&spaced, &cfg, 0).io_time_s;
        assert!(
            t_spaced < t_tight,
            "draining during compute must free capacity: {t_spaced} vs {t_tight}"
        );
    }

    #[test]
    fn burst_attribution_reconstructs_report() {
        let space = ParameterSpace::tunio_default();
        let cfg = StackConfig::defaults(&space);
        let spec = BurstBufferSpec {
            capacity_per_node: 512.0 * 1024.0 * 1024.0, // forces a partial spill
            ..BurstBufferSpec::datawarp_like()
        };
        let sim = Simulator::cori_4node(9).with_burst_buffer(spec);
        let (report, profile) = sim.run_profiled(&checkpoint(256), &cfg, 0);
        assert!(profile.attribution_error(&report) < 1e-9);
        let burst = profile.get(crate::profile::Layer::Burst);
        assert!(burst.self_s > 0.0, "ingest time must be charged to burst");
        assert!(burst.bytes > 0.0);
    }

    #[test]
    fn reads_are_unaffected_by_burst_buffer() {
        let space = ParameterSpace::tunio_default();
        let cfg = StackConfig::defaults(&space);
        let phases = vec![Phase::Io(IoPhase {
            dataset: "in".into(),
            kind: IoKind::Read,
            per_proc_bytes: 64 * 1024 * 1024,
            ops_per_proc: 64,
            pattern: AccessPattern::Contiguous,
            meta_ops: 2,
            collective_capable: true,
            chunk_reuse_bytes: 0,
            pre_striped: 0,
        })];
        let plain = Simulator::cori_4node(9).run(&phases, &cfg, 0);
        let buffered = Simulator::cori_4node(9)
            .with_burst_buffer(BurstBufferSpec::datawarp_like())
            .run(&phases, &cfg, 0);
        assert_eq!(plain, buffered);
    }
}

#[cfg(test)]
mod stdio_tests {
    use super::*;
    use crate::request::{AccessPattern, IoPhase};

    #[test]
    fn logging_writes_are_coalesced_client_side() {
        // Tiny non-collective (stdio) writes must not pay per-op FS
        // request overhead: compare against the same volume issued as
        // collective-capable independent ops.
        let space = ParameterSpace::tunio_default();
        let cfg = StackConfig::defaults(&space);
        let sim = Simulator::cori_4node(1);
        let phase = |collective_capable| {
            vec![Phase::Io(IoPhase {
                dataset: "log".into(),
                kind: IoKind::Write,
                per_proc_bytes: 1024 * 1024,
                ops_per_proc: 8192, // 128-byte printf lines
                pattern: AccessPattern::Contiguous,
                meta_ops: 0,
                collective_capable,
                chunk_reuse_bytes: 0,
                pre_striped: 0,
            })]
        };
        let stdio = sim.run(&phase(false), &cfg, 0).io_time_s;
        let raw = sim.run(&phase(true), &cfg, 0).io_time_s;
        assert!(
            stdio < raw / 3.0,
            "stdio buffering should coalesce: {stdio} vs {raw}"
        );
    }
}

#[cfg(test)]
mod interference_tests {
    use super::*;
    use crate::interference::{InterferenceModel, NoiseProfile};
    use crate::request::{AccessPattern, IoPhase};
    use tunio_params::ParamId;

    const MIB: u64 = 1024 * 1024;

    fn phases() -> Vec<Phase> {
        vec![
            Phase::compute(5.0),
            Phase::Io(IoPhase {
                dataset: "ckpt".into(),
                kind: IoKind::Write,
                per_proc_bytes: 256 * MIB,
                ops_per_proc: 2048,
                pattern: AccessPattern::Strided { record: 128 * 1024 },
                meta_ops: 16,
                collective_capable: true,
                chunk_reuse_bytes: 0,
                pre_striped: 0,
            }),
        ]
    }

    fn striped(space: &ParameterSpace, stripe_gene: usize) -> StackConfig {
        let mut c = space.default_config();
        c.set_gene(ParamId::CollectiveIo, 1);
        c.set_gene(ParamId::StripingFactor, stripe_gene);
        c.resolve(space)
    }

    #[test]
    fn quiet_profile_is_bitwise_identical_to_no_model() {
        let s = ParameterSpace::tunio_default();
        let cfg = StackConfig::defaults(&s);
        let plain = Simulator::cori_4node(11);
        let quiet = Simulator::cori_4node(11)
            .with_interference(InterferenceModel::new(NoiseProfile::Quiet, 77));
        assert!(quiet.interference.is_none(), "inert models are dropped");
        let (a, pa) = plain.run_profiled(&phases(), &cfg, 0);
        let (b, pb) = quiet.run_profiled(&phases(), &cfg, 0);
        assert_eq!(a, b);
        assert_eq!(pa, pb);
    }

    #[test]
    fn storm_interference_is_deterministic_and_attributed() {
        let s = ParameterSpace::tunio_default();
        let cfg = striped(&s, 9); // 64 OSTs
        let sim = Simulator::cori_4node(11)
            .with_interference(InterferenceModel::new(NoiseProfile::Storm, 5));
        let (a, pa) = sim.run_profiled(&phases(), &cfg, 0);
        let (b, pb) = sim.run_profiled(&phases(), &cfg, 0);
        assert_eq!(a, b);
        assert_eq!(pa, pb);
        // Some repeat must hit an episode; its cost lands on the
        // interference layer and attribution still reconstructs exactly.
        let mut hit = false;
        for run_idx in 0..16 {
            let (report, profile) = sim.run_profiled(&phases(), &cfg, run_idx);
            assert!(profile.attribution_error(&report) < 1e-9);
            hit |= profile.get(Layer::Interference).self_s > 0.0;
        }
        assert!(hit, "a storm must hit a 64-OST config within 16 repeats");
    }

    #[test]
    fn wider_stripes_see_more_exposure_and_real_variance() {
        // The heteroscedastic core claim: stripe-wide configs touch more
        // OSTs, so a storm charges them a larger share of interference
        // time than a narrow config — and repeats of the wide config must
        // actually *vary* (the racing evaluator's reason to exist). The
        // 500-node scale keeps the storage path binding; on 4 nodes the
        // client network floor dominates and OST pinning cannot surface.
        let s = ParameterSpace::tunio_default();
        let sim = Simulator::cori_500node(11)
            .with_interference(InterferenceModel::new(NoiseProfile::Storm, 3));
        let exposure = |cfg: &StackConfig| {
            let mut share = 0.0;
            for i in 0..24 {
                let (report, profile) = sim.run_profiled(&phases(), cfg, i);
                share += profile.get(Layer::Interference).self_s / report.io_time_s;
            }
            share / 24.0
        };
        let narrow = exposure(&striped(&s, 0)); // 1 OST
        let wide = exposure(&striped(&s, 9)); // 64 OSTs
        assert!(
            wide > narrow,
            "wide-stripe exposure {wide:.4} should exceed narrow {narrow:.4}"
        );
        let wide_cfg = striped(&s, 9);
        let times: Vec<f64> = (0..24)
            .map(|i| sim.run(&phases(), &wide_cfg, i).io_time_s)
            .collect();
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let var = times.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / times.len() as f64;
        assert!(
            var.sqrt() / mean > 0.02,
            "storm repeats must differ materially: rel std {}",
            var.sqrt() / mean
        );
    }

    #[test]
    fn try_run_paths_carry_interference() {
        let s = ParameterSpace::tunio_default();
        let cfg = striped(&s, 9);
        let sim = Simulator::cori_4node(11)
            .with_interference(InterferenceModel::new(NoiseProfile::Storm, 5));
        let (plain, plain_prof) = sim.run_averaged_profiled(&phases(), &cfg, 3);
        let (r, p, faults) = sim
            .try_run_averaged_profiled(&phases(), &cfg, 3, 0)
            .unwrap();
        assert_eq!(plain, r);
        assert_eq!(plain_prof, p);
        assert!(faults.is_empty());
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan};
    use crate::request::{AccessPattern, IoPhase};

    fn phases() -> Vec<Phase> {
        vec![
            Phase::compute(2.0),
            Phase::Io(IoPhase {
                dataset: "ckpt".into(),
                kind: IoKind::Write,
                per_proc_bytes: 64 * 1024 * 1024,
                ops_per_proc: 256,
                pattern: AccessPattern::Strided { record: 256 * 1024 },
                meta_ops: 4,
                collective_capable: true,
                chunk_reuse_bytes: 0,
                pre_striped: 0,
            }),
        ]
    }

    /// Find an `(attempt)` where the plan draws `kind` for this config.
    fn attempt_with(sim: &Simulator, cfg: &StackConfig, kind: FaultKind) -> u32 {
        let plan = sim.fault.as_ref().unwrap();
        let fp = fingerprint_of(cfg);
        (0..10_000)
            .find(|&a| plan.draw(fp, 0, a) == Some(kind))
            .expect("fault kind never drawn")
    }

    #[test]
    fn no_plan_try_run_matches_run_bitwise() {
        let sim = Simulator::cori_4node(11);
        let s = ParameterSpace::tunio_default();
        let cfg = StackConfig::defaults(&s);
        let (plain, plain_prof) = sim.run_profiled(&phases(), &cfg, 1);
        let (r, p, fault) = sim.try_run_profiled(&phases(), &cfg, 1, 0).unwrap();
        assert_eq!(plain, r);
        assert_eq!(plain_prof, p);
        assert_eq!(fault, None);
    }

    #[test]
    fn inert_plan_is_bitwise_identical_too() {
        let sim = Simulator::cori_4node(11).with_fault_plan(FaultPlan::disabled(5));
        let s = ParameterSpace::tunio_default();
        let cfg = StackConfig::defaults(&s);
        let plain = Simulator::cori_4node(11).run_averaged_profiled(&phases(), &cfg, 3);
        let (r, p, faults) = sim
            .try_run_averaged_profiled(&phases(), &cfg, 3, 0)
            .unwrap();
        assert_eq!(plain.0, r);
        assert_eq!(plain.1, p);
        assert!(faults.is_empty());
    }

    #[test]
    fn transient_fault_kills_the_run() {
        let sim = Simulator::cori_4node(11).with_fault_plan(FaultPlan::chaos(3, 0.4));
        let s = ParameterSpace::tunio_default();
        let cfg = StackConfig::defaults(&s);
        let attempt = attempt_with(&sim, &cfg, FaultKind::Transient);
        let err = sim
            .try_run_profiled(&phases(), &cfg, 0, attempt)
            .unwrap_err();
        assert_eq!(err.fault.kind, FaultKind::Transient);
        assert_eq!(err.fault.attempt, attempt);
    }

    #[test]
    fn straggler_inflates_io_time_and_keeps_attribution() {
        let sim = Simulator::cori_4node(11).with_fault_plan(FaultPlan::chaos(3, 0.4));
        let s = ParameterSpace::tunio_default();
        let cfg = StackConfig::defaults(&s);
        let attempt = attempt_with(&sim, &cfg, FaultKind::Straggler);
        let (clean, _) = sim.run_profiled(&phases(), &cfg, 0);
        let (slow, prof, fault) = sim.try_run_profiled(&phases(), &cfg, 0, attempt).unwrap();
        assert_eq!(fault.unwrap().kind, FaultKind::Straggler);
        assert!((slow.io_time_s / clean.io_time_s - 4.0).abs() < 1e-9);
        assert_eq!(slow.compute_time_s, clean.compute_time_s);
        assert!(prof.attribution_error(&slow) < 1e-9);
    }

    #[test]
    fn ost_flap_slows_wide_stripes() {
        // A severe flap (64 -> 1 OSTs) so the storage path becomes the
        // binding constraint even on the network-rich 4-node cluster.
        let plan = FaultPlan {
            ost_flap_loss: 63,
            ..FaultPlan::chaos(3, 0.4)
        };
        let sim = Simulator::cori_4node(11).with_fault_plan(plan);
        let s = ParameterSpace::tunio_default();
        // A wide-striped config so losing 8 OSTs actually hurts.
        let mut c = s.default_config();
        c.set_gene(tunio_params::ParamId::StripingFactor, 9); // 64 OSTs
        let cfg = c.resolve(&s);
        let attempt = attempt_with(&sim, &cfg, FaultKind::OstFlap);
        let (clean, _) = sim.run_profiled(&phases(), &cfg, 0);
        let (flapped, prof, fault) = sim.try_run_profiled(&phases(), &cfg, 0, attempt).unwrap();
        assert_eq!(fault.unwrap().kind, FaultKind::OstFlap);
        assert!(
            flapped.io_time_s > clean.io_time_s,
            "losing OSTs must cost time: {} vs {}",
            flapped.io_time_s,
            clean.io_time_s
        );
        assert!(prof.attribution_error(&flapped) < 1e-9);
    }

    #[test]
    fn corrupt_fault_poisons_the_report() {
        let sim = Simulator::cori_4node(11).with_fault_plan(FaultPlan::chaos(3, 0.4));
        let s = ParameterSpace::tunio_default();
        let cfg = StackConfig::defaults(&s);
        let attempt = attempt_with(&sim, &cfg, FaultKind::Corrupt);
        let (r, _, fault) = sim.try_run_profiled(&phases(), &cfg, 0, attempt).unwrap();
        assert_eq!(fault.unwrap().kind, FaultKind::Corrupt);
        assert!(r.bytes_written.is_nan());
        assert!(!r.is_sane());
        assert!(r.perf().is_nan(), "corruption must be NaN, not silently ok");
    }

    #[test]
    fn sane_reports_pass_the_validity_gate() {
        let sim = Simulator::cori_4node(11);
        let s = ParameterSpace::tunio_default();
        let cfg = StackConfig::defaults(&s);
        assert!(sim.run(&phases(), &cfg, 0).is_sane());
    }
}
