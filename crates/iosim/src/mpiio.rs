//! MPI-IO-like middleware layer: independent vs. two-phase collective I/O.
//!
//! With `collective_io` disabled every process issues its library-level
//! requests straight to the file system — cheap for large contiguous
//! streams, disastrous for finely interleaved ones. With it enabled the
//! middleware runs two-phase I/O: data is shuffled over the network to
//! `cb_nodes` aggregators which then issue `cb_buffer_size`-sized,
//! well-formed requests. The shuffle costs network time, so collective I/O
//! only wins when it removes enough file-system badness — exactly the
//! trade-off the tuner must learn.

use crate::cluster::ClusterSpec;
use crate::hdf5::LibraryTraffic;
use crate::request::IoPhase;
use tunio_params::StackConfig;

/// What the file system finally sees for one phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FsWorkload {
    /// Total bytes crossing the storage network.
    pub total_bytes: f64,
    /// Total file-system requests.
    pub fs_requests: f64,
    /// Average file-system request size in bytes.
    pub request_size: f64,
    /// Concurrent client streams hitting the file system.
    pub streams: u64,
    /// Network shuffle time paid before/after storage access, seconds.
    pub shuffle_time: f64,
    /// Bytes moved node-to-node by the two-phase shuffle (0 when the
    /// middleware passes requests through).
    pub shuffled_bytes: f64,
    /// Residual irregularity presented to the PFS in `[0, 1]`.
    pub irregularity: f64,
    /// Whether two-phase collective aggregation was actually used.
    pub aggregated: bool,
}

/// Run the middleware layer for one phase.
pub fn middleware(
    phase: &IoPhase,
    traffic: &LibraryTraffic,
    cfg: &StackConfig,
    cluster: &ClusterSpec,
) -> FsWorkload {
    let procs = cluster.procs as f64;
    let total_bytes = traffic.per_proc_bytes * procs;
    let total_ops = traffic.ops_per_proc * procs;
    let irregularity = phase.pattern.irregularity();

    let use_collective = cfg.collective_io && phase.collective_capable;
    if !use_collective {
        // Low-level STDIO buffering (§II-A's low-level library layer):
        // tiny sequential writes from non-collective streams (logging via
        // printf/fprintf) coalesce client-side into libc buffer blocks
        // before reaching the file system.
        const STDIO_BUF: f64 = 1024.0 * 1024.0;
        const STDIO_THRESHOLD: f64 = 64.0 * 1024.0;
        let avg_op = total_bytes / total_ops.max(1.0);
        let fs_requests = if !phase.collective_capable && avg_op < STDIO_THRESHOLD {
            (total_bytes / STDIO_BUF).max(procs)
        } else {
            total_ops.max(1.0)
        };
        return FsWorkload {
            total_bytes,
            fs_requests,
            request_size: total_bytes / fs_requests,
            streams: cluster.procs as u64,
            shuffle_time: 0.0,
            shuffled_bytes: 0.0,
            irregularity,
            aggregated: false,
        };
    }

    // Two-phase collective I/O.
    let aggregators = (cfg.cb_nodes.min(cluster.nodes).max(1)) as f64;

    // Phase 1: shuffle. Each aggregator owns a contiguous file region whose
    // data is scattered across every node, so only ~1/nodes of the bytes are
    // already resident on the right node.
    let resident_fraction = 1.0 / cluster.nodes as f64;
    let shuffled_bytes = total_bytes * (1.0 - resident_fraction.min(1.0));
    let ingest_bw = (aggregators * cluster.node_network_bw).min(cluster.bisection_bw);
    let shuffle_time = if shuffled_bytes > 0.0 {
        shuffled_bytes / ingest_bw + cluster.network_latency * (procs / aggregators).log2().max(1.0)
    } else {
        0.0
    };

    // Phase 2: aggregators flush cb_buffer_size-sized requests. Aggregation
    // linearizes interleaved data, removing most irregularity.
    let request_size = (cfg.cb_buffer_size as f64).min(total_bytes.max(1.0));
    let fs_requests = (total_bytes / request_size).max(1.0);

    FsWorkload {
        total_bytes,
        fs_requests,
        request_size,
        streams: aggregators as u64,
        shuffle_time,
        shuffled_bytes,
        irregularity: irregularity * 0.08,
        aggregated: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{AccessPattern, IoKind};
    use tunio_params::{ParameterSpace, StackConfig};

    const MIB: u64 = 1024 * 1024;

    fn cfg() -> StackConfig {
        StackConfig::defaults(&ParameterSpace::tunio_default())
    }

    fn strided_phase() -> IoPhase {
        IoPhase {
            dataset: "particles".into(),
            kind: IoKind::Write,
            per_proc_bytes: 256 * MIB,
            ops_per_proc: 4096,
            pattern: AccessPattern::Strided { record: 64 * 1024 },
            meta_ops: 4,
            collective_capable: true,
            chunk_reuse_bytes: 0,
            pre_striped: 0,
        }
    }

    fn traffic(p: &IoPhase) -> LibraryTraffic {
        LibraryTraffic {
            per_proc_bytes: p.per_proc_bytes as f64,
            ops_per_proc: p.ops_per_proc as f64,
            amplification: 1.0,
        }
    }

    #[test]
    fn independent_passes_requests_through() {
        let p = strided_phase();
        let cluster = ClusterSpec::cori_4node();
        let fs = middleware(&p, &traffic(&p), &cfg(), &cluster);
        assert!(!fs.aggregated);
        assert_eq!(fs.streams, 128);
        assert_eq!(fs.shuffle_time, 0.0);
        assert_eq!(fs.shuffled_bytes, 0.0);
        assert_eq!(fs.fs_requests, 4096.0 * 128.0);
    }

    #[test]
    fn collective_reduces_requests_and_irregularity() {
        let p = strided_phase();
        let cluster = ClusterSpec::cori_4node();
        let mut c = cfg();
        c.collective_io = true;
        c.cb_nodes = 4;
        c.cb_buffer_size = 64 * MIB;
        let fs = middleware(&p, &traffic(&p), &c, &cluster);
        assert!(fs.aggregated);
        assert_eq!(fs.streams, 4);
        assert!(fs.shuffle_time > 0.0);
        // 4 nodes: 3/4 of the bytes change nodes during the shuffle.
        assert!((fs.shuffled_bytes - fs.total_bytes * 0.75).abs() < 1.0);
        assert!(fs.fs_requests < 1000.0);
        assert!(fs.irregularity < p.pattern.irregularity() / 2.0);
    }

    #[test]
    fn collective_respects_node_cap() {
        let p = strided_phase();
        let cluster = ClusterSpec::cori_4node();
        let mut c = cfg();
        c.collective_io = true;
        c.cb_nodes = 256; // more than the 4 nodes available
        let fs = middleware(&p, &traffic(&p), &c, &cluster);
        assert_eq!(fs.streams, 4);
    }

    #[test]
    fn non_collective_capable_phase_never_aggregates() {
        let mut p = strided_phase();
        p.collective_capable = false;
        let cluster = ClusterSpec::cori_4node();
        let mut c = cfg();
        c.collective_io = true;
        let fs = middleware(&p, &traffic(&p), &c, &cluster);
        assert!(!fs.aggregated);
    }

    #[test]
    fn more_aggregators_shrink_shuffle_time() {
        let p = strided_phase();
        let cluster = ClusterSpec::cori_500node();
        let mut c = cfg();
        c.collective_io = true;
        c.cb_buffer_size = 64 * MIB;
        c.cb_nodes = 4;
        let few = middleware(&p, &traffic(&p), &c, &cluster);
        c.cb_nodes = 128;
        let many = middleware(&p, &traffic(&p), &c, &cluster);
        assert!(many.shuffle_time < few.shuffle_time);
    }
}
