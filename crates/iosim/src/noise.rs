//! Deterministic run-to-run noise, emulating platform volatility.
//!
//! Cori is a shared machine; the paper mitigates volatility by averaging
//! three runs. We reproduce that with a *deterministic* noise source: a
//! multiplier derived by hashing (seed, config fingerprint, run index), so
//! experiments are bit-reproducible while still exercising the averaging
//! machinery and the tuner's robustness to noisy objectives.

/// Deterministic noise generator.
#[derive(Debug, Clone, Copy)]
pub struct NoiseModel {
    /// Base seed mixed into every draw.
    pub seed: u64,
    /// Relative noise amplitude (e.g. 0.05 = ±~5% typical deviation).
    pub amplitude: f64,
}

impl NoiseModel {
    /// Noise with the default ~8% amplitude of a busy shared Lustre.
    pub fn new(seed: u64) -> Self {
        NoiseModel {
            seed,
            amplitude: 0.08,
        }
    }

    /// Noise-free model (for calibration tests).
    pub fn disabled() -> Self {
        NoiseModel {
            seed: 0,
            amplitude: 0.0,
        }
    }

    /// Multiplier in `[0.5, 1.5]` applied to a run's elapsed time, derived
    /// from the configuration fingerprint and run index. The clamp is
    /// symmetric about 1.0, so the expected multiplier is exactly 1.0 at
    /// every amplitude (a one-sided floor would skew the mean upward once
    /// the amplitude is large enough for the bound to bind).
    pub fn time_multiplier(&self, config_fingerprint: u64, run_idx: u32) -> f64 {
        if self.amplitude == 0.0 {
            return 1.0;
        }
        let h = splitmix64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(config_fingerprint)
                .wrapping_add(run_idx as u64),
        );
        // Map to roughly N(0,1) via sum of uniforms (Irwin–Hall with n=4).
        let mut acc = 0.0;
        let mut x = h;
        for _ in 0..4 {
            x = splitmix64(x);
            acc += (x >> 11) as f64 / (1u64 << 53) as f64;
        }
        let z = (acc - 2.0) / (4.0f64 / 12.0).sqrt(); // standardized
        (1.0 + self.amplitude * z).clamp(0.5, 1.5)
    }
}

/// SplitMix64 hash step — small, fast, well-distributed.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stable fingerprint of a configuration's genes for noise derivation.
pub fn fingerprint(genes: &[usize]) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for &g in genes {
        acc = splitmix64(acc ^ g as u64);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_inputs() {
        let n = NoiseModel::new(42);
        assert_eq!(n.time_multiplier(7, 0), n.time_multiplier(7, 0));
        assert_ne!(n.time_multiplier(7, 0), n.time_multiplier(7, 1));
        assert_ne!(n.time_multiplier(7, 0), n.time_multiplier(8, 0));
    }

    #[test]
    fn disabled_noise_is_unity() {
        let n = NoiseModel::disabled();
        assert_eq!(n.time_multiplier(123, 5), 1.0);
    }

    #[test]
    fn multipliers_center_near_one() {
        let n = NoiseModel::new(1);
        let mean: f64 = (0..1000).map(|i| n.time_multiplier(99, i)).sum::<f64>() / 1000.0;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn multipliers_bounded_below() {
        let n = NoiseModel {
            seed: 3,
            amplitude: 0.5,
        };
        for i in 0..1000 {
            assert!(n.time_multiplier(5, i) >= 0.5);
        }
    }

    #[test]
    fn high_amplitude_mean_and_variance_converge() {
        // Regression for the one-sided `.max(0.5)` clamp: at amplitude 0.5
        // the floor binds (|z| can reach ~3.46) and, without a matching
        // ceiling, the sample mean drifts above 1.0. The symmetric clamp
        // keeps the mean at 1.0 and the variance near amplitude².
        let n = NoiseModel {
            seed: 7,
            amplitude: 0.5,
        };
        let draws: Vec<f64> = (0..20_000).map(|i| n.time_multiplier(11, i)).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / draws.len() as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean} should be ~1.0");
        // At amplitude 0.5 the clamp sits one sigma out, so the tails are
        // heavily truncated: Var[clamp(z, ±1)] = E[min(z², 1)] ≈ 0.516 for
        // z ~ N(0,1). The sample variance must land near that, far from 0
        // (no noise) and below amplitude² (no truncation).
        let expect = n.amplitude * n.amplitude;
        assert!(
            var > 0.35 * expect && var < 0.75 * expect,
            "variance {var} vs truncated-normal expectation ~{}",
            0.516 * expect
        );
        // And both bounds are actually exercised at this amplitude.
        assert!(draws.contains(&0.5), "floor should bind");
        assert!(draws.contains(&1.5), "ceiling should bind");
    }

    #[test]
    fn fingerprint_sensitive_to_genes() {
        assert_ne!(fingerprint(&[0, 1, 2]), fingerprint(&[0, 1, 3]));
        assert_ne!(fingerprint(&[0, 1]), fingerprint(&[1, 0]));
        assert_eq!(fingerprint(&[4, 5]), fingerprint(&[4, 5]));
    }
}
