//! Darshan-like I/O characterization.
//!
//! The paper's configuration-evaluation phase monitors bandwidth "using
//! monitoring hooks such as Darshan" (§III-E). This module provides the
//! equivalent observability for the simulated stack: per-dataset counters
//! (bytes, operations, time, achieved bandwidth) collected during a run,
//! plus the classic Darshan-style aggregate summary.

use crate::request::{IoKind, Phase};
use crate::sim::Simulator;
use crate::RunReport;
use serde::Serialize;
use std::collections::BTreeMap;
use tunio_params::StackConfig;

/// Counters for one dataset (Darshan "record").
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct DatasetCounters {
    /// Bytes written to this dataset across all processes.
    pub bytes_written: f64,
    /// Bytes read from this dataset across all processes.
    pub bytes_read: f64,
    /// Write operations.
    pub write_ops: f64,
    /// Read operations.
    pub read_ops: f64,
    /// Metadata time attributed to this dataset, seconds.
    pub meta_time_s: f64,
    /// Raw-data I/O time attributed to this dataset, seconds.
    pub io_time_s: f64,
    /// Number of I/O phases touching this dataset.
    pub phases: u32,
}

impl DatasetCounters {
    /// Achieved bandwidth for this dataset, bytes/s.
    pub fn bandwidth(&self) -> f64 {
        let total = self.bytes_written + self.bytes_read;
        if self.io_time_s > 0.0 {
            total / self.io_time_s
        } else {
            0.0
        }
    }
}

/// A whole run's characterization log.
#[derive(Debug, Clone, Default, Serialize)]
pub struct DarshanLog {
    /// Per-dataset counters, keyed by dataset name.
    pub records: BTreeMap<String, DatasetCounters>,
}

impl DarshanLog {
    /// Total bytes moved across all datasets.
    pub fn total_bytes(&self) -> f64 {
        self.records
            .values()
            .map(|c| c.bytes_written + c.bytes_read)
            .sum()
    }

    /// The dataset that consumed the most I/O time (the tuning target).
    /// Deterministic: ties break to the lexicographically smallest dataset
    /// name, and NaN times are handled by IEEE total order instead of
    /// panicking.
    pub fn hottest_dataset(&self) -> Option<(&str, &DatasetCounters)> {
        self.records
            .iter()
            .max_by(|a, b| {
                a.1.io_time_s
                    .total_cmp(&b.1.io_time_s)
                    .then_with(|| b.0.cmp(a.0))
            })
            .map(|(k, v)| (k.as_str(), v))
    }

    /// Render the classic fixed-width summary table.
    pub fn summary(&self) -> String {
        let mut out = String::from(
            "# dataset                      MiB_w     MiB_r    ops_w    ops_r   io_s  MiB/s\n",
        );
        const MIB: f64 = 1024.0 * 1024.0;
        for (name, c) in &self.records {
            out.push_str(&format!(
                "{:<28} {:>9.1} {:>9.1} {:>8.0} {:>8.0} {:>6.2} {:>6.0}\n",
                name,
                c.bytes_written / MIB,
                c.bytes_read / MIB,
                c.write_ops,
                c.read_ops,
                c.io_time_s,
                c.bandwidth() / MIB,
            ));
        }
        out
    }
}

impl Simulator {
    /// Execute `phases` once, collecting a per-dataset characterization
    /// log alongside the usual [`RunReport`]. Equivalent to running under
    /// Darshan instrumentation: same run, extra counters.
    pub fn run_instrumented(
        &self,
        phases: &[Phase],
        cfg: &StackConfig,
        run_idx: u32,
    ) -> (RunReport, DarshanLog) {
        let full = self.run(phases, cfg, run_idx);
        let mut log = DarshanLog::default();

        // Re-derive per-phase contributions (phases are independent in the
        // model, so per-phase reports decompose exactly, modulo the global
        // noise multiplier which we re-normalize below).
        let mut unnoised_io = 0.0;
        let mut unnoised_meta = 0.0;
        let mut contributions: Vec<(String, IoKind, RunReport)> = Vec::new();
        for phase in phases {
            if let Phase::Io(io) = phase {
                let single = self.run(std::slice::from_ref(phase), cfg, run_idx);
                unnoised_io += single.io_time_s;
                unnoised_meta += single.meta_time_s;
                contributions.push((io.dataset.clone(), io.kind, single));
            }
        }
        // Per-phase runs apply their own noise multiplier; scale so the
        // totals match the full run exactly.
        let io_scale = if unnoised_io > 0.0 {
            full.io_time_s / unnoised_io
        } else {
            1.0
        };
        let meta_scale = if unnoised_meta > 0.0 {
            full.meta_time_s / unnoised_meta
        } else {
            1.0
        };

        for (dataset, kind, r) in contributions {
            let c = log.records.entry(dataset).or_default();
            c.phases += 1;
            c.io_time_s += r.io_time_s * io_scale;
            c.meta_time_s += r.meta_time_s * meta_scale;
            match kind {
                IoKind::Write => {
                    c.bytes_written += r.bytes_written;
                    c.write_ops += r.write_ops;
                }
                IoKind::Read => {
                    c.bytes_read += r.bytes_read;
                    c.read_ops += r.read_ops;
                }
            }
        }
        (full, log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{AccessPattern, IoPhase};
    use tunio_params::{ParameterSpace, StackConfig};

    fn phases() -> Vec<Phase> {
        let mk = |name: &str, kind, bytes: u64| {
            Phase::Io(IoPhase {
                dataset: name.into(),
                kind,
                per_proc_bytes: bytes,
                ops_per_proc: 64,
                pattern: AccessPattern::Contiguous,
                meta_ops: 4,
                collective_capable: true,
                chunk_reuse_bytes: 0,
                pre_striped: 0,
            })
        };
        vec![
            Phase::compute(2.0),
            mk("checkpoint", IoKind::Write, 32 * 1024 * 1024),
            mk("checkpoint", IoKind::Write, 32 * 1024 * 1024),
            mk("input", IoKind::Read, 8 * 1024 * 1024),
        ]
    }

    fn setup() -> (Simulator, StackConfig) {
        let space = ParameterSpace::tunio_default();
        (Simulator::cori_4node(5), StackConfig::defaults(&space))
    }

    #[test]
    fn log_decomposes_the_run_exactly() {
        let (sim, cfg) = setup();
        let (report, log) = sim.run_instrumented(&phases(), &cfg, 0);
        let log_io: f64 = log.records.values().map(|c| c.io_time_s).sum();
        assert!((log_io - report.io_time_s).abs() < 1e-6 * report.io_time_s);
        assert!((log.total_bytes() - (report.bytes_written + report.bytes_read)).abs() < 1.0);
    }

    #[test]
    fn per_dataset_counters_accumulate() {
        let (sim, cfg) = setup();
        let (_, log) = sim.run_instrumented(&phases(), &cfg, 0);
        assert_eq!(log.records.len(), 2);
        let ckpt = &log.records["checkpoint"];
        assert_eq!(ckpt.phases, 2);
        assert!(ckpt.bytes_written > 0.0);
        assert_eq!(ckpt.bytes_read, 0.0);
        let input = &log.records["input"];
        assert!(input.bytes_read > 0.0);
        assert_eq!(input.write_ops, 0.0);
    }

    #[test]
    fn hottest_dataset_is_the_big_writer() {
        let (sim, cfg) = setup();
        let (_, log) = sim.run_instrumented(&phases(), &cfg, 0);
        let (name, _) = log.hottest_dataset().unwrap();
        assert_eq!(name, "checkpoint");
    }

    #[test]
    fn summary_renders_all_records() {
        let (sim, cfg) = setup();
        let (_, log) = sim.run_instrumented(&phases(), &cfg, 0);
        let s = log.summary();
        assert!(s.contains("checkpoint"));
        assert!(s.contains("input"));
        assert!(s.lines().count() >= 3);
    }

    #[test]
    fn bandwidth_is_zero_not_nan_for_zero_time() {
        let c = DatasetCounters {
            bytes_written: 1e9,
            ..Default::default()
        };
        assert_eq!(c.io_time_s, 0.0);
        let bw = c.bandwidth();
        assert!(bw.is_finite());
        assert_eq!(bw, 0.0);
        // A fully-zero record is also finite everywhere.
        let z = DatasetCounters::default();
        assert_eq!(z.bandwidth(), 0.0);
    }

    #[test]
    fn hottest_dataset_tie_breaks_deterministically() {
        let mut log = DarshanLog::default();
        let tied = DatasetCounters {
            io_time_s: 2.0,
            ..Default::default()
        };
        log.records.insert("zeta".into(), tied);
        log.records.insert("alpha".into(), tied);
        log.records.insert(
            "mid".into(),
            DatasetCounters {
                io_time_s: 1.0,
                ..Default::default()
            },
        );
        // Exact tie on io_time_s: the lexicographically smallest name wins,
        // every time.
        for _ in 0..4 {
            assert_eq!(log.hottest_dataset().unwrap().0, "alpha");
        }
    }

    #[test]
    fn empty_run_yields_empty_log() {
        let (sim, cfg) = setup();
        let (_, log) = sim.run_instrumented(&[Phase::compute(1.0)], &cfg, 0);
        assert!(log.records.is_empty());
        assert!(log.hottest_dataset().is_none());
        assert_eq!(log.total_bytes(), 0.0);
    }
}
