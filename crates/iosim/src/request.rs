//! Workload representation: phases of compute and I/O.
//!
//! Workloads describe their behaviour *per process* in aggregate terms
//! (bytes and operation counts), which keeps simulation cost independent of
//! data volume — essential for the 500-node, multi-TB BD-CATS runs.

use serde::{Deserialize, Serialize};

/// Direction of an I/O phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoKind {
    /// Data flows from processes to storage.
    Write,
    /// Data flows from storage to processes.
    Read,
}

/// Spatial pattern of the accesses issued by each process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Each process accesses one contiguous file region.
    Contiguous,
    /// Processes interleave fixed-size records (classic N-proc strided
    /// checkpoint layout); `record` is the record size in bytes.
    Strided {
        /// Size of each interleaved record in bytes.
        record: u64,
    },
    /// Accesses land at effectively random offsets (index lookups etc.).
    Random,
}

impl AccessPattern {
    /// How "irregular" the pattern is for the file system, in `[0, 1]`:
    /// 0 = perfectly contiguous, 1 = fully random.
    pub fn irregularity(&self) -> f64 {
        match self {
            AccessPattern::Contiguous => 0.0,
            AccessPattern::Strided { record } => {
                // Finer interleaving is harder on the PFS: 16 MiB records
                // behave almost contiguously, 4 KiB records almost randomly.
                let r = (*record).max(1) as f64;
                (1.0 - (r.log2() - 12.0) / 12.0).clamp(0.05, 0.95)
            }
            AccessPattern::Random => 1.0,
        }
    }
}

/// One bulk-I/O phase, described per process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IoPhase {
    /// Name of the dataset/file being accessed (for reports).
    pub dataset: String,
    /// Read or write.
    pub kind: IoKind,
    /// Bytes transferred by *each* process in this phase.
    pub per_proc_bytes: u64,
    /// Number of library-level I/O calls each process issues.
    pub ops_per_proc: u64,
    /// Spatial access pattern.
    pub pattern: AccessPattern,
    /// HDF5-level metadata operations accompanying this phase
    /// (dataset create/open/close, attribute writes), per process.
    pub meta_ops: u64,
    /// Whether the phase is a collective access that the middleware may
    /// aggregate (independent POSIX-style streams cannot be).
    pub collective_capable: bool,
    /// Working-set of chunked data each process re-touches, in bytes; the
    /// chunk cache absorbs re-accesses when it is at least this large.
    /// Zero for purely streaming phases.
    pub chunk_reuse_bytes: u64,
    /// For reads of pre-existing datasets: the stripe count the input was
    /// written with. Read parallelism is at least this wide regardless of
    /// the tunable striping, which only governs files the job creates.
    pub pre_striped: u32,
}

impl IoPhase {
    /// Mean size of one library-level call, in bytes.
    pub fn avg_op_size(&self) -> f64 {
        self.per_proc_bytes as f64 / self.ops_per_proc.max(1) as f64
    }
}

/// One step of a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Phase {
    /// Pure computation (or communication) lasting `seconds` of simulated
    /// time; no storage traffic.
    Compute {
        /// Duration in simulated seconds.
        seconds: f64,
    },
    /// Bulk I/O.
    Io(IoPhase),
}

impl Phase {
    /// Convenience constructor for a compute phase.
    pub fn compute(seconds: f64) -> Phase {
        Phase::Compute { seconds }
    }

    /// Whether this is an I/O phase.
    pub fn is_io(&self) -> bool {
        matches!(self, Phase::Io(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn irregularity_ordering() {
        let contig = AccessPattern::Contiguous.irregularity();
        let coarse = AccessPattern::Strided {
            record: 16 * 1024 * 1024,
        }
        .irregularity();
        let fine = AccessPattern::Strided { record: 4 * 1024 }.irregularity();
        let random = AccessPattern::Random.irregularity();
        assert!(contig < coarse);
        assert!(coarse < fine);
        assert!(fine <= random);
    }

    #[test]
    fn avg_op_size_guards_zero_ops() {
        let phase = IoPhase {
            dataset: "d".into(),
            kind: IoKind::Write,
            per_proc_bytes: 100,
            ops_per_proc: 0,
            pattern: AccessPattern::Contiguous,
            meta_ops: 0,
            collective_capable: true,
            chunk_reuse_bytes: 0,
            pre_striped: 0,
        };
        assert_eq!(phase.avg_op_size(), 100.0);
    }

    #[test]
    fn phase_helpers() {
        assert!(!Phase::compute(1.0).is_io());
    }
}
