//! End-to-end trace round-trip: run a real campaign with the JSON-lines
//! sink installed, then feed the file through the tunio-report summarizer
//! and check the reconstruction against the in-process `TuningTrace`.

use tunio::pipeline::{run_campaign, CampaignSpec, PipelineKind};
use tunio_trace::report;
use tunio_workloads::{hacc, Variant};

#[test]
fn campaign_jsonl_trace_round_trips_through_report() {
    let path = std::env::temp_dir().join("tunio_trace_roundtrip.jsonl");
    tunio_trace::install_jsonl_sink(&path).expect("open sink");

    let spec = CampaignSpec {
        app: hacc(),
        variant: Variant::Kernel,
        kind: PipelineKind::HsTunerHeuristic,
        max_iterations: 12,
        population: 6,
        seed: 7,
        large_scale: false,
    };
    let outcome = run_campaign(&spec).expect("fault-free campaign");
    tunio_trace::clear_sink();

    let text = std::fs::read_to_string(&path).expect("read trace");
    std::fs::remove_file(&path).ok();
    let records = report::parse_jsonl(&text).expect("parse trace");
    let summaries = report::summarize(&records);
    assert_eq!(summaries.len(), 1, "one campaign in the trace");
    let s = &summaries[0];

    // The reconstruction must match the in-process trace exactly.
    assert_eq!(s.generations.len(), outcome.trace.iterations() as usize);
    assert_eq!(s.best_perf, Some(outcome.trace.best_perf));
    assert_eq!(s.default_perf, Some(outcome.trace.default_perf));
    assert_eq!(s.stopped_early, Some(outcome.trace.stopped_early));
    assert_eq!(s.stopper_name.as_deref(), Some("heuristic-5pct-5iter"));
    assert_eq!(s.label.as_deref(), Some("HSTuner (Heuristic Stop)"));
    assert_eq!(s.app.as_deref(), Some("hacc"));
    for (row, rec) in s.generations.iter().zip(&outcome.trace.records) {
        assert_eq!(row.iteration, rec.iteration as u64);
        assert_eq!(row.best_perf, rec.best_perf);
        assert_eq!(row.cumulative_cost_s, rec.cumulative_cost_s);
    }

    // Every generation got a heuristic stop verdict, and the cache
    // counters made it into the summary via the metric flush.
    assert_eq!(s.decisions.len(), s.generations.len());
    assert!(s.evaluations.unwrap() > 0);
    assert!(s.cache_hits.is_some());

    // The rendered report mentions the headline numbers.
    let rendered = report::render(s);
    assert!(rendered.contains("stop reason"));
    assert!(rendered.contains("eval cache"));
    if outcome.trace.stopped_early {
        assert!(rendered.contains("heuristic-5pct-5iter"));
    }
}
