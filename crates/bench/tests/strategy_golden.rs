//! Golden-output gate for the asynchronous Bayesian-optimization
//! backend, plus cross-backend smoke invariants.
//!
//! The BO smoke campaign (HACC kernel, 8 generations × 4, seed 7) is
//! fully deterministic — the scheduler commits observations in proposal
//! order regardless of worker timing — so its `outcome_json` dump is a
//! stable fingerprint of the surrogate, the acquisition function and
//! the scheduler. Any drift (a refit reorder, an RNG change, a commit
//! off-by-one) shows up as a byte diff against the blessed baseline.
//!
//! When a change intentionally moves the BO stream, re-bless with:
//!
//! ```text
//! TUNIO_BLESS=1 cargo test -p tunio-bench --test strategy_golden
//! ```
//!
//! and commit the updated baseline together with the change.

use std::path::PathBuf;
use tunio::pipeline::{
    outcome_json, run_strategy_campaign_opts, CampaignOptions, CampaignSpec, PipelineKind,
    StrategyKind,
};
use tunio_workloads::{hacc, Variant};

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/bo_smoke.json")
}

fn smoke_spec() -> CampaignSpec {
    CampaignSpec {
        app: hacc(),
        variant: Variant::Kernel,
        kind: PipelineKind::HsTunerNoStop,
        max_iterations: 8,
        population: 4,
        seed: 7,
        large_scale: false,
    }
}

fn run(strategy: StrategyKind, threads: usize) -> String {
    let opts = CampaignOptions {
        threads: Some(threads),
        ..CampaignOptions::default()
    };
    let outcome = run_strategy_campaign_opts(&smoke_spec(), strategy, &opts)
        .expect("smoke campaign has no checkpoint, so no failure path");
    let stats = outcome.scheduler.expect("strategy campaigns report stats");
    assert_eq!(
        stats.committed,
        32,
        "{}: exact 8x4 budget",
        strategy.label()
    );
    assert_eq!(stats.starvations, 0, "{}", strategy.label());
    if !matches!(strategy, StrategyKind::Ga) {
        assert_eq!(
            stats.barrier_stalls,
            0,
            "{}: asynchronous backends never stall",
            strategy.label()
        );
    }
    outcome_json(&outcome)
}

/// The BO smoke dump matches the blessed baseline byte-for-byte, at
/// one worker thread and at three.
#[test]
fn bo_smoke_matches_golden_baseline() {
    let serial = run(StrategyKind::Bo, 1);
    let threaded = run(StrategyKind::Bo, 3);
    assert_eq!(
        serial, threaded,
        "BO outcome must not depend on thread count"
    );

    let path = baseline_path();
    if std::env::var_os("TUNIO_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, &serial).expect("write BO baseline");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing BO baseline {} ({e}); generate it with \
             TUNIO_BLESS=1 cargo test -p tunio-bench --test strategy_golden",
            path.display()
        )
    });
    assert_eq!(
        serial, golden,
        "BO campaign drifted from the blessed baseline; if intentional, \
         re-bless with TUNIO_BLESS=1 cargo test -p tunio-bench --test strategy_golden"
    );
}

/// Every backend completes the smoke budget deterministically across
/// thread counts (the golden file pins only BO; this pins the rest).
#[test]
fn every_backend_is_thread_invariant_on_the_smoke_campaign() {
    for strategy in StrategyKind::ALL {
        let serial = run(strategy, 1);
        let threaded = run(strategy, 3);
        assert_eq!(
            serial,
            threaded,
            "{}: outcome must not depend on thread count",
            strategy.label()
        );
    }
}
