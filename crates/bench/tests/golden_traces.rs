//! Golden-trace regression tests.
//!
//! Reduced-scale versions of the Fig 2 and Fig 10(a) series are
//! regenerated on every run and compared byte-for-byte against JSON
//! snapshots committed under `tests/golden/`. The evaluation engine's
//! determinism guarantee (see `tunio_tuner::engine`) is what makes
//! byte-exact snapshots possible.
//!
//! When a change intentionally moves the numbers, re-bless with:
//!
//! ```text
//! TUNIO_BLESS=1 cargo test -p tunio-bench --test golden_traces
//! ```
//!
//! and commit the updated files together with the change that moved them.

use std::path::PathBuf;
use tunio::pipeline::{CampaignSpec, PipelineKind};
use tunio_bench::{labeled_campaign, LabeledTrace};
use tunio_workloads::{flash, hacc, vpic, Variant};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, traces: &[LabeledTrace]) {
    let actual = serde_json::to_string_pretty(&traces.to_vec()).expect("traces serialize");
    let path = golden_path(name);
    if std::env::var_os("TUNIO_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, &actual).expect("write golden snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             TUNIO_BLESS=1 cargo test -p tunio-bench --test golden_traces",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "golden trace {name} diverged; if the change is intentional, re-bless with \
         TUNIO_BLESS=1 cargo test -p tunio-bench --test golden_traces"
    );
}

#[test]
fn fig02_tuning_curves_match_golden() {
    // Reduced-scale Fig 2: HSTuner curves on the three kernels.
    let apps = [("HACC", hacc()), ("FLASH", flash()), ("VPIC", vpic())];
    let mut traces = Vec::new();
    for (name, app) in apps {
        let spec = CampaignSpec {
            app,
            variant: Variant::Kernel,
            kind: PipelineKind::HsTunerNoStop,
            max_iterations: 10,
            population: 6,
            seed: 2024,
            large_scale: false,
        };
        traces.push(labeled_campaign(name, &spec));
    }
    check_golden("fig02_tuning_curves.json", &traces);
}

#[test]
fn fig10a_early_stop_series_match_golden() {
    // Reduced-scale Fig 10(a): stopping policies on HACC.
    let spec = |kind| CampaignSpec {
        app: hacc(),
        variant: Variant::Kernel,
        kind,
        max_iterations: 12,
        population: 6,
        seed: 7,
        large_scale: false,
    };
    let traces = vec![
        labeled_campaign("Full budget (no stop)", &spec(PipelineKind::HsTunerNoStop)),
        labeled_campaign("TunIO RL early stop", &spec(PipelineKind::RlStopOnly)),
        labeled_campaign(
            "Heuristic stop (5%/5it)",
            &spec(PipelineKind::HsTunerHeuristic),
        ),
    ];
    check_golden("fig10a_early_stop_bw.json", &traces);
}
