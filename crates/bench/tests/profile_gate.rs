//! CI perf-regression gate over the smoke campaign's attribution profile.
//!
//! The smoke campaign (HACC kernel, TunIO pipeline, 20 generations,
//! seed 2024) is fully deterministic, so its per-layer profile is a
//! stable fingerprint of the simulator's cost model. The gate compares
//! the current profile against a blessed JSON baseline with a 15%
//! noise tolerance: any layer whose self time regresses past that fails
//! the build.
//!
//! When a change intentionally moves the cost model, re-bless with:
//!
//! ```text
//! TUNIO_BLESS=1 cargo test -p tunio-bench --test profile_gate
//! ```
//!
//! and commit the updated baseline together with the change.

use std::path::PathBuf;
use tunio::pipeline::{run_campaign, CampaignOutcome, CampaignSpec, PipelineKind};
use tunio_iosim::{compare_profiles, render_diff, Layer, Profile};
use tunio_trace::report;
use tunio_workloads::{hacc, Variant};

/// Layer self-time regressions beyond this fraction fail the gate.
const TOLERANCE: f64 = 0.15;

fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/profile_smoke.json")
}

/// The CI smoke campaign (same spec as the `trace_campaign` binary).
fn smoke_spec() -> CampaignSpec {
    CampaignSpec {
        app: hacc(),
        variant: Variant::Kernel,
        kind: PipelineKind::TunIo,
        max_iterations: 20,
        population: 6,
        seed: 2024,
        large_scale: false,
    }
}

#[test]
fn smoke_profile_passes_regression_gate() {
    let outcome = run_campaign(&smoke_spec()).expect("fault-free campaign");
    let profile = &outcome.profile;

    // Acceptance: the attribution partition must reconstruct the
    // campaign's charged simulated time to well within 1%.
    let total = profile.total_time_s();
    assert!(total > 0.0, "smoke campaign must charge simulated time");
    let parts =
        profile.io_time_s() + profile.get(Layer::Compute).self_s + profile.get(Layer::Mds).self_s;
    assert!(
        (parts - total).abs() <= 0.01 * total,
        "layer self times must sum to the total: {parts} vs {total}"
    );

    let path = baseline_path();
    if std::env::var_os("TUNIO_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, profile.to_json()).expect("write profile baseline");
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing profile baseline {} ({e}); generate it with \
             TUNIO_BLESS=1 cargo test -p tunio-bench --test profile_gate",
            path.display()
        )
    });
    let baseline = Profile::from_json(&text).expect("baseline parses");
    let deltas = compare_profiles(&baseline, profile, TOLERANCE);
    let regressed: Vec<_> = deltas.iter().filter(|d| d.regressed).collect();
    assert!(
        regressed.is_empty(),
        "layer-time regression beyond {:.0}%:\n{}\nif intentional, re-bless with \
         TUNIO_BLESS=1 cargo test -p tunio-bench --test profile_gate",
        TOLERANCE * 100.0,
        render_diff(&deltas)
    );
}

#[test]
fn gate_flags_injected_two_x_slowdown() {
    // Acceptance criterion: a synthetic 2× slowdown of a single layer
    // must trip the gate. Inject it by re-charging one layer's own self
    // time on top of itself.
    let outcome = run_campaign(&smoke_spec()).expect("fault-free campaign");
    let baseline = &outcome.profile;
    let mut slowed = baseline.clone();
    let lustre = baseline.get(Layer::LustreData);
    assert!(lustre.self_s > 0.0, "smoke campaign exercises Lustre");
    slowed.add(Layer::LustreData, lustre.self_s, 0.0, 0.0);

    let deltas = compare_profiles(baseline, &slowed, TOLERANCE);
    let regressed: Vec<_> = deltas.iter().filter(|d| d.regressed).collect();
    assert_eq!(
        regressed.len(),
        1,
        "exactly the slowed layer regresses:\n{}",
        render_diff(&deltas)
    );
    assert_eq!(regressed[0].layer, Layer::LustreData);
    assert!((regressed[0].pct_change() - 100.0).abs() < 1e-6);

    // And the unperturbed profile passes its own gate.
    let clean = compare_profiles(baseline, baseline, TOLERANCE);
    assert!(clean.iter().all(|d| !d.regressed));
}

#[test]
fn trace_carries_layer_events_and_report_renders_attribution() {
    // The trace-side view of the tentpole: `profile.layer` events per
    // generation, folded by tunio-report into a table and tree. Memory
    // sink installation is process-global, so this is the only test in
    // this binary that touches the tracer.
    let sink = tunio_trace::install_memory_sink();
    let outcome: CampaignOutcome = run_campaign(&smoke_spec()).expect("fault-free campaign");
    tunio_trace::clear_sink();
    let records = sink.take();

    let layer_events: Vec<_> = records
        .iter()
        .filter(|r| r.name == "profile.layer")
        .collect();
    assert!(
        !layer_events.is_empty(),
        "campaign must emit profile.layer events when tracing is on"
    );

    let summaries = report::summarize(&records);
    assert_eq!(summaries.len(), 1);
    let s = &summaries[0];
    assert!(!s.layers.is_empty(), "summary folds layer events");

    // Event deltas cover everything the engine charged after the
    // baseline snapshot (the default evaluation), so the trace-derived
    // total is positive and bounded by the engine's profile.
    let event_total: f64 = s.layers.iter().map(|t| t.self_s).sum();
    let engine_total = outcome.profile.total_time_s();
    assert!(event_total > 0.0);
    assert!(
        event_total <= engine_total * (1.0 + 1e-9),
        "trace total {event_total} cannot exceed engine total {engine_total}"
    );

    let text = report::render(s);
    assert!(text.contains("layer attribution (self time)"), "{text}");
    for layer in ["hdf5", "mpiio", "lustre.data", "lustre.rpc", "mds"] {
        assert!(
            text.contains(layer),
            "report missing layer {layer}:\n{text}"
        );
    }
}
