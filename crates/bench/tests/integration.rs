//! Integration tests spanning the whole stack: source discovery →
//! workload variants → simulator → GA pipeline → TunIO agents → metrics.
//!
//! Each test asserts a *shape* the paper's evaluation reports, at reduced
//! scale so the suite stays fast in debug builds.

use tunio::pipeline::{run_campaign, CampaignSpec, PipelineKind};
use tunio::roti::{peak_roti, roti_curve};
use tunio::TunIo;
use tunio_discovery::DiscoveryOptions;
use tunio_params::{ParamId, ParameterSpace};
use tunio_workloads::{bdcats, hacc, macsio_vpic_dipole, Variant};

fn spec(kind: PipelineKind, variant: Variant, iters: u32, seed: u64) -> CampaignSpec {
    CampaignSpec {
        app: hacc(),
        variant,
        kind,
        max_iterations: iters,
        population: 6,
        seed,
        large_scale: false,
    }
}

#[test]
fn source_to_tuned_configuration_end_to_end() {
    // Discover the kernel from real (sample) source code…
    let kernel =
        TunIo::discover_io(tunio_cminus::samples::HACC_IO, &DiscoveryOptions::default()).unwrap();
    assert!(kernel.has_io());
    let variant = kernel.variant().unwrap();

    // …then tune the matching workload variant with the full pipeline.
    let outcome = run_campaign(&spec(PipelineKind::TunIo, variant, 15, 5)).unwrap();
    assert!(outcome.trace.best_perf > 1.5 * outcome.trace.default_perf);
    // The tuned configuration must enable the known key parameter.
    assert_eq!(
        outcome.trace.best_config.gene(ParamId::CollectiveIo),
        1,
        "a good HACC configuration uses collective I/O: {}",
        outcome
            .trace
            .best_config
            .describe_changes(&ParameterSpace::tunio_default())
    );
}

#[test]
fn campaigns_are_deterministic_across_reruns() {
    let a = run_campaign(&spec(PipelineKind::TunIo, Variant::Kernel, 10, 77)).unwrap();
    let b = run_campaign(&spec(PipelineKind::TunIo, Variant::Kernel, 10, 77)).unwrap();
    assert_eq!(a.trace.iterations(), b.trace.iterations());
    assert_eq!(a.trace.best_perf, b.trace.best_perf);
    assert_eq!(a.trace.best_config, b.trace.best_config);
}

#[test]
fn kernel_tuning_is_cheaper_at_equal_quality() {
    // Fig 8a's claim at reduced scale: same pipeline, kernel vs full app.
    let full = run_campaign(&spec(PipelineKind::HsTunerNoStop, Variant::Full, 12, 9)).unwrap();
    let kern = run_campaign(&spec(PipelineKind::HsTunerNoStop, Variant::Kernel, 12, 9)).unwrap();
    assert!(kern.trace.total_cost_s() < full.trace.total_cost_s());
    // Kernel tuning finds a configuration of comparable quality.
    assert!(kern.trace.best_perf > 0.8 * full.trace.best_perf);
}

#[test]
fn loop_reduction_multiplies_roti() {
    // Fig 8b's claim: loop reduction boosts peak RoTI by a large factor.
    let mut full_spec = spec(PipelineKind::HsTunerNoStop, Variant::Full, 12, 11);
    full_spec.app = macsio_vpic_dipole();
    let mut red_spec = full_spec.clone();
    red_spec.variant = Variant::ReducedKernel {
        keep_fraction: 0.01,
    };
    let full = run_campaign(&full_spec).unwrap();
    let reduced = run_campaign(&red_spec).unwrap();
    let full_peak = peak_roti(&full.trace).map(|p| p.roti).unwrap_or(0.0);
    let red_peak = peak_roti(&reduced.trace).map(|p| p.roti).unwrap_or(0.0);
    assert!(
        red_peak > 3.0 * full_peak,
        "reduced {red_peak:.1} vs full {full_peak:.1}"
    );
}

#[test]
fn early_stoppers_save_budget_without_losing_everything() {
    let no_stop = run_campaign(&spec(PipelineKind::HsTunerNoStop, Variant::Kernel, 30, 7)).unwrap();
    let rl = run_campaign(&spec(PipelineKind::RlStopOnly, Variant::Kernel, 30, 7)).unwrap();
    assert!(rl.trace.total_cost_s() <= no_stop.trace.total_cost_s());
    assert!(
        rl.trace.best_perf > 0.55 * no_stop.trace.best_perf,
        "rl {} vs no-stop {}",
        rl.trace.best_perf,
        no_stop.trace.best_perf
    );
}

#[test]
fn bdcats_large_scale_campaign_runs() {
    // Smoke the 500-node path end to end (Fig 11's setting, short budget).
    let outcome = run_campaign(&CampaignSpec {
        app: bdcats(),
        variant: Variant::Kernel,
        kind: PipelineKind::HsTunerHeuristic,
        max_iterations: 12,
        population: 6,
        seed: 4,
        large_scale: true,
    })
    .unwrap();
    assert!(outcome.trace.best_perf > outcome.trace.default_perf);
    // perf should land in tens of GiB/s, not single digits or thousands.
    let gibs = outcome.trace.best_perf / (1u64 << 30) as f64;
    assert!((1.0..1000.0).contains(&gibs), "{gibs} GiB/s");
}

#[test]
fn roti_curves_are_finite_and_positive() {
    let outcome = run_campaign(&spec(
        PipelineKind::HsTunerHeuristic,
        Variant::Kernel,
        20,
        13,
    ))
    .unwrap();
    for p in roti_curve(&outcome.trace) {
        assert!(p.roti.is_finite());
        assert!(p.roti >= 0.0);
        assert!(p.minutes > 0.0);
    }
}

#[test]
fn table_i_api_drives_a_manual_loop() {
    let space = ParameterSpace::tunio_default();
    let mut tunio = TunIo::pretrained(&space, tunio_iosim::ClusterSpec::cori_4node(), 15, 21);
    let mut current = ParamId::ALL.to_vec();
    let mut stopped = false;
    for round in 1..=15 {
        current = tunio.subset_picker(1e9 + round as f64 * 1e7, &current);
        assert!(!current.is_empty());
        if tunio.stop(round, 1e9 + round as f64 * 1e7) == tunio::api::StopDecision::Stop {
            stopped = true;
            break;
        }
    }
    assert!(stopped, "must stop by the budget");
}
