//! Serial-vs-parallel trace equality.
//!
//! This lives in its own test binary because it mutates
//! `RAYON_NUM_THREADS`, and environment mutation must not race other
//! tests' reads in the same process.

use tunio::pipeline::{run_campaign, CampaignSpec, PipelineKind};
use tunio_workloads::{hacc, Variant};

#[test]
fn thread_count_does_not_change_the_trace() {
    // Serial (one rayon worker) vs. a fixed pool vs. the machine default.
    // The env var only changes how many threads evaluate a generation; by
    // the engine's determinism guarantee the trace must not move.
    let spec = CampaignSpec {
        app: hacc(),
        variant: Variant::Kernel,
        kind: PipelineKind::HsTunerNoStop,
        max_iterations: 8,
        population: 6,
        seed: 13,
        large_scale: false,
    };
    let trace_json = |spec: &CampaignSpec| {
        serde_json::to_string(&run_campaign(spec).expect("fault-free campaign").trace)
            .expect("trace serializes")
    };

    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = trace_json(&spec);
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let parallel = trace_json(&spec);
    std::env::remove_var("RAYON_NUM_THREADS");
    let default_threads = trace_json(&spec);

    assert_eq!(
        serial, parallel,
        "1-thread and 4-thread traces must match bitwise"
    );
    assert_eq!(
        serial, default_threads,
        "1-thread and default-thread traces must match bitwise"
    );
}
