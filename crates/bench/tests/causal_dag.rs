//! Structural acceptance for causal tracing: a strategy campaign run
//! across 4 scheduler threads emits spans whose parent links form a
//! single rooted DAG, and the timeline reconstructed from those spans
//! partitions the campaign's wall clock exactly.
//!
//! The memory sink is process-global, so this file holds exactly one
//! test.

use std::collections::{HashMap, HashSet};
use tunio::pipeline::{
    run_strategy_campaign_opts, CampaignOptions, CampaignSpec, PipelineKind, StrategyKind,
};
use tunio_trace::timeline::{self, Segment};
use tunio_workloads::{hacc, Variant};

#[test]
fn strategy_campaign_spans_form_a_single_rooted_dag_with_an_exact_timeline() {
    let wal = std::env::temp_dir().join("tunio_causal_dag.jsonl");
    let _ = std::fs::remove_file(&wal);
    let sink = tunio_trace::install_memory_sink();

    let spec = CampaignSpec {
        app: hacc(),
        variant: Variant::Kernel,
        kind: PipelineKind::TunIo,
        max_iterations: 6,
        population: 8,
        seed: 11,
        large_scale: false,
    };
    let opts = CampaignOptions {
        checkpoint: Some(wal.clone()),
        threads: Some(4),
        ..CampaignOptions::default()
    };
    let outcome =
        run_strategy_campaign_opts(&spec, StrategyKind::Bo, &opts).expect("fault-free campaign");
    tunio_trace::clear_sink();
    let records = sink.take();
    let _ = std::fs::remove_file(&wal);

    // --- DAG structure ------------------------------------------------
    let spans: Vec<_> = records.iter().filter(|r| r.span_id.is_some()).collect();
    assert!(!spans.is_empty(), "campaign emitted no spans");

    // One campaign, one trace: every span carries the same trace id.
    let trace_ids: HashSet<u64> = spans.iter().filter_map(|r| r.trace_id).collect();
    assert_eq!(
        trace_ids.len(),
        1,
        "spans span multiple traces: {trace_ids:?}"
    );

    // Span ids are unique; exactly one root; every parent link resolves
    // to an emitted span — no orphans even though simulation spans are
    // emitted from 4 evaluator threads and proposal spans from the
    // scheduler thread.
    let mut by_id: HashMap<u64, &tunio_trace::Record> = HashMap::new();
    for s in &spans {
        let prev = by_id.insert(s.span_id.unwrap(), s);
        assert!(prev.is_none(), "duplicate span id {:?}", s.span_id);
    }
    let roots: Vec<_> = spans.iter().filter(|s| s.parent_id.is_none()).collect();
    assert_eq!(roots.len(), 1, "expected exactly one root span");
    assert_eq!(roots[0].name, "campaign");
    for s in &spans {
        if let Some(parent) = s.parent_id {
            assert!(
                by_id.contains_key(&parent),
                "span {:?} ({}) has unresolved parent {parent}",
                s.span_id,
                s.name
            );
        }
    }

    // The work actually fanned out: enough simulations for 4 threads,
    // plus proposal and WAL spans from the scheduler side, all in the
    // same trace.
    let count = |name: &str| spans.iter().filter(|s| s.name == name).count();
    assert!(count("eval.simulate") >= 8, "too few simulation spans");
    assert!(count("strategy.propose") >= 1, "no proposal spans");
    assert!(count("wal.append") >= 1, "no WAL spans");

    // --- timeline -----------------------------------------------------
    let timelines = timeline::from_records(&records);
    assert_eq!(timelines.len(), 1, "one trace, one timeline");
    let t = &timelines[0];
    assert!(t.complete, "root closed, so the timeline is complete");
    assert!(t.wall_us > 0, "campaign took measurable wall time");

    // The partition invariant: exclusive segments sum to the wall clock
    // exactly (u64 equality, not within-epsilon).
    let sum: u64 = t.segments.iter().map(|(_, us)| *us).sum();
    assert_eq!(sum, t.wall_us, "segments must partition the wall clock");
    assert!(t.segment_us(Segment::Simulation) > 0, "{t:?}");

    // Tracing must not dominate its own measurement: the self-observed
    // overhead segment stays under 2% of the campaign's wall time.
    let overhead = t.segment_us(Segment::TraceOverhead);
    assert!(
        (overhead as f64) < 0.02 * t.wall_us as f64,
        "trace overhead {overhead}us exceeds 2% of wall {}us",
        t.wall_us
    );

    // The critical path descends from the root into real work.
    assert_eq!(
        t.critical_path.first().map(|s| s.name.as_str()),
        Some("campaign")
    );
    assert!(t.critical_path.len() >= 2, "{:?}", t.critical_path);

    // The outcome's live breakdown is the same reconstruction the
    // offline path produces from the raw records.
    let live = outcome
        .wall_breakdown
        .as_ref()
        .expect("tracing was enabled, so the outcome carries a breakdown");
    assert_eq!(live, t, "live and offline reconstructions diverged");
}
