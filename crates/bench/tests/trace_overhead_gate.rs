//! CI gate on the cost of *disabled* tracing.
//!
//! The no-op-sink contract says an uninstrumented process pays one
//! relaxed atomic load (plus the unused fields vec) per call site —
//! measured at ~47 ns/event on the CI baseline. The gate holds the
//! min-of-batches cost under 2× that budget so instrumentation can keep
//! spreading through hot paths without anyone re-litigating its price.
//!
//! The strict threshold only applies to optimized builds (CI runs this
//! with `--release`); debug builds assert a loose sanity bound.

use std::hint::black_box;
use std::time::Instant;
use tunio_trace as trace;

/// 2× the measured 47 ns/event baseline.
const RELEASE_GATE_NS: f64 = 94.0;
/// Debug builds only guard against catastrophic regressions.
const DEBUG_GATE_NS: f64 = 5_000.0;

#[test]
fn disabled_tracing_stays_within_its_event_budget() {
    trace::clear_sink();
    assert!(!trace::enabled(), "gate must measure the disabled path");

    const BATCH: u32 = 100_000;
    const ROUNDS: usize = 8;
    // Min of batches: scheduler noise only ever inflates a batch, so the
    // minimum is the honest estimate of the per-event cost.
    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let t0 = Instant::now();
        for i in 0..BATCH {
            trace::event(black_box("gate.event"), vec![("i", u64::from(i).into())]);
        }
        let ns = t0.elapsed().as_nanos() as f64 / f64::from(BATCH);
        best = best.min(ns);
    }

    let gate = if cfg!(debug_assertions) {
        DEBUG_GATE_NS
    } else {
        RELEASE_GATE_NS
    };
    assert!(
        best < gate,
        "disabled tracing costs {best:.1} ns/event (gate: {gate} ns)"
    );
}
