//! Deterministic-replay suite: the evaluation engine must produce
//! bitwise-identical tuning traces regardless of thread count, evaluation
//! order, or rerun — the property every golden-trace and figure
//! regression test in this crate relies on.
//!
//! Traces are compared through their serialized JSON, so "equal" here
//! means equal down to the last bit of every float.

use tunio::pipeline::{run_campaign, CampaignSpec, PipelineKind};
use tunio_workloads::{hacc, Variant};

fn hacc_spec(kind: PipelineKind, seed: u64) -> CampaignSpec {
    CampaignSpec {
        app: hacc(),
        variant: Variant::Kernel,
        kind,
        max_iterations: 8,
        population: 6,
        seed,
        large_scale: false,
    }
}

fn trace_json(spec: &CampaignSpec) -> String {
    serde_json::to_string(&run_campaign(spec).expect("fault-free campaign").trace)
        .expect("trace serializes")
}

#[test]
fn same_seed_reruns_are_bitwise_identical() {
    // The full TunIO pipeline: offline sweep + PCA, smart-config subset
    // picking, RL early stopping, GA tuning — twice, same seed.
    let spec = hacc_spec(PipelineKind::TunIo, 11);
    assert_eq!(
        trace_json(&spec),
        trace_json(&spec),
        "two runs of the full pipeline with one seed must match bitwise"
    );
}

#[test]
fn all_pipeline_kinds_replay_deterministically() {
    for kind in [
        PipelineKind::HsTunerNoStop,
        PipelineKind::HsTunerHeuristic,
        PipelineKind::ImpactFirstOnly,
        PipelineKind::RlStopOnly,
    ] {
        let spec = hacc_spec(kind, 17);
        assert_eq!(
            trace_json(&spec),
            trace_json(&spec),
            "pipeline {kind:?} must replay identically"
        );
    }
}
