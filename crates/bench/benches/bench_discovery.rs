//! Criterion benches: Application I/O Discovery cost.
//!
//! Discovery runs once per tuning campaign (§III-B: "the application has
//! to be passed through this component only once"), but its cost still
//! matters for interactive use; these benches split it into parse, mark,
//! reconstruct, and the full `discover_io` with reductions.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tunio_cminus::parser::parse;
use tunio_cminus::printer::print_program;
use tunio_cminus::samples;
use tunio_discovery::kernel::reconstruct;
use tunio_discovery::marking::mark_program;
use tunio_discovery::{discover_io, DiscoveryOptions};

fn bench_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("discovery/stages");
    group.sample_size(60);

    group.bench_function("parse_vpic", |b| {
        b.iter(|| black_box(parse(samples::VPIC_IO).unwrap()))
    });

    let prog = parse(samples::VPIC_IO).unwrap();
    group.bench_function("mark_vpic", |b| b.iter(|| black_box(mark_program(&prog))));

    let marking = mark_program(&prog);
    group.bench_function("reconstruct_vpic", |b| {
        b.iter(|| black_box(reconstruct(&prog, &marking)))
    });

    let kernel = reconstruct(&prog, &marking);
    group.bench_function("print_vpic", |b| {
        b.iter(|| black_box(print_program(&kernel)))
    });
    group.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("discovery/discover_io");
    group.sample_size(60);
    for (name, src) in samples::all_samples() {
        group.bench_function(name, |b| {
            b.iter(|| black_box(discover_io(src, &DiscoveryOptions::default()).unwrap()))
        });
    }
    group.bench_function("vpic_with_reductions", |b| {
        let opts = DiscoveryOptions {
            loop_reduction: Some(0.01),
            path_switch_prefix: Some("/dev/shm".into()),
            ..DiscoveryOptions::default()
        };
        b.iter(|| black_box(discover_io(samples::VPIC_IO, &opts).unwrap()))
    });
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    // Discovery cost vs. source size: replicate the VPIC function N times.
    let mut group = c.benchmark_group("discovery/scaling");
    group.sample_size(30);
    for n in [1usize, 8, 32] {
        let big_src: String = (0..n)
            .map(|i| samples::VPIC_IO.replace("vpic_dump", &format!("vpic_dump_{i}")))
            .collect::<Vec<_>>()
            .join("\n");
        group.bench_function(format!("{n}_functions"), |b| {
            b.iter(|| black_box(discover_io(&big_src, &DiscoveryOptions::default()).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stages, bench_full_pipeline, bench_scaling);
criterion_main!(benches);
