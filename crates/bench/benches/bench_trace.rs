//! Criterion benches: tracing overhead.
//!
//! The no-op-sink contract is that instrumentation costs nothing when no
//! sink is installed: `event()` and `span()` reduce to one relaxed atomic
//! load, metric handles to one atomic add. These benches pin that down at
//! two scales — the individual call sites, and a whole GA campaign with
//! and without tracing enabled (compare the campaign numbers against
//! `bench_ga`'s `ga/campaign_10_generations`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tunio_iosim::Simulator;
use tunio_params::ParameterSpace;
use tunio_trace as trace;
use tunio_tuner::{AllParams, EvalEngine, GaConfig, GaTuner, NoStop};
use tunio_workloads::{hacc, Variant, Workload};

fn campaign() -> f64 {
    let engine = EvalEngine::new(
        Simulator::cori_4node(1),
        Workload::new(hacc(), Variant::Kernel),
        ParameterSpace::tunio_default(),
        3,
    );
    let mut tuner = GaTuner::new(GaConfig {
        max_iterations: 10,
        seed: 1,
        ..GaConfig::default()
    });
    tuner.run(&engine, &mut NoStop, &mut AllParams).best_perf
}

fn bench_disabled_calls(c: &mut Criterion) {
    // No sink installed: these must be near-free.
    trace::clear_sink();
    let mut group = c.benchmark_group("trace/disabled");
    group.bench_function("event", |b| {
        b.iter(|| trace::event(black_box("bench.event"), vec![("k", 1u64.into())]))
    });
    group.bench_function("span", |b| {
        b.iter(|| {
            let s = trace::span(black_box("bench.span"), vec![]);
            black_box(&s);
        })
    });
    group.bench_function("counter_inc", |b| {
        let counter = trace::counter("tunio.bench.counter");
        b.iter(|| counter.inc(black_box(1)))
    });
    group.finish();
}

fn bench_campaign_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace/campaign_10_generations");
    group.sample_size(20);

    trace::clear_sink();
    group.bench_function("no_sink", |b| b.iter(|| black_box(campaign())));

    let sink = trace::install_memory_sink();
    group.bench_function("memory_sink", |b| {
        b.iter(|| {
            let p = black_box(campaign());
            sink.take(); // keep the buffer from growing across samples
            p
        })
    });
    trace::clear_sink();
    group.finish();
}

criterion_group!(benches, bench_disabled_calls, bench_campaign_overhead);
criterion_main!(benches);
