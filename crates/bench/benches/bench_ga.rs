//! Criterion benches: GA tuning-pipeline cost and design ablations.
//!
//! Ablations cover the design choices DESIGN.md calls out: elitism size,
//! tournament size, and population size — each benched as a full short
//! campaign so the numbers reflect real pipeline cost (not just operator
//! microcost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tunio_iosim::Simulator;
use tunio_params::ParameterSpace;
use tunio_tuner::{AllParams, EvalEngine, GaConfig, GaTuner, NoStop};
use tunio_workloads::{hacc, Variant, Workload};

fn campaign(cfg: GaConfig) -> f64 {
    let engine = EvalEngine::new(
        Simulator::cori_4node(1),
        Workload::new(hacc(), Variant::Kernel),
        ParameterSpace::tunio_default(),
        3,
    );
    let mut tuner = GaTuner::new(cfg);
    tuner.run(&engine, &mut NoStop, &mut AllParams).best_perf
}

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("ga/campaign_10_generations");
    group.sample_size(20);
    group.bench_function("default", |b| {
        b.iter(|| {
            black_box(campaign(GaConfig {
                max_iterations: 10,
                seed: 1,
                ..GaConfig::default()
            }))
        })
    });
    group.finish();
}

fn bench_elitism_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ga/ablation_elitism");
    group.sample_size(15);
    for elite in [0usize, 1, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(elite), &elite, |b, &elite| {
            b.iter(|| {
                black_box(campaign(GaConfig {
                    elite,
                    max_iterations: 8,
                    seed: 2,
                    ..GaConfig::default()
                }))
            })
        });
    }
    group.finish();
}

fn bench_tournament_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ga/ablation_tournament");
    group.sample_size(15);
    for k in [2usize, 3, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                black_box(campaign(GaConfig {
                    tournament: k,
                    max_iterations: 8,
                    seed: 3,
                    ..GaConfig::default()
                }))
            })
        });
    }
    group.finish();
}

fn bench_population_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ga/ablation_population");
    group.sample_size(15);
    for pop in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(pop), &pop, |b, &pop| {
            b.iter(|| {
                black_box(campaign(GaConfig {
                    population: pop,
                    max_iterations: 8,
                    seed: 4,
                    ..GaConfig::default()
                }))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_campaign,
    bench_elitism_ablation,
    bench_tournament_ablation,
    bench_population_ablation
);
criterion_main!(benches);
