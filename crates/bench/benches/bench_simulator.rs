//! Criterion benches: simulated I/O stack evaluation throughput.
//!
//! The tuner's inner loop is `Simulator::run_averaged`; these benches
//! establish its cost per configuration evaluation for each workload and
//! both machine scales.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tunio_iosim::Simulator;
use tunio_params::{ParameterSpace, StackConfig};
use tunio_workloads::{all_apps, bdcats, hacc, Variant, Workload};

fn bench_apps(c: &mut Criterion) {
    let space = ParameterSpace::tunio_default();
    let cfg = StackConfig::defaults(&space);
    let sim = Simulator::cori_4node(1);

    let mut group = c.benchmark_group("simulator/run_averaged_4node");
    group.sample_size(40);
    for app in all_apps() {
        let phases = Workload::new(app.clone(), Variant::Kernel).phases();
        group.bench_function(app.name.clone(), |b| {
            b.iter(|| black_box(sim.run_averaged(black_box(&phases), &cfg, 3)))
        });
    }
    group.finish();
}

fn bench_scales(c: &mut Criterion) {
    let space = ParameterSpace::tunio_default();
    let cfg = StackConfig::defaults(&space);
    let mut group = c.benchmark_group("simulator/scales");
    group.sample_size(40);

    let small = Simulator::cori_4node(1);
    let phases_small = Workload::new(hacc(), Variant::Full).phases();
    group.bench_function("hacc_full_4node", |b| {
        b.iter(|| black_box(small.run_averaged(&phases_small, &cfg, 3)))
    });

    let big = Simulator::cori_500node(1);
    let phases_big = Workload::new(bdcats(), Variant::Full).phases();
    group.bench_function("bdcats_full_500node", |b| {
        b.iter(|| black_box(big.run_averaged(&phases_big, &cfg, 3)))
    });
    group.finish();
}

criterion_group!(benches, bench_apps, bench_scales);
criterion_main!(benches);
