//! Criterion benches: NN and RL agent costs.
//!
//! The RL agents run inside the tuning loop (one subset decision and one
//! stop decision per generation) and during offline pre-training; these
//! benches quantify both, plus the PCA used in offline impact analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use tunio_nn::{Activation, Network, Optimizer, Pca};
use tunio_rl::logcurve::LogCurveEnv;
use tunio_rl::qlearn::{QAgent, QConfig};

fn bench_network(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut net = Network::new(
        &[12, 24, 4],
        &[Activation::Tanh, Activation::Linear],
        Optimizer::Adam { lr: 0.01 },
        &mut rng,
    );
    let x: Vec<f64> = (0..12).map(|i| i as f64 / 12.0).collect();
    let y = vec![0.1, 0.2, 0.3, 0.4];

    let mut group = c.benchmark_group("nn/network");
    group.bench_function("forward_12x24x4", |b| {
        b.iter(|| black_box(net.forward(black_box(&x))))
    });
    group.bench_function("train_step_12x24x4", |b| {
        b.iter(|| black_box(net.train_step(black_box(&x), &y)))
    });
    group.finish();
}

fn bench_pca(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let samples: Vec<Vec<f64>> = (0..600)
        .map(|_| (0..13).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let mut group = c.benchmark_group("nn/pca");
    group.sample_size(30);
    group.bench_function("fit_600x13", |b| {
        b.iter(|| black_box(Pca::fit(black_box(&samples))))
    });
    group.finish();
}

fn bench_qagent(c: &mut Criterion) {
    let agent = QAgent::new(4, 2, QConfig::default(), 7);
    let state = vec![0.5, 0.1, 0.3, 0.7];

    let mut group = c.benchmark_group("rl/qagent");
    group.bench_function("decision", |b| {
        b.iter(|| black_box(agent.best_action(black_box(&state))))
    });
    group.sample_size(10);
    group.bench_function("train_50_episodes_logcurve", |b| {
        b.iter(|| {
            let mut env = LogCurveEnv::new(30, 0.012, 3);
            let mut a = QAgent::new(4, 2, QConfig::default(), 9);
            black_box(a.train(&mut env, 50, 31))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_network, bench_pca, bench_qagent);
criterion_main!(benches);
