//! # tunio-bench — experiment harness
//!
//! One binary per table/figure of the paper's evaluation (§IV); each
//! prints the same rows/series the paper reports and writes a JSON dump
//! under `results/`. See DESIGN.md for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured numbers.
//!
//! Run everything with `cargo run -p tunio-bench --bin run_all --release`.

#![warn(missing_docs)]

use serde::Serialize;
use std::path::PathBuf;
use tunio::pipeline::{run_campaign, CampaignOutcome, CampaignSpec};
use tunio::roti::RotiPoint;
use tunio_tuner::TuningTrace;

/// Gibibytes, for bandwidth reporting.
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
/// Megabytes (decimal), matching the paper's MB/s units.
pub const MB: f64 = 1e6;

/// Where result JSON files land (repo-root `results/`).
pub fn results_dir() -> PathBuf {
    let candidates = [PathBuf::from("results"), PathBuf::from("../../results")];
    for c in &candidates {
        if c.is_dir() {
            return c.clone();
        }
    }
    std::fs::create_dir_all("results").ok();
    PathBuf::from("results")
}

/// Serialize `value` to `results/<name>.json` (best-effort; prints a
/// warning on failure so experiments still run read-only).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(text) => {
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("[wrote {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// A labeled tuning campaign for comparison plots.
#[derive(Debug, Clone, Serialize)]
pub struct LabeledTrace {
    /// Legend label.
    pub label: String,
    /// Per-iteration best perf in GiB/s.
    pub bandwidth_gibs: Vec<f64>,
    /// Cumulative tuning minutes per iteration.
    pub minutes: Vec<f64>,
    /// RoTI series (MB/s per minute).
    pub roti: Vec<f64>,
    /// Iteration at which the campaign stopped.
    pub stopped_at: u32,
    /// Total tuning budget consumed, minutes.
    pub total_minutes: f64,
    /// Final best perf, GiB/s.
    pub final_gibs: f64,
    /// Untuned (default-configuration) perf, GiB/s.
    pub default_gibs: f64,
}

impl LabeledTrace {
    /// Build from a campaign outcome.
    pub fn from_outcome(label: impl Into<String>, outcome: &CampaignOutcome) -> Self {
        LabeledTrace::from_trace(label, &outcome.trace)
    }

    /// Build from a raw trace.
    pub fn from_trace(label: impl Into<String>, trace: &TuningTrace) -> Self {
        let roti: Vec<RotiPoint> = tunio::roti::roti_curve(trace);
        LabeledTrace {
            label: label.into(),
            bandwidth_gibs: trace.records.iter().map(|r| r.best_perf / GIB).collect(),
            minutes: trace
                .records
                .iter()
                .map(|r| r.cumulative_cost_s / 60.0)
                .collect(),
            roti: roti.iter().map(|p| p.roti).collect(),
            stopped_at: trace.iterations(),
            total_minutes: trace.total_cost_min(),
            final_gibs: trace.best_perf / GIB,
            default_gibs: trace.default_perf / GIB,
        }
    }
}

/// Run a campaign and wrap it with a label.
pub fn labeled_campaign(label: impl Into<String>, spec: &CampaignSpec) -> LabeledTrace {
    let outcome = run_campaign(spec).expect("fault-free campaign");
    LabeledTrace::from_outcome(label, &outcome)
}

/// Print a per-iteration series table for several traces.
pub fn print_series_table(title: &str, traces: &[LabeledTrace]) {
    println!("\n=== {title} ===");
    print!("{:>4}", "iter");
    for t in traces {
        print!("  {:>26}", truncate(&t.label, 26));
    }
    println!();
    let max_len = traces
        .iter()
        .map(|t| t.bandwidth_gibs.len())
        .max()
        .unwrap_or(0);
    for i in 0..max_len {
        print!("{:>4}", i + 1);
        for t in traces {
            match t.bandwidth_gibs.get(i) {
                Some(bw) => print!(
                    "  {:>12.3} GiB/s {:>6.1}m",
                    bw,
                    t.minutes.get(i).copied().unwrap_or(0.0)
                ),
                None => print!("  {:>26}", "-"),
            }
        }
        println!();
    }
    for t in traces {
        println!(
            "{:<32} stopped at iter {:>3}, {:>8.1} tuning minutes, final {:.3} GiB/s ({:.2}x over default)",
            t.label,
            t.stopped_at,
            t.total_minutes,
            t.final_gibs,
            t.final_gibs / t.default_gibs.max(1e-12),
        );
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

/// First iteration whose best perf reaches `target_fraction` of the
/// trace's final best.
pub fn first_hit_iteration(trace: &LabeledTrace, target_gibs: f64) -> Option<u32> {
    trace
        .bandwidth_gibs
        .iter()
        .position(|&bw| bw >= target_gibs)
        .map(|i| i as u32 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tunio::pipeline::PipelineKind;
    use tunio_workloads::{hacc, Variant};

    #[test]
    fn labeled_trace_roundtrip() {
        let spec = CampaignSpec {
            app: hacc(),
            variant: Variant::Kernel,
            kind: PipelineKind::HsTunerNoStop,
            max_iterations: 4,
            population: 4,
            seed: 3,
            large_scale: false,
        };
        let t = labeled_campaign("test", &spec);
        assert_eq!(t.stopped_at, 4);
        assert_eq!(t.bandwidth_gibs.len(), 4);
        assert_eq!(t.minutes.len(), 4);
        assert!(t.total_minutes > 0.0);
        assert!(t.final_gibs >= t.default_gibs);
        let hit = first_hit_iteration(&t, t.final_gibs * 0.5);
        assert!(hit.is_some());
    }

    #[test]
    fn truncate_respects_length() {
        assert_eq!(truncate("abcdef", 3), "abc");
        assert_eq!(truncate("ab", 3), "ab");
    }
}
