//! Figure 12 — lifecycle viability of tuning BD-CATS.
//!
//! Paper: TunIO tunes in 403 minutes vs 1560 for H5Tuner; tuning becomes
//! viable (beats never-tuning) after 1394 executions for TunIO vs 5274
//! for H5Tuner (73.6% fewer); TunIO's total-time advantage holds until
//! ≈3.99 million executions.

use tunio::pipeline::{run_campaign, CampaignSpec, PipelineKind};
use tunio::viability::{crossover, LifecycleModel};
use tunio_iosim::Simulator;
use tunio_params::ParameterSpace;
use tunio_workloads::{bdcats, Variant, Workload};

fn spec(kind: PipelineKind, variant: Variant) -> CampaignSpec {
    CampaignSpec {
        app: bdcats(),
        variant,
        kind,
        max_iterations: 50,
        population: 8,
        seed: 1111,
        large_scale: true,
    }
}

fn main() {
    let space = ParameterSpace::tunio_default();
    // Production runtimes are measured noise-free so the comparison
    // reflects the true quality of each method's final configuration.
    let mut sim = Simulator::cori_500node(1111);
    sim.noise = tunio_iosim::noise::NoiseModel::disabled();
    let full = Workload::new(bdcats(), Variant::Full);
    let phases = full.phases();

    // Tune with each method (TunIO uses the kernel; H5Tuner the full app).
    let tunio_run =
        run_campaign(&spec(PipelineKind::TunIo, Variant::Kernel)).expect("fault-free campaign");
    let h5tuner_run = run_campaign(&spec(PipelineKind::HsTunerNoStop, Variant::Full))
        .expect("fault-free campaign");

    // Production runtime of the *full* application under each final config.
    let untuned_min = sim
        .run_averaged(&phases, &space.default_config().resolve(&space), 3)
        .elapsed_s
        / 60.0;
    let runtime_min = |cfg: &tunio_params::Configuration| {
        sim.run_averaged(&phases, &cfg.resolve(&space), 3).elapsed_s / 60.0
    };

    let tunio_model = LifecycleModel {
        tune_minutes: tunio_run.trace.total_cost_min(),
        tuned_runtime_min: runtime_min(&tunio_run.trace.best_config),
    };
    let h5tuner_model = LifecycleModel {
        tune_minutes: h5tuner_run.trace.total_cost_min(),
        tuned_runtime_min: runtime_min(&h5tuner_run.trace.best_config),
    };

    println!("=== Fig 12: lifecycle viability of tuning BD-CATS ===\n");
    println!("untuned production runtime : {untuned_min:.2} min/run");
    println!(
        "TunIO   : tune {:.0} min, tuned runtime {:.3} min/run",
        tunio_model.tune_minutes, tunio_model.tuned_runtime_min
    );
    println!(
        "H5Tuner : tune {:.0} min, tuned runtime {:.3} min/run",
        h5tuner_model.tune_minutes, h5tuner_model.tuned_runtime_min
    );

    println!("\ntotal lifecycle time (minutes) vs executions:");
    println!(
        "{:>12} {:>14} {:>14} {:>14}",
        "executions", "no tuning", "TunIO", "H5Tuner"
    );
    for n in [0.0, 100.0, 1e3, 5e3, 1e4, 1e5, 1e6, 4e6, 1e7] {
        println!(
            "{:>12} {:>14.0} {:>14.0} {:>14.0}",
            n,
            n * untuned_min,
            tunio_model.total_minutes(n),
            h5tuner_model.total_minutes(n)
        );
    }

    let tunio_viab = tunio_model.viability_point(untuned_min);
    let h5_viab = h5tuner_model.viability_point(untuned_min);
    println!("\nviability points (executions to beat no-tuning):");
    println!("  TunIO  : {tunio_viab:?} (paper: 1394)");
    println!("  H5Tuner: {h5_viab:?} (paper: 5274)");
    if let (Some(a), Some(b)) = (tunio_viab, h5_viab) {
        println!(
            "  TunIO viable in {:.1}% fewer executions (paper: 73.6%)",
            100.0 * (b - a) / b
        );
    }
    match crossover(&tunio_model, &h5tuner_model) {
        Some(n) => {
            println!("  TunIO keeps a lower total time until {n:.2e} executions (paper: 3.99e6)")
        }
        None => println!("  TunIO dominates at every execution count (no crossover)"),
    }

    let summary = serde_json::json!({
        "untuned_min_per_run": untuned_min,
        "tunio": { "tune_min": tunio_model.tune_minutes, "runtime_min": tunio_model.tuned_runtime_min },
        "h5tuner": { "tune_min": h5tuner_model.tune_minutes, "runtime_min": h5tuner_model.tuned_runtime_min },
        "tunio_viability": tunio_viab,
        "h5tuner_viability": h5_viab,
        "crossover": crossover(&tunio_model, &h5tuner_model),
    });
    tunio_bench::write_json("fig12_viability", &summary);
}
