//! Run one full TunIO campaign with the JSON-lines trace sink installed
//! and render the resulting trace with the tunio-report summarizer.
//!
//! This is the end-to-end exercise of the tracing pipeline: campaign →
//! `trace.jsonl` artifact → human-readable report. CI runs it and uploads
//! the artifact; locally it doubles as a smoke test:
//!
//! ```text
//! cargo run -p tunio-bench --bin trace_campaign --release [-- <out.jsonl>]
//! ```

use tunio::pipeline::{run_campaign, CampaignSpec, PipelineKind};
use tunio_bench::results_dir;
use tunio_trace::report;
use tunio_workloads::{hacc, Variant};

fn main() {
    let path = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("TUNIO_TRACE_PATH").ok())
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| results_dir().join("trace_campaign.jsonl"));

    if let Err(e) = tunio_trace::install_jsonl_sink(&path) {
        eprintln!("error: cannot open trace sink {}: {e}", path.display());
        std::process::exit(1);
    }

    let spec = CampaignSpec {
        app: hacc(),
        variant: Variant::Kernel,
        kind: PipelineKind::TunIo,
        max_iterations: 20,
        population: 6,
        seed: 2024,
        large_scale: false,
    };
    let outcome = run_campaign(&spec);

    // Flush and detach the sink so the file is complete before reading.
    tunio_trace::clear_sink();
    eprintln!("[wrote {}]", path.display());

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let records = match report::parse_jsonl(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot parse {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let summaries = report::summarize(&records);
    for s in &summaries {
        print!("{}", report::render(s));
    }

    // Smoke checks: the trace must cover every generation the campaign ran.
    let gens: usize = summaries.iter().map(|s| s.generations.len()).sum();
    assert_eq!(
        gens,
        outcome.trace.iterations() as usize,
        "trace generations must match the campaign's iteration count"
    );
}
