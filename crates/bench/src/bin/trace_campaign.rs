//! Run one full TunIO campaign with the JSON-lines trace sink installed
//! and render the resulting trace with the tunio-report summarizer.
//!
//! This is the end-to-end exercise of the tracing pipeline: campaign →
//! `trace.jsonl` artifact → human-readable report. CI runs it and uploads
//! the artifact; locally it doubles as a smoke test:
//!
//! ```text
//! cargo run -p tunio-bench --bin trace_campaign --release -- \
//!     [<out.jsonl>] [--profile-out <profile.json>] [--metrics-addr HOST:PORT]
//! ```
//!
//! `--profile-out` writes the campaign's per-layer attribution profile as
//! JSON (the input format of `tunio-profile`); `--metrics-addr` serves
//! live Prometheus-style metrics for the duration of the run.

use tunio::pipeline::{run_campaign, CampaignSpec, PipelineKind};
use tunio_bench::results_dir;
use tunio_trace::report;
use tunio_workloads::{hacc, Variant};

struct Args {
    trace_path: std::path::PathBuf,
    profile_out: Option<std::path::PathBuf>,
    metrics_addr: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        trace_path: std::env::var("TUNIO_TRACE_PATH")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|_| results_dir().join("trace_campaign.jsonl")),
        profile_out: None,
        metrics_addr: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--profile-out" => {
                i += 1;
                let v = argv.get(i).unwrap_or_else(|| {
                    eprintln!("--profile-out needs a value");
                    std::process::exit(2);
                });
                args.profile_out = Some(std::path::PathBuf::from(v));
            }
            "--metrics-addr" => {
                i += 1;
                let v = argv.get(i).unwrap_or_else(|| {
                    eprintln!("--metrics-addr needs a value");
                    std::process::exit(2);
                });
                args.metrics_addr = Some(v.clone());
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag `{flag}`");
                std::process::exit(2);
            }
            path => args.trace_path = std::path::PathBuf::from(path),
        }
        i += 1;
    }
    args
}

fn main() {
    let args = parse_args();
    let path = args.trace_path;

    // Keep the handle alive for the whole campaign; Drop stops the thread.
    let _metrics_server = args.metrics_addr.as_deref().map(|addr| {
        let server = tunio_trace::MetricsServer::serve(addr).unwrap_or_else(|e| {
            eprintln!("error: cannot bind metrics server on {addr}: {e}");
            std::process::exit(1);
        });
        eprintln!("[metrics on http://{}/metrics]", server.addr());
        server
    });

    if let Err(e) = tunio_trace::install_jsonl_sink(&path) {
        eprintln!("error: cannot open trace sink {}: {e}", path.display());
        std::process::exit(1);
    }

    let spec = CampaignSpec {
        app: hacc(),
        variant: Variant::Kernel,
        kind: PipelineKind::TunIo,
        max_iterations: 20,
        population: 6,
        seed: 2024,
        large_scale: false,
    };
    let outcome = run_campaign(&spec).expect("fault-free campaign");

    // Flush and detach the sink so the file is complete before reading.
    tunio_trace::clear_sink();
    eprintln!("[wrote {}]", path.display());

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let records = match report::parse_jsonl(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot parse {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let summaries = report::summarize(&records);
    for s in &summaries {
        print!("{}", report::render(s));
    }

    // Per-layer attribution for the whole campaign, straight from the
    // engine's profile (the trace-derived table above only covers traced
    // generations; this one is exact).
    println!("campaign attribution profile:");
    print!("{}", outcome.profile.render_table());
    print!("{}", outcome.profile.render_tree());

    if let Some(out) = args.profile_out {
        if let Err(e) = std::fs::write(&out, outcome.profile.to_json()) {
            eprintln!("error: cannot write {}: {e}", out.display());
            std::process::exit(1);
        }
        eprintln!("[wrote {}]", out.display());
    }

    // Smoke checks: the trace must cover every generation the campaign ran.
    let gens: usize = summaries.iter().map(|s| s.generations.len()).sum();
    assert_eq!(
        gens,
        outcome.trace.iterations() as usize,
        "trace generations must match the campaign's iteration count"
    );
}
