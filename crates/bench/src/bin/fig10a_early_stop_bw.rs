//! Figure 10(a) — Early stopping on HACC: bandwidth vs. iteration with
//! stop markers for TunIO's RL stopper and the 5%/5-iteration heuristic.
//!
//! Paper: TunIO's stopper ends tuning at generation 35 of 50 at 2.2 GB/s
//! (≈4x over the untuned 0.55 GB/s) — continuing would only add
//! 0.08 GB/s; the heuristic is trapped by the iteration 10–20 plateau and
//! stops at 14 with only 1.2 GB/s (2x).

use tunio::pipeline::{CampaignSpec, PipelineKind};
use tunio_bench::{labeled_campaign, print_series_table, write_json};
use tunio_workloads::{hacc, Variant};

fn spec(kind: PipelineKind) -> CampaignSpec {
    CampaignSpec {
        app: hacc(),
        variant: Variant::Kernel,
        kind,
        max_iterations: 50,
        population: 8,
        seed: 7,
        large_scale: false,
    }
}

fn main() {
    let no_stop = labeled_campaign("Full budget (no stop)", &spec(PipelineKind::HsTunerNoStop));
    let rl = labeled_campaign("TunIO RL early stop", &spec(PipelineKind::RlStopOnly));
    let heuristic = labeled_campaign(
        "Heuristic stop (5%/5it)",
        &spec(PipelineKind::HsTunerHeuristic),
    );

    print_series_table(
        "Fig 10(a): HACC bandwidth with stopping policies",
        &[no_stop.clone(), rl.clone(), heuristic.clone()],
    );

    println!("\nstop markers:");
    println!(
        "  TunIO RL stop   : iteration {:>3} at {:.3} GiB/s ({:.2}x over untuned)",
        rl.stopped_at,
        rl.final_gibs,
        rl.final_gibs / rl.default_gibs
    );
    println!(
        "  heuristic stop  : iteration {:>3} at {:.3} GiB/s ({:.2}x over untuned)",
        heuristic.stopped_at,
        heuristic.final_gibs,
        heuristic.final_gibs / heuristic.default_gibs
    );
    let left_on_table = no_stop.final_gibs - rl.final_gibs;
    println!(
        "  full-budget best: {:.3} GiB/s → RL stop leaves {:.3} GiB/s on the table (paper: 0.08 GB/s)",
        no_stop.final_gibs, left_on_table
    );
    println!(
        "\npaper reference: TunIO stops at 35/50 @ 2.2 GB/s (4x); heuristic at 14 @ 1.2 GB/s (2x)"
    );

    write_json("fig10a_early_stop_bw", &vec![no_stop, rl, heuristic]);
}
