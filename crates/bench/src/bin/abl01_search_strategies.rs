//! Ablation — search strategies (§II-B background): the GA pipeline vs.
//! random search vs. hill climbing, on the HACC I/O kernel, equal
//! evaluation budgets.

use serde::Serialize;
use tunio_iosim::Simulator;
use tunio_params::ParameterSpace;
use tunio_tuner::{AllParams, EvalEngine, GaConfig, GaTuner, HillClimb, NoStop, RandomSearch};
use tunio_workloads::{hacc, Variant, Workload};

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

#[derive(Serialize)]
struct Row {
    strategy: String,
    seed: u64,
    final_gibs: f64,
    minutes: f64,
}

fn engine(seed: u64) -> EvalEngine {
    EvalEngine::new(
        Simulator::cori_4node(seed),
        Workload::new(hacc(), Variant::Kernel),
        ParameterSpace::tunio_default(),
        3,
    )
}

fn main() {
    const ITERS: u32 = 30;
    let seeds = [1u64, 2, 3, 4, 5];
    let mut rows = Vec::new();

    println!("=== Ablation: search strategies (HACC kernel, {ITERS} iterations, 5 seeds) ===\n");
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "strategy", "mean GiB/s", "min", "max"
    );

    let summarize = |name: &str, finals: Vec<(u64, f64, f64)>, rows: &mut Vec<Row>| {
        let perfs: Vec<f64> = finals.iter().map(|(_, p, _)| *p).collect();
        let mean = perfs.iter().sum::<f64>() / perfs.len() as f64;
        let min = perfs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = perfs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!("{name:<14} {mean:>12.3} {min:>12.3} {max:>12.3}");
        for (seed, p, m) in finals {
            rows.push(Row {
                strategy: name.into(),
                seed,
                final_gibs: p,
                minutes: m,
            });
        }
    };

    let ga: Vec<(u64, f64, f64)> = seeds
        .iter()
        .map(|&seed| {
            let mut tuner = GaTuner::new(GaConfig {
                max_iterations: ITERS,
                seed,
                ..GaConfig::default()
            });
            let t = tuner.run(&engine(seed), &mut NoStop, &mut AllParams);
            (seed, t.best_perf / GIB, t.total_cost_min())
        })
        .collect();
    summarize("genetic", ga, &mut rows);

    let rs: Vec<(u64, f64, f64)> = seeds
        .iter()
        .map(|&seed| {
            let mut search = RandomSearch::new(ITERS, seed);
            let t = search.run(&engine(seed), &mut NoStop, &mut AllParams);
            (seed, t.best_perf / GIB, t.total_cost_min())
        })
        .collect();
    summarize("random", rs, &mut rows);

    let hc: Vec<(u64, f64, f64)> = seeds
        .iter()
        .map(|&seed| {
            let mut search = HillClimb::new(ITERS, seed);
            let t = search.run(&engine(seed), &mut NoStop, &mut AllParams);
            (seed, t.best_perf / GIB, t.total_cost_min())
        })
        .collect();
    summarize("hill-climb", hc, &mut rows);

    tunio_bench::write_json("abl01_search_strategies", &rows);
}
