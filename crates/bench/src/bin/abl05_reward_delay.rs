//! Ablation — reward-delay length in the Early Stopping agent.
//!
//! §III-D fixes "a 5-iteration delay on the reward function to avoid bias
//! introduced by short-term gains"; this sweeps the delay and measures the
//! resulting stop quality on HACC.

use serde::Serialize;
use tunio::early_stop::EarlyStopAgent;
use tunio_iosim::Simulator;
use tunio_params::ParameterSpace;
use tunio_tuner::{AllParams, EvalEngine, GaConfig, GaTuner};
use tunio_workloads::{hacc, Variant, Workload};

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

#[derive(Serialize)]
struct Row {
    delay: usize,
    stop_iter: u32,
    final_gibs: f64,
    minutes: f64,
    roti: f64,
}

fn main() {
    println!("=== Ablation: early-stop reward delay (HACC, 40-iteration budget) ===\n");
    println!(
        "{:>6} {:>10} {:>12} {:>10} {:>14}",
        "delay", "stop iter", "final GiB/s", "minutes", "RoTI MB/s/min"
    );
    let mut rows = Vec::new();
    for delay in [0usize, 2, 5, 10] {
        let mut agent = EarlyStopAgent::pretrained_with_delay(40, 7, delay);
        agent.begin_campaign();
        let engine = EvalEngine::new(
            Simulator::cori_4node(7),
            Workload::new(hacc(), Variant::Kernel),
            ParameterSpace::tunio_default(),
            3,
        );
        let mut tuner = GaTuner::new(GaConfig {
            max_iterations: 40,
            seed: 7,
            ..GaConfig::default()
        });
        let trace = tuner.run(&engine, &mut agent, &mut AllParams);
        let roti = tunio::roti::final_roti(&trace);
        println!(
            "{:>6} {:>10} {:>12.3} {:>10.1} {:>14.2}",
            delay,
            trace.iterations(),
            trace.best_perf / GIB,
            trace.total_cost_min(),
            roti
        );
        rows.push(Row {
            delay,
            stop_iter: trace.iterations(),
            final_gibs: trace.best_perf / GIB,
            minutes: trace.total_cost_min(),
            roti,
        });
    }
    tunio_bench::write_json("abl05_reward_delay", &rows);
}
