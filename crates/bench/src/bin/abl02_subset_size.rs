//! Ablation — fixed subset size: tune BD-CATS at 500 nodes with the
//! top-k prefix of the offline impact ranking, k ∈ {1, 3, 5, 7, 9, 12}.
//!
//! Quantifies the Impact-First trade-off (§III-F): small subsets converge
//! cheaply but can leave performance on the table; the knee sits near the
//! number of truly significant parameters.

use serde::Serialize;
use tunio::smart_config::offline_impact_analysis;
use tunio_iosim::Simulator;
use tunio_params::ParameterSpace;
use tunio_tuner::subset::FixedSubset;
use tunio_tuner::{EvalEngine, GaConfig, GaTuner, NoStop};
use tunio_workloads::{bdcats, Variant, Workload};

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

#[derive(Serialize)]
struct Row {
    k: usize,
    final_gibs: f64,
    minutes: f64,
    iterations_to_90pct: Option<u32>,
}

fn main() {
    let space = ParameterSpace::tunio_default();
    let analysis = offline_impact_analysis(&space, 1111);
    println!(
        "impact ranking (offline sweep + PCA): {:?}",
        analysis.ranking
    );
    println!("significant parameters: {}\n", analysis.significant);
    println!(
        "{:>3} {:>12} {:>10} {:>18}",
        "k", "final GiB/s", "minutes", "iters to 90% final"
    );

    let mut rows = Vec::new();
    for k in [1usize, 3, 5, 7, 9, 12] {
        let engine = EvalEngine::new(
            Simulator::cori_500node(1111),
            Workload::new(bdcats(), Variant::Kernel),
            space.clone(),
            3,
        );
        let mut tuner = GaTuner::new(GaConfig {
            max_iterations: 25,
            seed: 1111,
            ..GaConfig::default()
        });
        let trace = tuner.run(
            &engine,
            &mut NoStop,
            &mut FixedSubset {
                subset: analysis.top(k),
            },
        );
        let target = 0.9 * trace.best_perf;
        let hit = trace
            .records
            .iter()
            .find(|r| r.best_perf >= target)
            .map(|r| r.iteration);
        println!(
            "{:>3} {:>12.2} {:>10.1} {:>18}",
            k,
            trace.best_perf / GIB,
            trace.total_cost_min(),
            hit.map(|h| h.to_string()).unwrap_or_else(|| "-".into())
        );
        rows.push(Row {
            k,
            final_gibs: trace.best_perf / GIB,
            minutes: trace.total_cost_min(),
            iterations_to_90pct: hit,
        });
    }
    tunio_bench::write_json("abl02_subset_size", &rows);
}
