//! Figure 8(c) — kernel fidelity: absolute percentage error of bytes
//! written and write-operation counts, kernel and reduced kernel vs. the
//! original application (MACSio/VPIC-dipole).
//!
//! Paper: bytes error 0.0002% (kernel) / 0.19% (reduced); write-op error
//! 19.05% (kernel, dropped logging) / 4.87% (reduced, first-iteration
//! overshoot partially cancels the missing logging ops).

use tunio_discovery::accuracy::measure_fidelity;
use tunio_iosim::Simulator;
use tunio_params::{ParameterSpace, StackConfig};
use tunio_workloads::{macsio_vpic_dipole, Variant};

fn main() {
    let space = ParameterSpace::tunio_default();
    let sim = Simulator::cori_4node(0);
    let cfg = StackConfig::defaults(&space);
    let app = macsio_vpic_dipole();

    let kernel = measure_fidelity(&sim, &app, Variant::Kernel, &cfg);
    let reduced = measure_fidelity(
        &sim,
        &app,
        Variant::ReducedKernel {
            keep_fraction: 0.01,
        },
        &cfg,
    );

    println!("=== Fig 8(c): kernel fidelity vs original application ===\n");
    println!(
        "{:<28} {:>18} {:>18}",
        "metric", "kernel", "reduced kernel(1%)"
    );
    println!(
        "{:<28} {:>17.4}% {:>17.4}%",
        "bytes written |error|", kernel.bytes_written_err_pct, reduced.bytes_written_err_pct
    );
    println!(
        "{:<28} {:>17.2}% {:>17.2}%",
        "write ops |error|", kernel.write_ops_err_pct, reduced.write_ops_err_pct
    );
    println!("\npaper reference: bytes 0.0002% / 0.19%; ops 19.05% / 4.87%");

    let summary = serde_json::json!({
        "kernel": {
            "bytes_err_pct": kernel.bytes_written_err_pct,
            "ops_err_pct": kernel.write_ops_err_pct,
        },
        "reduced": {
            "bytes_err_pct": reduced.bytes_written_err_pct,
            "ops_err_pct": reduced.write_ops_err_pct,
        },
    });
    tunio_bench::write_json("fig08c_kernel_accuracy", &summary);
}
