//! Ablation — platform-volatility sensitivity: how noise amplitude
//! affects the stopping policies (§IV's 3-run averaging exists precisely
//! to mitigate this).

use serde::Serialize;
use tunio::early_stop::EarlyStopAgent;
use tunio_iosim::noise::NoiseModel;
use tunio_iosim::Simulator;
use tunio_params::ParameterSpace;
use tunio_tuner::{AllParams, EvalEngine, GaConfig, GaTuner, HeuristicStop, Stopper};
use tunio_workloads::{hacc, Variant, Workload};

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

#[derive(Serialize)]
struct Row {
    amplitude: f64,
    stopper: String,
    stop_iter: u32,
    final_gibs: f64,
}

fn run(amplitude: f64, stopper: &mut dyn Stopper) -> (u32, f64) {
    let mut sim = Simulator::cori_4node(7);
    sim.noise = NoiseModel { seed: 7, amplitude };
    let engine = EvalEngine::new(
        sim,
        Workload::new(hacc(), Variant::Kernel),
        ParameterSpace::tunio_default(),
        3,
    );
    let mut tuner = GaTuner::new(GaConfig {
        max_iterations: 40,
        seed: 7,
        ..GaConfig::default()
    });
    let trace = tuner.run(&engine, stopper, &mut AllParams);
    (trace.iterations(), trace.best_perf / GIB)
}

fn main() {
    println!(
        "=== Ablation: noise sensitivity of stopping policies (HACC, 40-iteration budget) ===\n"
    );
    println!(
        "{:>10} {:>24} {:>10} {:>12}",
        "amplitude", "stopper", "stop iter", "final GiB/s"
    );
    let mut rows = Vec::new();
    for amplitude in [0.0, 0.04, 0.08, 0.16, 0.24] {
        let mut heuristic = HeuristicStop::paper_default();
        let (hi, hp) = run(amplitude, &mut heuristic);
        let mut rl = EarlyStopAgent::pretrained(40, 7);
        rl.begin_campaign();
        let (ri, rp) = run(amplitude, &mut rl);
        for (name, iter, perf) in [("heuristic-5pct-5iter", hi, hp), ("tunio-rl", ri, rp)] {
            println!("{amplitude:>10.2} {name:>24} {iter:>10} {perf:>12.3}");
            rows.push(Row {
                amplitude,
                stopper: name.into(),
                stop_iter: iter,
                final_gibs: perf,
            });
        }
    }
    println!(
        "\nhigher volatility keeps best-so-far 'improving' by luck, which delays\n\
         plateau-based stopping; averaging and the RL trend features damp this."
    );
    tunio_bench::write_json("abl03_noise_sensitivity", &rows);
}
