//! Figure 9 — Impact-First tuning (Smart Configuration Generation) on the
//! FLASH I/O kernel: bandwidth vs. tuning iteration with and without the
//! component.
//!
//! Paper: Impact-First reaches 2.3 GB/s at iteration 6, plain tuning at
//! iteration 43 (an 86.05% reduction); the final configuration changes 7
//! of 12 parameters.

use tunio::pipeline::{run_campaign, CampaignSpec, PipelineKind};
use tunio_bench::{first_hit_iteration, print_series_table, write_json, LabeledTrace};
use tunio_params::ParameterSpace;
use tunio_workloads::{flash, Variant};

fn spec(kind: PipelineKind) -> CampaignSpec {
    CampaignSpec {
        app: flash(),
        variant: Variant::Kernel,
        kind,
        max_iterations: 50,
        population: 8,
        seed: 99,
        large_scale: false,
    }
}

fn main() {
    let space = ParameterSpace::tunio_default();
    let smart_out =
        run_campaign(&spec(PipelineKind::ImpactFirstOnly)).expect("fault-free campaign");
    let plain_out = run_campaign(&spec(PipelineKind::HsTunerNoStop)).expect("fault-free campaign");
    let smart = LabeledTrace::from_outcome("Impact-First Tuning", &smart_out);
    let plain = LabeledTrace::from_outcome("No Impact-First Tuning", &plain_out);

    print_series_table(
        "Fig 9: FLASH bandwidth vs iteration",
        &[smart.clone(), plain.clone()],
    );

    // Iterations to reach a shared target: 90% of the common final level.
    let target = 0.9 * smart.final_gibs.min(plain.final_gibs);
    let smart_hit = first_hit_iteration(&smart, target);
    let plain_hit = first_hit_iteration(&plain, target);
    println!("\ntarget bandwidth {target:.3} GiB/s:");
    println!("  Impact-First reaches it at iteration {smart_hit:?}");
    println!("  plain tuning reaches it at iteration {plain_hit:?}");
    if let (Some(s), Some(p)) = (smart_hit, plain_hit) {
        println!(
            "  iteration reduction: {:.1}% (paper: 86.05%, iters 6 vs 43)",
            100.0 * (p.saturating_sub(s)) as f64 / p as f64
        );
    }

    let changed = smart_out
        .trace
        .best_config
        .genes_changed_from_default(&space);
    println!(
        "\nfinal Impact-First configuration changes {changed} of 12 parameters from defaults (paper: 7)"
    );
    println!(
        "changed: {}",
        smart_out.trace.best_config.describe_changes(&space)
    );

    write_json("fig09_impact_first", &vec![smart, plain]);
}
