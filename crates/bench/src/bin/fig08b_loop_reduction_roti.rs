//! Figure 8(b) — RoTI with loop reduction (run 1% of I/O-loop
//! iterations).
//!
//! Paper: loop reduction lifts peak RoTI to 23.30 vs 2.47 for the
//! original application (> 9x), at 97.10% reported-bandwidth accuracy.

use tunio::pipeline::{CampaignSpec, PipelineKind};
use tunio_bench::{labeled_campaign, write_json, LabeledTrace};
use tunio_workloads::{macsio_vpic_dipole, Variant};

fn spec(variant: Variant) -> CampaignSpec {
    CampaignSpec {
        app: macsio_vpic_dipole(),
        variant,
        kind: PipelineKind::HsTunerNoStop,
        max_iterations: 40,
        population: 8,
        seed: 88,
        large_scale: false,
    }
}

fn peak(t: &LabeledTrace) -> (f64, f64) {
    t.roti.iter().zip(&t.minutes).fold(
        (0.0, 0.0),
        |acc, (&r, &m)| if r > acc.0 { (r, m) } else { acc },
    )
}

fn main() {
    let full = labeled_campaign("Full application", &spec(Variant::Full));
    let reduced = labeled_campaign(
        "Reduced kernel (1% loops)",
        &spec(Variant::ReducedKernel {
            keep_fraction: 0.01,
        }),
    );

    println!("=== Fig 8(b): RoTI with loop reduction (1% of iterations) ===\n");
    let (fp, fm) = peak(&full);
    let (rp, rm) = peak(&reduced);
    println!("peak RoTI full application : {fp:8.2} MB/s/min (at {fm:.0} min)");
    println!("peak RoTI reduced kernel   : {rp:8.2} MB/s/min (at {rm:.1} min)");
    println!(
        "boost: {:.1}x (paper: 23.30 vs 2.47 ≈ 9.4x)",
        rp / fp.max(1e-9)
    );

    // Accuracy of the bandwidth the reduced kernel reports, measured at
    // the default configuration (paper: 97.10% accurate).
    let sim = tunio_iosim::Simulator::cori_4node(88);
    let space = tunio_params::ParameterSpace::tunio_default();
    let cfg = tunio_params::StackConfig::defaults(&space);
    let full_w = tunio_workloads::Workload::new(macsio_vpic_dipole(), Variant::Kernel);
    let red_w = tunio_workloads::Workload::new(
        macsio_vpic_dipole(),
        Variant::ReducedKernel {
            keep_fraction: 0.01,
        },
    );
    let bw_full = sim.run_averaged(&full_w.phases(), &cfg, 3).perf();
    let bw_red = sim.run_averaged(&red_w.phases(), &cfg, 3).perf();
    let accuracy = 100.0 * (1.0 - ((bw_red - bw_full) / bw_full).abs());
    println!("reported-bandwidth accuracy of reduced kernel: {accuracy:.2}% (paper: 97.10%)");

    write_json("fig08b_loop_reduction_roti", &vec![full, reduced]);
}
