//! Tournament — pluggable search backends (GA vs. random vs. Latin
//! hypercube vs. asynchronous Bayesian optimization) through the full
//! strategy pipeline, equal evaluation budgets, all three workload
//! kernels.
//!
//! Two questions, per workload:
//!
//! 1. **Sample efficiency**: how many committed evaluations does each
//!    backend need before its best-so-far bandwidth reaches the level
//!    the GA ends the whole campaign at? (Fewer evaluations for the
//!    same gain ⇒ strictly better RoTI, since evaluation cost dominates
//!    tuning time.)
//! 2. **Evaluator utilization**: the scheduler's `barrier_stalls`
//!    counter — commits after which the strategy had nothing ready
//!    while window capacity was free. The generation-synchronous GA
//!    stalls at every generation boundary; the asynchronous backends
//!    must report zero (slots refill the moment a result commits).
//!
//! Results land in `results/tour01_strategy_tournament.json` and the
//! summary table is mirrored in EXPERIMENTS.md.

use serde::Serialize;
use tunio::pipeline::{
    run_strategy_campaign_opts, CampaignOptions, CampaignSpec, PipelineKind, StrategyKind,
};
use tunio_bench::GIB;
use tunio_tuner::TuningTrace;
use tunio_workloads::{flash, hacc, vpic, AppSpec, Variant};

/// Generation budget and window width shared by every entrant.
const ITERS: u32 = 30;
const POP: usize = 6;
/// Seeds averaged per (workload, strategy) cell.
const SEEDS: [u64; 3] = [11, 12, 13];

#[derive(Serialize)]
struct Row {
    workload: String,
    strategy: String,
    seed: u64,
    /// Final best bandwidth, GiB/s.
    final_gibs: f64,
    /// Committed evaluations needed to reach the GA's final best on the
    /// same workload+seed (None = never reached within budget).
    evals_to_ga_level: Option<u64>,
    /// Total committed evaluations.
    committed: u64,
    /// Proposals served as aliases (dedup hits, zero cost).
    aliases: u64,
    /// Generation-barrier idle commits (0 = fully asynchronous).
    barrier_stalls: u64,
    /// Final RoTI, MB/s per tuning minute.
    final_roti: f64,
}

fn run_one(app: AppSpec, strategy: StrategyKind, seed: u64) -> (Row, TuningTrace) {
    let spec = CampaignSpec {
        app,
        variant: Variant::Kernel,
        kind: PipelineKind::HsTunerNoStop,
        max_iterations: ITERS,
        population: POP,
        seed,
        large_scale: false,
    };
    let opts = CampaignOptions {
        threads: Some(4),
        ..CampaignOptions::default()
    };
    let outcome = run_strategy_campaign_opts(&spec, strategy, &opts)
        .expect("fault-free tournament campaigns cannot fail");
    let stats = outcome.scheduler.expect("strategy campaigns report stats");
    let row = Row {
        workload: spec.app.name.clone(),
        strategy: strategy.label().into(),
        seed,
        final_gibs: outcome.trace.best_perf / GIB,
        evals_to_ga_level: None,
        committed: stats.committed,
        aliases: stats.aliases,
        barrier_stalls: stats.barrier_stalls,
        final_roti: tunio::roti::final_roti(&outcome.trace),
    };
    (row, outcome.trace)
}

/// Committed evaluations at which `trace` first reaches `target`
/// bytes/s: window `i` (0-based) closes after `(i + 1) * POP` commits,
/// except the final window, which closes at the full committed count.
fn evals_to_reach(trace: &TuningTrace, committed: u64, target: f64) -> Option<u64> {
    let last = trace.records.len();
    trace
        .records
        .iter()
        .position(|r| r.best_perf >= target)
        .map(|i| {
            if i + 1 == last {
                committed
            } else {
                (i as u64 + 1) * POP as u64
            }
        })
}

fn main() {
    println!(
        "=== Tournament: search backends ({ITERS} generations x {POP}, \
         {} seeds, kernels) ===\n",
        SEEDS.len()
    );
    let workloads = [hacc(), vpic(), flash()];
    let mut rows: Vec<Row> = Vec::new();

    for app in &workloads {
        for seed in SEEDS {
            // The GA sets the bar for this workload+seed cell.
            let (mut ga, ga_trace) = run_one(app.clone(), StrategyKind::Ga, seed);
            let bar = ga.final_gibs * GIB;
            ga.evals_to_ga_level = evals_to_reach(&ga_trace, ga.committed, bar);
            rows.push(ga);
            for strategy in [StrategyKind::Random, StrategyKind::Lhs, StrategyKind::Bo] {
                let (mut row, trace) = run_one(app.clone(), strategy, seed);
                row.evals_to_ga_level = evals_to_reach(&trace, row.committed, bar);
                rows.push(row);
            }
        }
    }

    // Per (workload, strategy) summary: mean final bandwidth, mean
    // evals-to-GA-level over the seeds where the bar was reached, and
    // the dedup/stall counters summed over seeds.
    println!(
        "{:<10} {:<8} {:>12} {:>16} {:>9} {:>8} {:>8}",
        "workload", "strategy", "mean GiB/s", "evals->GA-level", "reached", "aliases", "stalls"
    );
    for app in &workloads {
        for strategy in StrategyKind::ALL {
            let cell: Vec<&Row> = rows
                .iter()
                .filter(|r| r.workload == app.name && r.strategy == strategy.label())
                .collect();
            let mean_gibs = cell.iter().map(|r| r.final_gibs).sum::<f64>() / cell.len() as f64;
            let reached: Vec<u64> = cell.iter().filter_map(|r| r.evals_to_ga_level).collect();
            let mean_evals = if reached.is_empty() {
                "never".to_string()
            } else {
                format!(
                    "{:.0}",
                    reached.iter().sum::<u64>() as f64 / reached.len() as f64
                )
            };
            let aliases: u64 = cell.iter().map(|r| r.aliases).sum();
            let stalls: u64 = cell.iter().map(|r| r.barrier_stalls).sum();
            println!(
                "{:<10} {:<8} {:>12.3} {:>16} {:>6}/{:<2} {:>8} {:>8}",
                app.name,
                strategy.label(),
                mean_gibs,
                mean_evals,
                reached.len(),
                cell.len(),
                aliases,
                stalls
            );
        }
        println!();
    }

    tunio_bench::write_json("tour01_strategy_tournament", &rows);
}
