//! Figure 5 (b) — syntactic marking vs. dataflow slicing.
//!
//! Runs both discovery passes over every built-in Fig 5 workload and
//! compares keep ratios and kept sets. The dataflow slicer (the default
//! since the `tunio-analysis` crate landed) keeps a subset of supporting
//! statements: it drops dead stores and shadowed same-name stores the
//! name-keyed syntactic pass over-keeps, while finding identical I/O
//! seeds. Results land in `results/fig05b_slice_vs_marking.json`.

use tunio_cminus::parser::parse;
use tunio_discovery::slicing::compare_markings;
use tunio_discovery::{mark_program, mark_program_dataflow};

/// Adversarial workloads where the supporting-statement choice differs:
/// dead stores and shadowed same-name stores *feeding an I/O chain* (the
/// built-in samples' dead stores feed only logging, which neither pass
/// keeps, so on those the two passes agree exactly).
const ADVERSARIAL: [(&str, &str); 2] = [
    (
        "dead_stores",
        r#"
        void checkpoint(int n) {
            double * buf = alloc(n);
            buf = init_fill(n);
            buf = refine(n);
            buf = finalize(n);
            H5Dwrite(dset, buf);
        }
        "#,
    ),
    (
        "shadowed_size",
        r#"
        void dump(int n) {
            int size = io_size(n);
            if (n > 0) {
                int size = scratch_size(n);
                crunch(size);
            }
            H5Dwrite(dset, size);
        }
        void helper(int n) {
            double * size = local_scratch(n);
            accumulate(size, n);
        }
        "#,
    ),
];

fn main() {
    println!("=== Fig 5b: keep ratio, syntactic marking vs dataflow slice ===\n");
    println!(
        "{:<14} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "workload", "stmts", "kept(syn)", "kept(df)", "ratio(syn)", "ratio(df)", "agreement"
    );

    let mut rows = Vec::new();
    let workloads: Vec<(&str, &str)> = tunio_cminus::samples::all_samples()
        .into_iter()
        .chain(ADVERSARIAL)
        .collect();
    for (name, src) in workloads {
        let prog = parse(src).expect("sample parses");
        let old = mark_program(&prog);
        let new = mark_program_dataflow(&prog);
        let cmp = compare_markings(&prog);
        println!(
            "{:<14} {:>6} {:>10} {:>10} {:>9.1}% {:>9.1}% {:>9.1}%",
            name,
            old.total_stmts,
            old.kept.len(),
            new.kept.len(),
            old.keep_ratio() * 100.0,
            new.keep_ratio() * 100.0,
            cmp.agreement() * 100.0,
        );
        rows.push(serde_json::json!({
            "workload": name,
            "total_stmts": old.total_stmts,
            "syntactic_kept": old.kept.len(),
            "dataflow_kept": new.kept.len(),
            "syntactic_keep_ratio": old.keep_ratio(),
            "dataflow_keep_ratio": new.keep_ratio(),
            "agreement": cmp.agreement(),
            "only_syntactic": cmp.only_syntactic.len(),
            "only_dataflow": cmp.only_dataflow.len(),
            "io_seeds": old.io_seeds.len(),
        }));
    }

    println!(
        "\nOn the paper samples the passes agree exactly (their dead stores feed\n\
         only logging, which neither pass keeps). On the adversarial workloads the\n\
         name-keyed syntactic pass over-keeps: dead stores along an I/O chain\n\
         (`dead_stores`) and same-named shadowed/other-function variables\n\
         (`shadowed_size`). The dataflow slicer keeps only reaching definitions,\n\
         declaration anchors and control context of the I/O."
    );
    tunio_bench::write_json("fig05b_slice_vs_marking", &serde_json::json!(rows));
}
