//! Figure 5 — the marking process on a VPIC-style source.
//!
//! Prints the normalized source with KEEP/DROP annotations per line,
//! mirroring the paper's partial marking example: H5 calls and their
//! dependency chains (dataset ids, data pointers, loop headers) are kept;
//! compute, diagnostics and logging are dropped.

use tunio_cminus::parser::parse;
use tunio_cminus::printer::print_program;
use tunio_cminus::samples;
use tunio_discovery::marking::mark_program;

fn main() {
    let prog = parse(samples::VPIC_IO).expect("sample parses");
    let marking = mark_program(&prog);
    let printed = print_program(&prog);

    // Invert the stmt→line map: for each printed line, is any statement
    // that starts there kept?
    let mut line_status: Vec<Option<bool>> = vec![None; printed.text.lines().count() + 1];
    for (id, line) in &printed.stmt_lines {
        let kept = marking.kept.contains(id);
        let slot = &mut line_status[*line as usize];
        *slot = Some(slot.unwrap_or(false) | kept);
    }

    println!("=== Fig 5: marking the VPIC I/O source (KEEP = part of the I/O kernel) ===\n");
    for (i, line) in printed.text.lines().enumerate() {
        let status = match line_status[i + 1] {
            Some(true) => "KEEP",
            Some(false) => "drop",
            None => "    ", // braces / function headers
        };
        println!("{:>3} [{status}] {line}", i + 1);
    }

    println!(
        "\nkept {}/{} statements ({:.1}%), {} I/O seed statements, {} marking-loop steps",
        marking.kept.len(),
        marking.total_stmts,
        marking.keep_ratio() * 100.0,
        marking.io_seeds.len(),
        marking.iterations,
    );

    let summary = serde_json::json!({
        "kept": marking.kept.len(),
        "total": marking.total_stmts,
        "io_seeds": marking.io_seeds.len(),
        "keep_ratio": marking.keep_ratio(),
    });
    tunio_bench::write_json("fig05_marking_demo", &summary);
}
