//! Noise robustness — racing evaluation vs. fixed 3-run averaging on a
//! storm-grade noisy cluster.
//!
//! Both arms run the *same* random-search campaign (same seed, same 48
//! proposals) on the same interfered machine; they differ only in how
//! each configuration's bandwidth estimate is produced. Fixed-3 always
//! burns 3 simulations per unique config (the paper's §IV averaging);
//! racing warms each config with 2 samples, discards clear losers
//! immediately, and tops up only while the confidence interval still
//! overlaps the incumbent. The headline pair of numbers: simulations
//! consumed, and the *true mean* bandwidth of the config each arm
//! crowns — the expectation of the noisy objective, estimated by
//! re-running the chosen config 32 times across the interference
//! timeline (what that config would actually deliver on the shared
//! machine, with the sampling luck averaged out). Racing must reach
//! equal-or-better truth on at least 25% fewer simulations.

use serde::Serialize;
use tunio_bench::GIB;
use tunio_iosim::{InterferenceModel, NoiseProfile, Simulator};
use tunio_params::{Configuration, ParameterSpace};
use tunio_tuner::{
    run_strategy, run_strategy_opts, AllParams, EvalEngine, NoObserver, NoStop, RacingConfig,
    RandomStrategy,
};
use tunio_workloads::{hacc, Variant, Workload};

const BUDGET: usize = 48;

fn engine(seed: u64, repeats: u32) -> EvalEngine {
    let sim = Simulator::cori_4node(seed)
        .with_interference(InterferenceModel::new(NoiseProfile::Storm, seed));
    EvalEngine::new(
        sim,
        Workload::new(hacc(), Variant::Kernel),
        ParameterSpace::tunio_default(),
        repeats,
    )
}

#[derive(Serialize)]
struct Row {
    seed: u64,
    arm: String,
    simulations: u64,
    evaluations: u64,
    discards: u64,
    topups: u64,
    noisy_best_gibs: f64,
    true_best_gibs: f64,
}

/// Run one arm; returns (simulations, evaluations, discards, topups,
/// best config and its noisy estimate).
fn arm(seed: u64, racing: bool) -> (u64, u64, u64, u64, Configuration, f64) {
    let eng = engine(seed, 3);
    let strategy = Box::new(RandomStrategy::new(
        ParameterSpace::tunio_default(),
        BUDGET,
        seed,
    ));
    let run = if racing {
        run_strategy_opts(
            &eng,
            strategy,
            &mut NoStop,
            &mut AllParams,
            8,
            1,
            &mut NoObserver,
            Some(RacingConfig::default()),
        )
    } else {
        run_strategy(
            &eng,
            strategy,
            &mut NoStop,
            &mut AllParams,
            8,
            1,
            &mut NoObserver,
        )
    };
    let rc = eng.racing_counters();
    // Race samples for settled keys, plus 3 fixed repeats for every
    // evaluation that went through the plain path (the default-config
    // baseline always does; under fixed-3 that is all of them).
    let sims = rc.samples + (eng.evaluations() - rc.settled) * 3;
    (
        sims,
        eng.evaluations(),
        rc.discards,
        rc.topups,
        run.trace.best_config.clone(),
        run.trace.best_perf,
    )
}

fn main() {
    println!("=== Noise: racing vs fixed-3 averaging (HACC kernel, storm interference, 48-config random search) ===\n");
    println!(
        "{:>6} {:>8} {:>6} {:>6} {:>9} {:>8} {:>12} {:>12}",
        "seed", "arm", "sims", "evals", "discards", "top-ups", "noisy GiB/s", "true GiB/s"
    );
    let mut rows = Vec::new();
    let (mut sims_fixed, mut sims_racing) = (0u64, 0u64);
    let (mut true_fixed, mut true_racing) = (0.0f64, 0.0f64);
    for seed in [1u64, 2, 3, 4] {
        // 32 repeats across the interference timeline: the sampling
        // error of this reference is ~3x smaller than either arm's.
        let truth = engine(seed, 32);
        for racing in [false, true] {
            let (sims, evals, discards, topups, best, noisy) = arm(seed, racing);
            let true_gibs = truth.evaluate(&best).perf / GIB;
            let name = if racing { "racing" } else { "fixed-3" };
            println!(
                "{seed:>6} {name:>8} {sims:>6} {evals:>6} {discards:>9} {topups:>8} {:>12.3} {true_gibs:>12.3}",
                noisy / GIB,
            );
            if racing {
                sims_racing += sims;
                true_racing += true_gibs;
            } else {
                sims_fixed += sims;
                true_fixed += true_gibs;
            }
            rows.push(Row {
                seed,
                arm: name.into(),
                simulations: sims,
                evaluations: evals,
                discards,
                topups,
                noisy_best_gibs: noisy / GIB,
                true_best_gibs: true_gibs,
            });
        }
    }
    let saved = 1.0 - sims_racing as f64 / sims_fixed as f64;
    println!(
        "\nracing: {sims_racing} sims vs fixed-3 {sims_fixed} ({:.0}% fewer), \
         mean true best {:.3} vs {:.3} GiB/s",
        100.0 * saved,
        true_racing / 4.0,
        true_fixed / 4.0,
    );
    assert!(
        saved >= 0.25,
        "racing must save >=25% of simulations (saved {:.1}%)",
        100.0 * saved
    );
    assert!(
        true_racing >= true_fixed * 0.999,
        "racing must reach equal-or-better true bandwidth \
         ({true_racing:.3} vs {true_fixed:.3} summed GiB/s)"
    );
    println!(
        "clear losers die after 2 samples instead of always costing 3, and the\n\
         saved budget tops up only the genuinely ambiguous configs — whose 6-sample\n\
         aggregates then estimate the true mean tighter than fixed-3 ever did."
    );
    tunio_bench::write_json("noise01_racing", &rows);
}
