//! Figure 11(a) — end-to-end pipeline analysis on BD-CATS at 500 nodes /
//! 1600 processes: bandwidth vs. iteration for six pipeline variants.
//!
//! Paper: TunIO peaks at 88 GB/s by iteration 6 and stops at 9 (≈468
//! minutes, ≈73% less than HSTuner's 1750); HSTuner no-stop eventually
//! reaches 90.8 GB/s; HSTuner + heuristic stops at 47.7 GB/s after ≈538
//! minutes.

use tunio::pipeline::{CampaignSpec, PipelineKind};
use tunio_bench::{labeled_campaign, print_series_table, write_json};
use tunio_workloads::{bdcats, Variant};

fn spec(kind: PipelineKind, variant: Variant) -> CampaignSpec {
    CampaignSpec {
        app: bdcats(),
        variant,
        kind,
        max_iterations: 50,
        population: 8,
        seed: 1111,
        large_scale: true,
    }
}

fn main() {
    let variants = [
        (
            "HSTuner (No Stop)",
            PipelineKind::HsTunerNoStop,
            Variant::Full,
        ),
        (
            "HSTuner (Heuristic Stop)",
            PipelineKind::HsTunerHeuristic,
            Variant::Full,
        ),
        ("TunIO", PipelineKind::TunIo, Variant::Full),
        (
            "HSTuner+Kernel (No Stop)",
            PipelineKind::HsTunerNoStop,
            Variant::Kernel,
        ),
        (
            "HSTuner+Kernel (Heuristic)",
            PipelineKind::HsTunerHeuristic,
            Variant::Kernel,
        ),
        ("TunIO+Kernel", PipelineKind::TunIo, Variant::Kernel),
    ];

    let traces: Vec<_> = variants
        .iter()
        .map(|(label, kind, variant)| labeled_campaign(*label, &spec(*kind, *variant)))
        .collect();

    print_series_table(
        "Fig 11(a): BD-CATS end-to-end tuning (500 nodes / 1600 procs)",
        &traces,
    );

    let find = |label: &str| traces.iter().find(|t| t.label == label).unwrap();
    let tunio = find("TunIO");
    let hstuner = find("HSTuner (No Stop)");
    println!(
        "\ntuning-budget reduction TunIO vs HSTuner: {:.1}% (paper: ≈73%; 468 vs 1750 minutes)",
        100.0 * (hstuner.total_minutes - tunio.total_minutes) / hstuner.total_minutes
    );

    write_json("fig11a_pipeline_bw", &traces);
}
