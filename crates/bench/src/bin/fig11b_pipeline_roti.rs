//! Figure 11(b) — RoTI of the end-to-end BD-CATS pipelines.
//!
//! Paper: TunIO reaches RoTI 215 vs 41.6 for HSTuner + heuristic stop
//! (a 173.4 MB/s-per-minute advantage); with the I/O kernel TunIO reaches
//! 250 and HSTuner + heuristic 91.6.

use tunio::pipeline::{CampaignSpec, PipelineKind};
use tunio_bench::{labeled_campaign, write_json};
use tunio_workloads::{bdcats, Variant};

fn spec(kind: PipelineKind, variant: Variant) -> CampaignSpec {
    CampaignSpec {
        app: bdcats(),
        variant,
        kind,
        max_iterations: 50,
        population: 8,
        seed: 1111,
        large_scale: true,
    }
}

fn main() {
    let runs = [
        ("TunIO", PipelineKind::TunIo, Variant::Full),
        ("TunIO + I/O kernel", PipelineKind::TunIo, Variant::Kernel),
        (
            "HSTuner + Heuristic",
            PipelineKind::HsTunerHeuristic,
            Variant::Full,
        ),
        (
            "HSTuner + Heuristic + kernel",
            PipelineKind::HsTunerHeuristic,
            Variant::Kernel,
        ),
    ];

    println!("=== Fig 11(b): RoTI of end-to-end pipelines (BD-CATS) ===\n");
    println!(
        "{:<30} {:>14} {:>12} {:>12}",
        "pipeline", "final RoTI", "minutes", "GiB/s"
    );
    let mut traces = Vec::new();
    for (label, kind, variant) in runs {
        let t = labeled_campaign(label, &spec(kind, variant));
        println!(
            "{:<30} {:>11.1} MB/s/min {:>9.1} {:>12.2}",
            t.label,
            t.roti.last().copied().unwrap_or(0.0),
            t.total_minutes,
            t.final_gibs
        );
        traces.push(t);
    }

    let roti = |label: &str| {
        traces
            .iter()
            .find(|t| t.label == label)
            .and_then(|t| t.roti.last().copied())
            .unwrap_or(0.0)
    };
    println!(
        "\nTunIO advantage over HSTuner+Heuristic: {:.1} MB/s per tuning minute (paper: 173.4)",
        roti("TunIO") - roti("HSTuner + Heuristic")
    );
    println!(
        "with I/O kernels: {:.1} vs {:.1} (paper: 250 vs 91.6)",
        roti("TunIO + I/O kernel"),
        roti("HSTuner + Heuristic + kernel")
    );

    write_json("fig11b_pipeline_roti", &traces);
}
