//! Warm-start experiment — static inference vs. cold start.
//!
//! For each (workload, strategy) pair, runs the same campaign twice per
//! seed: **cold** (default options) and **warm** (the campaign seeded
//! from the features `tunio_discovery::infer` extracts from the matching
//! C-minus sample — the `--infer-workload` path of `tunio-tune`). The
//! warm campaign's search backend starts from feature-guided seed
//! configurations and the smart subset agent ranks parameters by the
//! inferred features instead of the offline sweep.
//!
//! The headline metric is *generations to reach the cold run's final
//! best perf*: a warm start pays off when it reaches the same
//! performance in fewer tuning generations (fewer simulated
//! evaluations). Results feed the warm-start table in EXPERIMENTS.md.

use std::collections::BTreeMap;
use tunio::pipeline::{
    run_strategy_campaign_opts, CampaignOptions, CampaignSpec, PipelineKind, StrategyKind,
};
use tunio_cminus::{parser::parse, samples};
use tunio_discovery::infer_program;
use tunio_tuner::TuningTrace;
use tunio_workloads::{hacc, vpic, AppSpec, Variant, WorkloadFeatures};

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// First generation whose running best reaches `target`, if any.
fn first_reach(trace: &TuningTrace, target: f64) -> Option<u32> {
    trace
        .records
        .iter()
        .find(|r| r.best_perf >= target)
        .map(|r| r.iteration)
}

/// Inferred features for a built-in sample's entry function.
fn features_for(sample: &str) -> WorkloadFeatures {
    let src = samples::all_samples()
        .into_iter()
        .find(|(n, _)| *n == sample)
        .map(|(_, s)| s)
        .expect("known sample");
    let prog = parse(src).expect("sample parses");
    infer_program(&prog, &BTreeMap::new())
        .into_iter()
        .find(|iw| !iw.spec.iteration_io.is_empty())
        .expect("sample has I/O")
        .features
}

fn main() {
    const ITERS: u32 = 12;
    const POP: usize = 8;
    let seeds = [1u64, 2, 3, 4, 5];
    let cases: [(&str, AppSpec, &str); 2] =
        [("vpic", vpic(), "vpic_io"), ("hacc", hacc(), "hacc_io")];
    let strategies = [StrategyKind::Bo, StrategyKind::Ga];

    println!(
        "=== Warm-start from static inference ({ITERS} generations, population {POP}, \
         {} seeds) ===\n",
        seeds.len()
    );
    println!(
        "{:<6} {:<8} {:>5} {:>11} {:>11} {:>10} {:>10}",
        "app", "strategy", "seed", "cold GiB/s", "warm GiB/s", "cold gens", "warm gens"
    );

    for (app_name, app, sample) in &cases {
        let features = features_for(sample);
        for strategy in strategies {
            let mut cold_sum = 0u32;
            let mut warm_sum = 0u32;
            let mut warm_wins = 0usize;
            for &seed in &seeds {
                let spec = CampaignSpec {
                    app: app.clone(),
                    variant: Variant::Kernel,
                    kind: PipelineKind::TunIo,
                    max_iterations: ITERS,
                    population: POP,
                    seed,
                    large_scale: false,
                };
                let cold = run_strategy_campaign_opts(&spec, strategy, &CampaignOptions::default())
                    .expect("cold campaign");
                let warm = run_strategy_campaign_opts(
                    &spec,
                    strategy,
                    &CampaignOptions {
                        warm_start: Some(features.clone()),
                        ..CampaignOptions::default()
                    },
                )
                .expect("warm campaign");

                let target = cold.trace.best_perf;
                let cold_gens = first_reach(&cold.trace, target).unwrap_or(ITERS);
                let warm_gens = first_reach(&warm.trace, target);
                println!(
                    "{:<6} {:<8} {:>5} {:>11.3} {:>11.3} {:>10} {:>10}",
                    app_name,
                    strategy.label(),
                    seed,
                    cold.trace.best_perf / GIB,
                    warm.trace.best_perf / GIB,
                    cold_gens,
                    warm_gens
                        .map(|g| g.to_string())
                        .unwrap_or_else(|| format!(">{ITERS}")),
                );
                cold_sum += cold_gens;
                warm_sum += warm_gens.unwrap_or(ITERS + 1);
                if warm_gens.map(|g| g <= cold_gens).unwrap_or(false) {
                    warm_wins += 1;
                }
            }
            println!(
                "{:<6} {:<8} {:>5} {:>35} mean gens {:.1} -> {:.1} ({} of {} seeds warm <= cold)\n",
                app_name,
                strategy.label(),
                "all",
                "",
                cold_sum as f64 / seeds.len() as f64,
                warm_sum as f64 / seeds.len() as f64,
                warm_wins,
                seeds.len(),
            );
        }
    }
}
