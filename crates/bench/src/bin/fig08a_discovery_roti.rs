//! Figure 8(a) — Return on Tuning Investment with and without
//! Application I/O Discovery, on MACSio baselined to the VPIC-dipole
//! compute-to-I/O ratio.
//!
//! Paper: peak RoTI 2.87 (kernel) vs 2.47 (full application); time to
//! peak RoTI 549 vs 639 minutes (a 14% reduction in tuning time).

use tunio::pipeline::{CampaignSpec, PipelineKind};
use tunio_bench::{labeled_campaign, write_json, LabeledTrace};
use tunio_workloads::{macsio_vpic_dipole, Variant};

fn spec(variant: Variant) -> CampaignSpec {
    CampaignSpec {
        app: macsio_vpic_dipole(),
        variant,
        kind: PipelineKind::HsTunerNoStop,
        max_iterations: 40,
        population: 8,
        seed: 88,
        large_scale: false,
    }
}

fn peak(t: &LabeledTrace) -> (f64, f64, u32) {
    let mut best = (0.0, 0.0, 0);
    for (i, (&r, &m)) in t.roti.iter().zip(&t.minutes).enumerate() {
        if r > best.0 {
            best = (r, m, i as u32 + 1);
        }
    }
    best
}

fn main() {
    let full = labeled_campaign("Full application", &spec(Variant::Full));
    let kernel = labeled_campaign("I/O kernel (discovery)", &spec(Variant::Kernel));

    println!(
        "=== Fig 8(a): RoTI with and without Application I/O Discovery (MACSio/VPIC-dipole) ===\n"
    );
    println!(
        "{:>4} {:>22} {:>22}",
        "iter", "full RoTI (min)", "kernel RoTI (min)"
    );
    for i in 0..full.roti.len().max(kernel.roti.len()) {
        let cell = |t: &LabeledTrace| match (t.roti.get(i), t.minutes.get(i)) {
            (Some(r), Some(m)) => format!("{r:>10.2} ({m:>7.1}m)"),
            _ => format!("{:>21}", "-"),
        };
        println!("{:>4} {:>22} {:>22}", i + 1, cell(&full), cell(&kernel));
    }

    let (fp, fm, fi) = peak(&full);
    let (kp, km, ki) = peak(&kernel);
    println!("\npeak RoTI: full {fp:.2} MB/s/min at iter {fi} ({fm:.0} min)");
    println!("           kernel {kp:.2} MB/s/min at iter {ki} ({km:.0} min)");
    println!(
        "tuning-time reduction to peak: {:.1}% (paper: 14%)",
        100.0 * (fm - km) / fm
    );
    println!("paper reference: peak RoTI 2.87 (kernel) vs 2.47 (full); 549 vs 639 minutes");

    write_json("fig08a_discovery_roti", &vec![full, kernel]);
}
