//! Figure 10(b) — RoTI of stopping policies on HACC.
//!
//! Paper: perfect stop RoTI 2.31 (stop at iteration 35); TunIO 2.00
//! (90.5% of best); Maximizing-Performance oracle 1.99 (86.1%); heuristic
//! 1.37 (59.3%); full 50-iteration budget 1.8 (77.9%). TunIO also stops
//! at 744 minutes vs 800 for the oracle (7.61% faster).

use tunio::pipeline::{CampaignSpec, PipelineKind};
use tunio_bench::{labeled_campaign, write_json, LabeledTrace};
use tunio_workloads::{hacc, Variant};

fn spec(kind: PipelineKind) -> CampaignSpec {
    CampaignSpec {
        app: hacc(),
        variant: Variant::Kernel,
        kind,
        max_iterations: 50,
        population: 8,
        seed: 7,
        large_scale: false,
    }
}

/// RoTI if the (no-stop) campaign had been stopped at index `i`.
fn roti_at(t: &LabeledTrace, i: usize) -> f64 {
    let gain_mbs = (t.bandwidth_gibs[i] - t.default_gibs) * 1024.0 * 1024.0 * 1024.0 / 1e6;
    let minutes = t.minutes[i].max(1e-9);
    gain_mbs / minutes
}

fn main() {
    let no_stop = labeled_campaign("no-stop", &spec(PipelineKind::HsTunerNoStop));
    let rl = labeled_campaign("tunio", &spec(PipelineKind::RlStopOnly));
    let heuristic = labeled_campaign("heuristic", &spec(PipelineKind::HsTunerHeuristic));

    // Perfect stopping: best achievable RoTI over the full-budget run.
    let (perfect_i, perfect) = (0..no_stop.bandwidth_gibs.len())
        .map(|i| (i, roti_at(&no_stop, i)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();

    // Maximizing-Performance oracle: stops the instant the best perf of
    // the whole campaign is first reached (assumed perfect detection).
    let best = no_stop.final_gibs;
    let maxperf_i = no_stop
        .bandwidth_gibs
        .iter()
        .position(|&b| b >= best - 1e-12)
        .unwrap();
    let maxperf = roti_at(&no_stop, maxperf_i);

    let tunio_roti = *rl.roti.last().unwrap();
    let heuristic_roti = *heuristic.roti.last().unwrap();
    let budget_roti = *no_stop.roti.last().unwrap();

    println!("=== Fig 10(b): RoTI of stopping policies (HACC) ===\n");
    println!(
        "{:<26} {:>12} {:>10} {:>12} {:>10}",
        "policy", "RoTI", "% of best", "stop iter", "minutes"
    );
    let rows = [
        (
            "Perfect stop",
            perfect,
            perfect_i as u32 + 1,
            no_stop.minutes[perfect_i],
        ),
        ("TunIO RL stop", tunio_roti, rl.stopped_at, rl.total_minutes),
        (
            "Maximizing Performance",
            maxperf,
            maxperf_i as u32 + 1,
            no_stop.minutes[maxperf_i],
        ),
        (
            "Heuristic (5%/5it)",
            heuristic_roti,
            heuristic.stopped_at,
            heuristic.total_minutes,
        ),
        (
            "Full budget (50 iters)",
            budget_roti,
            no_stop.stopped_at,
            no_stop.total_minutes,
        ),
    ];
    for (name, r, iter, minutes) in rows {
        println!(
            "{:<26} {:>9.2} MB/s/min {:>7.1}% {:>9} {:>10.1}",
            name,
            r,
            100.0 * r / perfect,
            iter,
            minutes
        );
    }
    println!("\npaper reference: perfect 2.31, TunIO 2.00 (90.5%), MaxPerf 1.99 (86.1%), heuristic 1.37 (59.3%), budget 1.8 (77.9%)");

    let summary = serde_json::json!({
        "perfect": perfect,
        "tunio": tunio_roti,
        "maxperf": maxperf,
        "heuristic": heuristic_roti,
        "full_budget": budget_roti,
        "tunio_minutes": rl.total_minutes,
        "maxperf_minutes": no_stop.minutes[maxperf_i],
    });
    write_json("fig10b_early_stop_roti", &summary);
}
