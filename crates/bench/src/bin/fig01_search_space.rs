//! Figure 1 — search-space explosion across HPC I/O libraries.
//!
//! Reproduces the per-library parameter-permutation table and the stack
//! combinations the paper highlights (HDF5+MPI ≈ 3.81e21 permutations),
//! plus the 12-parameter evaluation space (> 2.18e9 permutations).

use serde::Serialize;
use tunio_params::catalog::{stack_params, stack_permutations, CATALOGS};
use tunio_params::ParameterSpace;

#[derive(Serialize)]
struct Row {
    name: String,
    discrete: u32,
    continuous: u32,
    params: u32,
    permutations: f64,
}

fn main() {
    println!("=== Fig 1: user-level parameter permutations per library ===");
    println!(
        "{:<14} {:>9} {:>11} {:>7} {:>14}",
        "library", "discrete", "continuous", "params", "permutations"
    );
    let mut rows = Vec::new();
    for c in CATALOGS {
        println!(
            "{:<14} {:>9} {:>11} {:>7} {:>14.3e}",
            c.name,
            c.discrete,
            c.continuous,
            c.params(),
            c.permutations()
        );
        rows.push(Row {
            name: c.name.into(),
            discrete: c.discrete,
            continuous: c.continuous,
            params: c.params(),
            permutations: c.permutations(),
        });
    }

    println!("\n=== stack combinations ===");
    let stacks: [&[&str]; 4] = [
        &["HDF5", "MPI"],
        &["PnetCDF", "MPI"],
        &["ADIOS", "MPI"],
        &["HDF5", "MPI", "Hermes"],
    ];
    for s in stacks {
        println!(
            "{:<24} {:>7} params {:>14.3e} permutations",
            s.join("+"),
            stack_params(s).unwrap(),
            stack_permutations(s).unwrap()
        );
    }

    let space = ParameterSpace::tunio_default();
    println!(
        "\nTunIO evaluation space: {} parameters, {} permutations (paper: >2.18e9)",
        space.len(),
        space.permutations()
    );

    tunio_bench::write_json("fig01_search_space", &rows);
}
