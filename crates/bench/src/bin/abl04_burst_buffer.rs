//! Ablation — burst-buffer tier: how a Hermes/DataWarp-style node-local
//! tier reshapes the tuning problem on HACC.
//!
//! With checkpoint writes absorbed at memory-class speed, the PFS
//! parameters lose most of their leverage — tuning headroom collapses,
//! which is exactly why tiered stacks change what an autotuner should
//! target (the paper's Fig 1 includes Hermes' parameter space for this
//! reason).

use serde::Serialize;
use tunio_iosim::{BurstBufferSpec, Simulator};
use tunio_params::ParameterSpace;
use tunio_tuner::{AllParams, EvalEngine, GaConfig, GaTuner, NoStop};
use tunio_workloads::{hacc, Variant, Workload};

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

#[derive(Serialize)]
struct Row {
    tier: String,
    default_gibs: f64,
    tuned_gibs: f64,
    headroom: f64,
    minutes: f64,
}

fn tune(sim: Simulator) -> Row {
    let name = if sim.burst.is_some() {
        "burst-buffer"
    } else {
        "pfs-only"
    };
    let engine = EvalEngine::new(
        sim,
        Workload::new(hacc(), Variant::Kernel),
        ParameterSpace::tunio_default(),
        3,
    );
    let mut tuner = GaTuner::new(GaConfig {
        max_iterations: 25,
        seed: 5,
        ..GaConfig::default()
    });
    let trace = tuner.run(&engine, &mut NoStop, &mut AllParams);
    Row {
        tier: name.into(),
        default_gibs: trace.default_perf / GIB,
        tuned_gibs: trace.best_perf / GIB,
        headroom: trace.best_perf / trace.default_perf.max(1e-12),
        minutes: trace.total_cost_min(),
    }
}

fn main() {
    println!("=== Ablation: burst-buffer tier vs PFS-only (HACC, 25 iterations) ===\n");
    println!(
        "{:<14} {:>14} {:>12} {:>10} {:>10}",
        "tier", "default GiB/s", "tuned GiB/s", "headroom", "minutes"
    );
    let rows = vec![
        tune(Simulator::cori_4node(5)),
        tune(Simulator::cori_4node(5).with_burst_buffer(BurstBufferSpec::datawarp_like())),
    ];
    for r in &rows {
        println!(
            "{:<14} {:>14.3} {:>12.3} {:>9.2}x {:>10.1}",
            r.tier, r.default_gibs, r.tuned_gibs, r.headroom, r.minutes
        );
    }
    println!(
        "\nthe tier absorbs checkpoints, so the untuned stack is already fast and\n\
         tuning headroom shrinks — the tuner's effort shifts from PFS parameters\n\
         to whatever still spills."
    );
    tunio_bench::write_json("abl04_burst_buffer", &rows);
}
