//! serve01 — load-generate the `tunio-serve` daemon over real HTTP.
//!
//! Boots an in-process daemon (OS-assigned port, throwaway WAL dir),
//! then has N tenants submit M campaigns each as fast as the API
//! accepts them. Two service-level numbers come out:
//!
//! 1. **Throughput**: completed campaigns per second of wall-clock,
//!    submission of the first to completion of the last.
//! 2. **Submit-to-first-result latency**: per campaign, the time from
//!    its 202 to the first `generation` event appearing in its event
//!    stream (p50/p99). This is what a tenant watching the stream
//!    actually waits before seeing progress.
//!
//! Results land in `results/serve01_load.json` and the summary is
//! mirrored in EXPERIMENTS.md. Numbers are wall-clock and machine-
//! dependent — unlike the fig* benches this one is about the service
//! layer, not the simulated I/O stack.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};
use tunio_serve::{Daemon, ServeConfig};

const TENANTS: usize = 4;
const CAMPAIGNS_PER_TENANT: usize = 3;
const SPEC: &str = "\"app\":\"hacc\",\"variant\":\"kernel\",\"iterations\":6,\
                    \"population\":4,\"seed\":42";

fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let wal_dir = std::env::temp_dir().join("tunio-serve01-load");
    let _ = std::fs::remove_dir_all(&wal_dir);
    let mut daemon = Daemon::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        wal_dir: wal_dir.clone(),
        workers: 4,
        max_active_per_tenant: CAMPAIGNS_PER_TENANT,
        max_queue: 64,
        quiet: true,
        trace_path: None,
    })
    .expect("daemon boots");
    let addr = daemon.addr();
    eprintln!("serve01: {TENANTS} tenants x {CAMPAIGNS_PER_TENANT} campaigns against {addr}");

    let started = Instant::now();
    let mut submitted: Vec<(String, Instant)> = Vec::new();
    for c in 0..CAMPAIGNS_PER_TENANT {
        for t in 0..TENANTS {
            // Distinct seeds defeat the warm cache: every campaign pays
            // for its own simulations, like distinct real workloads.
            let body = format!(
                "{{\"tenant\":\"load{t}\",\"name\":\"c{c}\",{SPEC},\"fault_seed\":0,\
                 \"seed\":{}}}",
                1000 + c * TENANTS + t
            );
            let (status, reply) = http(addr, "POST", "/campaigns", Some(&body));
            assert_eq!(status, 202, "submit failed: {reply}");
            submitted.push((format!("load{t}--c{c}"), Instant::now()));
        }
    }

    // Tail each campaign's event stream until its first generation event.
    let mut first_result_s: Vec<f64> = Vec::new();
    for (id, at) in &submitted {
        loop {
            let (_, events) = http(addr, "GET", &format!("/campaigns/{id}/events"), None);
            if events.contains("\"event\":\"generation\"") {
                first_result_s.push(at.elapsed().as_secs_f64());
                break;
            }
            assert!(
                !events.contains("\"event\":\"failed\""),
                "campaign {id} failed under load: {events}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    // Wait for full completion for the throughput number.
    for (id, _) in &submitted {
        loop {
            let (_, status) = http(addr, "GET", &format!("/campaigns/{id}"), None);
            if status.contains("\"state\":\"done\"") {
                break;
            }
            assert!(
                !status.contains("\"state\":\"failed\""),
                "campaign {id} failed: {status}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    let wall_s = started.elapsed().as_secs_f64();
    daemon.drain_and_join();
    let _ = std::fs::remove_dir_all(&wal_dir);

    let total = submitted.len();
    let throughput = total as f64 / wall_s;
    first_result_s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = percentile(&first_result_s, 0.50);
    let p99 = percentile(&first_result_s, 0.99);
    println!("serve01 — tunio-serve load generation");
    println!("  campaigns            {total} ({TENANTS} tenants x {CAMPAIGNS_PER_TENANT})");
    println!("  wall clock           {wall_s:.2} s");
    println!("  throughput           {throughput:.2} campaigns/s");
    println!(
        "  submit→first result  p50 {:.0} ms, p99 {:.0} ms",
        p50 * 1e3,
        p99 * 1e3
    );

    std::fs::create_dir_all("results").expect("results dir");
    let json = format!(
        "{{\n  \"tenants\": {TENANTS},\n  \"campaigns_per_tenant\": {CAMPAIGNS_PER_TENANT},\n  \
         \"wall_s\": {wall_s:?},\n  \"campaigns_per_s\": {throughput:?},\n  \
         \"first_result_p50_s\": {p50:?},\n  \"first_result_p99_s\": {p99:?}\n}}\n"
    );
    std::fs::write("results/serve01_load.json", json).expect("write results");
    eprintln!("wrote results/serve01_load.json");
}
