//! Figure 2 — bandwidth vs. tuning iteration for HACC, FLASH and VPIC
//! I/O kernels tuned with HSTuner (no TunIO optimizations).
//!
//! The paper uses these curves to motivate early stopping: "application
//! performance in tuning follows a logarithmic curve, where performance
//! improvements attenuate".

use tunio::pipeline::{CampaignSpec, PipelineKind};
use tunio_bench::{labeled_campaign, print_series_table, write_json};
use tunio_workloads::{flash, hacc, vpic, Variant};

fn main() {
    let apps = [("HACC", hacc()), ("FLASH", flash()), ("VPIC", vpic())];
    let mut traces = Vec::new();
    for (name, app) in apps {
        let spec = CampaignSpec {
            app,
            variant: Variant::Kernel,
            kind: PipelineKind::HsTunerNoStop,
            max_iterations: 50,
            population: 8,
            seed: 2024,
            large_scale: false,
        };
        traces.push(labeled_campaign(name, &spec));
    }

    print_series_table("Fig 2: HSTuner tuning curves (best-so-far perf)", &traces);

    // Log-shape check: early gains dominate late gains.
    println!("\nlog-shape check (gain in first third vs last third of iterations):");
    for t in &traces {
        let n = t.bandwidth_gibs.len();
        let first = t.bandwidth_gibs[n / 3] - t.bandwidth_gibs[0];
        let last = t.bandwidth_gibs[n - 1] - t.bandwidth_gibs[2 * n / 3];
        println!(
            "  {:<6} first-third gain {:.3} GiB/s, last-third gain {:.3} GiB/s ({}x)",
            t.label,
            first,
            last,
            if last > 0.0 {
                format!("{:.1}", first / last)
            } else {
                "inf".into()
            }
        );
    }

    write_json("fig02_tuning_curves", &traces);
}
