//! Extension experiment — scaling study: tuning headroom vs. allocation
//! size for HACC (the paper evaluates only 4 and 500 nodes; this sweeps
//! the range between and confirms the trend connecting them).

use serde::Serialize;
use tunio_iosim::noise::NoiseModel;
use tunio_iosim::{ClusterSpec, LustreSpec, Simulator};
use tunio_params::ParameterSpace;
use tunio_tuner::{AllParams, EvalEngine, GaConfig, GaTuner, NoStop};
use tunio_workloads::{hacc, Variant, Workload};

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

#[derive(Serialize)]
struct Row {
    nodes: u32,
    procs: u32,
    default_gibs: f64,
    tuned_gibs: f64,
    headroom: f64,
    minutes: f64,
}

fn main() {
    println!("=== Extension: tuning headroom vs allocation size (HACC, 20 iterations) ===\n");
    println!(
        "{:>6} {:>7} {:>14} {:>12} {:>10} {:>9}",
        "nodes", "procs", "default GiB/s", "tuned GiB/s", "headroom", "minutes"
    );
    let mut rows = Vec::new();
    for nodes in [4u32, 16, 64, 200, 500] {
        let sim = Simulator {
            cluster: ClusterSpec::cori_like(nodes),
            fs: LustreSpec::cori_scratch(),
            noise: NoiseModel::new(42),
            burst: None,
            fault: None,
            interference: None,
        };
        let engine = EvalEngine::new(
            sim,
            Workload::new(hacc(), Variant::Kernel),
            ParameterSpace::tunio_default(),
            3,
        );
        let mut tuner = GaTuner::new(GaConfig {
            max_iterations: 20,
            seed: 42,
            ..GaConfig::default()
        });
        let trace = tuner.run(&engine, &mut NoStop, &mut AllParams);
        let row = Row {
            nodes,
            procs: nodes * 32,
            default_gibs: trace.default_perf / GIB,
            tuned_gibs: trace.best_perf / GIB,
            headroom: trace.best_perf / trace.default_perf.max(1e-12),
            minutes: trace.total_cost_min(),
        };
        println!(
            "{:>6} {:>7} {:>14.3} {:>12.3} {:>9.2}x {:>9.1}",
            row.nodes, row.procs, row.default_gibs, row.tuned_gibs, row.headroom, row.minutes
        );
        rows.push(row);
    }
    println!(
        "\ndefault (stripe-1, independent) bandwidth barely scales with nodes,\n\
         while the tuned stack rides the client network — so tuning headroom\n\
         grows with allocation size, which is why the paper's 500-node\n\
         end-to-end numbers dwarf its 4-node component numbers."
    );
    tunio_bench::write_json("ext01_scaling", &rows);
}
