//! Run every figure experiment in sequence.
//!
//! ```text
//! cargo run -p tunio-bench --bin run_all --release
//! ```
//!
//! Each experiment also has its own binary (`fig01_search_space` …
//! `fig12_viability`) for individual reruns.

use std::process::Command;

const FIGURES: [&str; 18] = [
    "fig01_search_space",
    "fig02_tuning_curves",
    "fig05_marking_demo",
    "fig08a_discovery_roti",
    "fig08b_loop_reduction_roti",
    "fig08c_kernel_accuracy",
    "fig09_impact_first",
    "fig10a_early_stop_bw",
    "fig10b_early_stop_roti",
    "fig11a_pipeline_bw",
    "fig11b_pipeline_roti",
    "abl01_search_strategies",
    "abl02_subset_size",
    "abl03_noise_sensitivity",
    "abl04_burst_buffer",
    "abl05_reward_delay",
    "ext01_scaling",
    "noise01_racing",
];

fn main() {
    let exe = std::env::current_exe().expect("current exe");
    let bin_dir = exe.parent().expect("bin dir").to_path_buf();
    let mut failures = Vec::new();
    for fig in FIGURES.iter().chain(std::iter::once(&"fig12_viability")) {
        println!("\n################ {fig} ################");
        let status = Command::new(bin_dir.join(fig)).status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("{fig} failed: {other:?}");
                failures.push(*fig);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed");
    } else {
        eprintln!("\nfailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
