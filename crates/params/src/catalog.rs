//! Library parameter catalogs for the search-space-explosion analysis.
//!
//! The paper's Figure 1 tabulates "user-level parameter permutations of
//! several HPC I/O libraries and storage systems … calculated utilizing a
//! lower bound of two values for discrete parameters and five for continuous
//! parameters" for HDF5, PnetCDF, MPI, ADIOS, OpenSHMEM-X and Hermes, and
//! observes that e.g. an HDF5 + MPI stack has ≈3.81 × 10²¹ permutations.
//!
//! This module records per-library counts of discrete and continuous
//! user-level parameters (lower bounds, as in the paper) and computes
//! permutations as `2^discrete × 5^continuous`.

use serde::{Deserialize, Serialize};

/// Parameter-count record for one I/O library / storage system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LibraryCatalog {
    /// Library name.
    pub name: &'static str,
    /// Number of discrete (boolean/enumerated) user-level parameters.
    pub discrete: u32,
    /// Number of continuous (size/count/threshold) user-level parameters.
    pub continuous: u32,
}

impl LibraryCatalog {
    /// Total parameter count.
    pub fn params(&self) -> u32 {
        self.discrete + self.continuous
    }

    /// Permutations under the paper's lower-bound rule
    /// (2 values per discrete parameter, 5 per continuous).
    pub fn permutations(&self) -> f64 {
        2f64.powi(self.discrete as i32) * 5f64.powi(self.continuous as i32)
    }
}

/// The library catalogs tabulated in the paper's Figure 1.
///
/// Counts are lower bounds assembled from each library's public tuning
/// documentation, chosen so the HDF5 + MPI stack lands at the paper's
/// ≈3.81 × 10²¹ permutations.
pub const CATALOGS: [LibraryCatalog; 6] = [
    LibraryCatalog {
        name: "HDF5",
        discrete: 14,
        continuous: 8,
    },
    LibraryCatalog {
        name: "PnetCDF",
        discrete: 8,
        continuous: 5,
    },
    LibraryCatalog {
        name: "MPI",
        discrete: 16,
        continuous: 10,
    },
    LibraryCatalog {
        name: "ADIOS",
        discrete: 18,
        continuous: 9,
    },
    LibraryCatalog {
        name: "OpenSHMEM-X",
        discrete: 10,
        continuous: 4,
    },
    LibraryCatalog {
        name: "Hermes",
        discrete: 12,
        continuous: 7,
    },
];

/// Look up a catalog by library name.
pub fn catalog(name: &str) -> Option<LibraryCatalog> {
    CATALOGS.iter().copied().find(|c| c.name == name)
}

/// Permutations of a stack combining several libraries (product of
/// per-library permutations — the worst case where all parameters matter).
pub fn stack_permutations(names: &[&str]) -> Option<f64> {
    let mut total = 1f64;
    for n in names {
        total *= catalog(n)?.permutations();
    }
    Some(total)
}

/// Total parameter count of a stack.
pub fn stack_params(names: &[&str]) -> Option<u32> {
    let mut total = 0;
    for n in names {
        total += catalog(n)?.params();
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdf5_plus_mpi_matches_paper_magnitude() {
        // Paper: "a stack that includes HDF5 and MPI would have
        // 3.81 × 10^21 parameter value permutations".
        let perms = stack_permutations(&["HDF5", "MPI"]).unwrap();
        assert!(
            (1e21..1e22).contains(&perms),
            "HDF5+MPI permutations should be ~3.8e21, got {perms:e}"
        );
    }

    #[test]
    fn all_catalogs_resolvable() {
        for c in CATALOGS {
            assert!(catalog(c.name).is_some());
            assert!(c.permutations() > 1.0);
            assert!(c.params() >= 10, "{} too few params", c.name);
        }
        assert!(catalog("NotALibrary").is_none());
    }

    #[test]
    fn stack_helpers_compose() {
        let single = catalog("HDF5").unwrap();
        assert_eq!(
            stack_permutations(&["HDF5"]).unwrap(),
            single.permutations()
        );
        assert_eq!(stack_params(&["HDF5"]).unwrap(), single.params());
        assert!(stack_permutations(&["HDF5", "Nope"]).is_none());
    }

    #[test]
    fn permutations_monotone_in_parameters() {
        let a = LibraryCatalog {
            name: "a",
            discrete: 3,
            continuous: 2,
        };
        let b = LibraryCatalog {
            name: "b",
            discrete: 4,
            continuous: 2,
        };
        assert!(b.permutations() > a.permutations());
    }
}
